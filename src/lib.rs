//! Umbrella crate for the Privacy-MaxEnt reproduction workspace.
//!
//! Reproduces **"Privacy-MaxEnt: Integrating Background Knowledge in
//! Privacy Quantification"** (Du, Teng & Zhu, SIGMOD 2008): the adversary's
//! least-biased estimate of `P(SA | QI)` for a bucketized publication is the
//! maximum-entropy joint distribution consistent with the published table's
//! invariants plus any linear background knowledge.
//!
//! # Quickstart: the resident `Analyst` session
//!
//! The core abstraction is a long-lived session over one published table.
//! Opening it compiles the table's invariants and solves the knowledge-free
//! baseline **once**; the adversary model then evolves as deltas —
//! `add_knowledge` / `remove_knowledge` mark only the connected components
//! their bucket footprints touch as dirty, and `refresh` re-solves exactly
//! those, reusing every clean component verbatim:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! // Figure 1: original table D (10 patients) and its 3-bucket publication D'.
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//!
//! // Open the session: invariants compiled, uniform baseline solved.
//! let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
//! let grace = analyst.table().interner().lookup(&[1, 2]).unwrap(); // (female, junior)
//! assert!(analyst.conditional(grace, 2) < 0.5); // baseline: Grace looks safe
//!
//! // "What if the attacker also learns that males don't get breast cancer?"
//! let handle = analyst
//!     .add_knowledge(Knowledge::Conditional {
//!         antecedent: vec![(0, 0)], // QI position 0 (gender) = male
//!         sa: 2,                    // breast cancer
//!         probability: 0.0,
//!     })
//!     .unwrap();
//! let stats = analyst.refresh().unwrap(); // re-solves only dirty components
//! assert_eq!(stats.reused + stats.resolved + stats.closed_form, stats.components);
//! assert!((analyst.conditional(grace, 2) - 1.0).abs() < 1e-6); // fully disclosed
//!
//! // Queries serve from the merged estimate without any recompute.
//! let report = analyst.report();
//! assert!((report.max_disclosure - 1.0).abs() < 1e-6);
//!
//! // Retracting the rule restores the baseline bit-for-bit.
//! analyst.remove_knowledge(handle).unwrap();
//! analyst.refresh().unwrap();
//! assert!(analyst.conditional(grace, 2) < 0.5);
//! # let _ = data;
//! ```
//!
//! Association rules mined from the original data (the paper's Top-(K+, K−)
//! bound) batch in directly:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//! let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
//!     .mine(&data);
//! let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
//! let handles = analyst.add_rules(mined.top_k(1, 1), data.schema()).unwrap();
//! analyst.refresh().unwrap();
//! assert_eq!(handles.len(), 2);
//! assert!(analyst.report().max_disclosure > 0.5);
//! ```
//!
//! For one-off estimates the classic facade still works — `Engine::estimate`
//! is a thin wrapper that opens a throwaway session, so it returns the exact
//! same bits:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//! let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
//!     .mine(&data);
//! let kb = KnowledgeBase::from_rules(mined.top_k(0, 1), data.schema()).unwrap();
//! let est: Estimate = Engine::default().estimate(&table, &kb).unwrap();
//! let grace = table.interner().lookup(&[1, 2]).unwrap();
//! assert!((est.conditional(grace, 2) - 1.0).abs() < 1e-6);
//! ```
//!
//! Run `cargo run --example quickstart` for the printed walkthrough.
//!
//! # Incremental refreshes and determinism
//!
//! Section 5.5 decomposes the constraint system into independent bucket
//! connected components; a knowledge delta can only change the optimum of
//! components its bucket footprint touches, so `refresh` re-solves those
//! and reuses the rest. With the default configuration every re-solve is
//! cold-started, making any interleaving of deltas **bit-identical** to a
//! from-scratch `Engine::estimate` holding the same final knowledge set,
//! for every thread count ([`EngineConfig::threads`] only changes wall
//! time). Setting [`EngineConfig::warm_start`] seeds each re-solve from the
//! previous refresh's dual vectors instead — faster convergence, same
//! optimum within tolerance, but not bit-replayable.
//!
//! At Adult scale (14,210 records, 2,842 buckets, 300 arity-4 rules →
//! ~950 relevant components) a single-rule delta re-solves ~1 component
//! instead of ~950; `pm-bench`'s `incremental_bench` binary measures the
//! delta-vs-from-scratch speedup and records it in
//! `BENCH_incremental.json`, alongside `parallel_bench`'s thread sweep in
//! `BENCH_parallel.json`.
//!
//! # Workspace layout
//!
//! | Crate | Role |
//! |-------|------|
//! | [`pm_microdata`] | schemas, records, datasets, empirical `P(SA \| QI)` |
//! | [`pm_anonymize`] | Anatomy / Mondrian bucketizers, pseudonyms, `D'` |
//! | [`pm_assoc`] | Top-(K+, K−) association-rule mining |
//! | [`pm_linalg`] | dense + CSR sparse kernels |
//! | [`pm_solver`] | GIS/IIS, gradient, CG, L-BFGS, Newton maxent solvers (warm-startable) |
//! | [`pm_parallel`] | scoped work-stealing executor, dirty-set scheduling |
//! | [`privacy_maxent`](maxent) | invariants, knowledge compilation, `Analyst` session, engine |
//! | [`pm_datagen`] | Adult-census-like and synthetic generators |
//! | `pm-bench` | Figure 5-7 pipelines, `parallel_bench`, `incremental_bench` |
//! | `pm-cli` | `pmx` binary: demo, quantify, interactive `session` mode |
//!
//! Other runnable examples: `adult_census`, `breast_cancer`,
//! `generalization`, `individuals` (Section 6 per-person knowledge).
//!
//! This crate re-exports the public API of every member so examples and the
//! cross-crate integration tests in `tests/` can use one import.

pub use pm_anonymize as anonymize;
pub use pm_assoc as assoc;
pub use pm_datagen as datagen;
pub use pm_linalg as linalg;
pub use pm_microdata as microdata;
pub use pm_parallel as parallel;
pub use pm_solver as solver;
pub use privacy_maxent as maxent;

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use pm_anonymize::{anatomy::AnatomyBucketizer, published::PublishedTable};
    pub use pm_assoc::miner::{MinerConfig, RuleMiner};
    pub use pm_assoc::rule::{AssociationRule, RulePolarity};
    pub use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    pub use pm_microdata::dataset::Dataset;
    pub use pm_microdata::schema::{AttributeRole, Schema};
    pub use privacy_maxent::analyst::{Analyst, AnalystReport, KnowledgeHandle, RefreshStats};
    pub use privacy_maxent::engine::{
        Engine, EngineConfig, EngineStats, Estimate, SolverKind,
    };
    pub use privacy_maxent::error::PmError;
    pub use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
    pub use privacy_maxent::metrics;
    pub use privacy_maxent::report::{PrivacyReport, ReportRow};
}
