//! Umbrella crate for the Privacy-MaxEnt reproduction workspace.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests in `tests/`. It re-exports the public API of
//! every member crate so examples can `use privacy_maxent_repro::prelude::*`.

pub use pm_anonymize as anonymize;
pub use pm_assoc as assoc;
pub use pm_datagen as datagen;
pub use pm_linalg as linalg;
pub use pm_microdata as microdata;
pub use pm_solver as solver;
pub use privacy_maxent as maxent;

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use pm_anonymize::{anatomy::AnatomyBucketizer, published::PublishedTable};
    pub use pm_assoc::miner::{MinerConfig, RuleMiner};
    pub use pm_assoc::rule::{AssociationRule, RulePolarity};
    pub use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    pub use pm_microdata::dataset::Dataset;
    pub use pm_microdata::schema::{AttributeRole, Schema};
    pub use privacy_maxent::engine::{Engine, EngineConfig};
    pub use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
    pub use privacy_maxent::metrics;
}
