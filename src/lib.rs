//! Umbrella crate for the Privacy-MaxEnt reproduction workspace.
//!
//! Reproduces **"Privacy-MaxEnt: Integrating Background Knowledge in
//! Privacy Quantification"** (Du, Teng & Zhu, SIGMOD 2008): the adversary's
//! least-biased estimate of `P(SA | QI)` for a bucketized publication is the
//! maximum-entropy joint distribution consistent with the published table's
//! invariants plus any linear background knowledge.
//!
//! # Quickstart
//!
//! Run the paper's running example end to end:
//!
//! ```bash
//! cargo run --example quickstart
//! ```
//!
//! which prints the uniform (no-knowledge) baseline, then adds the paper's
//! motivating fact `P(breast cancer | male) = 0` and shows Grace — the only
//! female in her bucket — becoming fully disclosed.
//!
//! The same pipeline in code:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! // Figure 1: original table D (10 patients) and its 3-bucket publication D'.
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//!
//! // Mine Top-(K+, K−) association rules from the original data…
//! let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
//!     .mine(&data);
//! // …take the strongest negative rule (male ⇒ ¬breast cancer, confidence 1)…
//! let kb = KnowledgeBase::from_rules(mined.top_k(0, 1), data.schema()).unwrap();
//!
//! // …and solve the constrained maxent problem.
//! let est = Engine::default().estimate(&table, &kb).unwrap();
//! let grace = table.interner().lookup(&[1, 2]).unwrap(); // (female, junior)
//! assert!((est.conditional(grace, 2) - 1.0).abs() < 1e-6); // fully disclosed
//! ```
//!
//! # Parallel engine
//!
//! The Section 5.5 decomposition splits the solve into independent
//! connected-component subproblems, which the engine runs on a
//! [`pm_parallel`] worker pool. `EngineConfig::threads` sets the pool size
//! (`0` = every available core, the default; `1` = the sequential path).
//! The thread count only changes wall time, never the estimate — results
//! merge in a fixed component order, so parallel runs are **bit-identical**
//! to sequential ones:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//! let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
//!     .mine(&data);
//! let kb = KnowledgeBase::from_rules(mined.top_k(1, 1), data.schema()).unwrap();
//!
//! let sequential = Engine::new(EngineConfig { threads: 1, ..Default::default() })
//!     .estimate(&table, &kb).unwrap();
//! let parallel = Engine::new(EngineConfig { threads: 4, ..Default::default() })
//!     .estimate(&table, &kb).unwrap();
//! for q in 0..sequential.distinct_qi() {
//!     assert_eq!(sequential.conditional_row(q), parallel.conditional_row(q));
//! }
//! ```
//!
//! At scale the decomposition is dramatic: the Adult workload (14,210
//! records, 2,842 buckets) under 300 arity-4 rules fragments into ~2,600
//! components, most irrelevant (closed-form, Theorem 5) and none larger
//! than a few dozen buckets. `pm-bench`'s `parallel_bench` binary sweeps
//! thread counts over exactly that workload and records wall time,
//! component structure and speedup in `BENCH_parallel.json`.
//!
//! # Workspace layout
//!
//! | Crate | Role |
//! |-------|------|
//! | [`pm_microdata`] | schemas, records, datasets, empirical `P(SA \| QI)` |
//! | [`pm_anonymize`] | Anatomy / Mondrian bucketizers, pseudonyms, `D'` |
//! | [`pm_assoc`] | Top-(K+, K−) association-rule mining |
//! | [`pm_linalg`] | dense + CSR sparse kernels |
//! | [`pm_solver`] | GIS/IIS, gradient, CG, L-BFGS, Newton maxent solvers |
//! | [`pm_parallel`] | scoped work-stealing executor for component solves |
//! | [`privacy_maxent`](maxent) | invariants, knowledge compilation, parallel engine |
//! | [`pm_datagen`] | Adult-census-like and synthetic generators |
//! | `pm-bench` | Figure 5-7 experiment pipelines, `parallel_bench`, criterion benches |
//! | `pm-cli` | `pm` binary: anonymize, mine, quantify (`--threads`) |
//!
//! Other runnable examples: `adult_census`, `breast_cancer`,
//! `generalization`, `individuals` (Section 6 per-person knowledge).
//!
//! This crate re-exports the public API of every member so examples and the
//! cross-crate integration tests in `tests/` can use one import.

pub use pm_anonymize as anonymize;
pub use pm_assoc as assoc;
pub use pm_datagen as datagen;
pub use pm_linalg as linalg;
pub use pm_microdata as microdata;
pub use pm_parallel as parallel;
pub use pm_solver as solver;
pub use privacy_maxent as maxent;

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use pm_anonymize::{anatomy::AnatomyBucketizer, published::PublishedTable};
    pub use pm_assoc::miner::{MinerConfig, RuleMiner};
    pub use pm_assoc::rule::{AssociationRule, RulePolarity};
    pub use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    pub use pm_microdata::dataset::Dataset;
    pub use pm_microdata::schema::{AttributeRole, Schema};
    pub use privacy_maxent::engine::{Engine, EngineConfig};
    pub use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
    pub use privacy_maxent::metrics;
}
