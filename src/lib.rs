//! Umbrella crate for the Privacy-MaxEnt reproduction workspace.
//!
//! Reproduces **"Privacy-MaxEnt: Integrating Background Knowledge in
//! Privacy Quantification"** (Du, Teng & Zhu, SIGMOD 2008): the adversary's
//! least-biased estimate of `P(SA | QI)` for a bucketized publication is the
//! maximum-entropy joint distribution consistent with the published table's
//! invariants plus any linear background knowledge.
//!
//! # Quickstart: compile once, serve many
//!
//! Section 5 proves the invariant system is a function of the published
//! table alone, so everything knowledge-independent — the term index, the
//! D'-invariants, the QI→bucket inverted index, the knowledge-free
//! Theorem 5 baseline — compiles **exactly once** into an immutable,
//! `Send + Sync` [`CompiledTable`](maxent::compiled::CompiledTable).
//! Any number of [`Analyst`](maxent::analyst::Analyst) sessions (across
//! threads) then open over one `Arc` of it in O(1), each holding only its
//! own adversary model as a copy-on-write overlay on the shared baseline:
//!
//! ```
//! use std::sync::Arc;
//! use privacy_maxent_repro::prelude::*;
//!
//! // Figure 1: original table D (10 patients) and its 3-bucket publication D'.
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//!
//! // Compile the artifact once: invariants, term index, baseline solve.
//! let artifact = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
//! assert!(artifact.stats().invariant_rows > 0);
//!
//! // Open a session: O(1), serves the Theorem 5 baseline immediately.
//! let mut analyst = Analyst::open(Arc::clone(&artifact));
//! let grace = analyst.table().interner().lookup(&[1, 2]).unwrap(); // (female, junior)
//! assert!(analyst.conditional(grace, 2) < 0.5); // baseline: Grace looks safe
//!
//! // "What if the attacker also learns that males don't get breast cancer?"
//! let handle = analyst
//!     .add_knowledge(Knowledge::Conditional {
//!         antecedent: vec![(0, 0)], // QI position 0 (gender) = male
//!         sa: 2,                    // breast cancer
//!         probability: 0.0,
//!     })
//!     .unwrap();
//! let stats = analyst.refresh().unwrap(); // re-solves only dirty components
//! assert_eq!(stats.reused + stats.resolved + stats.closed_form, stats.components);
//! assert!((analyst.conditional(grace, 2) - 1.0).abs() < 1e-6); // fully disclosed
//!
//! // Speculative what-ifs run on cheap forks — the parent is untouched,
//! // and each fork is bit-identical to a from-scratch solve of its own
//! // knowledge set.
//! let mut what_if = analyst.fork();
//! let _ = what_if
//!     .add_knowledge(Knowledge::Conditional {
//!         antecedent: vec![(1, 0)], // degree = college
//!         sa: 3,                    // hiv
//!         probability: 0.4,
//!     })
//!     .unwrap();
//! what_if.refresh().unwrap();
//! assert!((analyst.conditional(grace, 2) - 1.0).abs() < 1e-6); // parent unchanged
//!
//! // Query serving never blocks a refresh: snapshots are Arc-backed.
//! let snapshot = analyst.snapshot();
//! analyst.remove_knowledge(handle).unwrap();
//! analyst.refresh().unwrap();
//! assert!((snapshot.conditional(grace, 2) - 1.0).abs() < 1e-6); // old view intact
//! assert!(analyst.conditional(grace, 2) < 0.5);                 // baseline restored
//! # let _ = data;
//! ```
//!
//! Association rules mined from the original data (the paper's Top-(K+, K−)
//! bound) batch in directly:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//! let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
//!     .mine(&data);
//! let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
//! let handles = analyst.add_rules(mined.top_k(1, 1), data.schema()).unwrap();
//! analyst.refresh().unwrap();
//! assert_eq!(handles.len(), 2);
//! assert!(analyst.report().max_disclosure > 0.5);
//! ```
//!
//! [`Analyst::new`](maxent::analyst::Analyst::new) survives as the
//! all-in-one wrapper (build + open), and for one-off estimates the classic
//! facade still works — `Engine::estimate` opens a throwaway session, so it
//! returns the exact same bits:
//!
//! ```
//! use privacy_maxent_repro::prelude::*;
//!
//! let (data, table) = pm_anonymize::fixtures::paper_example();
//! let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
//!     .mine(&data);
//! let kb = KnowledgeBase::from_rules(mined.top_k(0, 1), data.schema()).unwrap();
//! let est: Estimate = Engine::default().estimate(&table, &kb).unwrap();
//! let grace = table.interner().lookup(&[1, 2]).unwrap();
//! assert!((est.conditional(grace, 2) - 1.0).abs() < 1e-6);
//! ```
//!
//! Run `cargo run --example quickstart` for the printed walkthrough, and
//! `pmx compile` / `pmx session` for the CLI face of the same split.
//!
//! # Live tables: `TableDelta` epochs and session rebase
//!
//! The published table itself can change — late arrivals, retractions,
//! bucket re-assignments. A [`TableDelta`](maxent::delta::TableDelta)
//! advances the artifact one **epoch**
//! ([`CompiledTable::apply`](maxent::compiled::CompiledTable::apply)),
//! recompiling only the touched buckets' invariant rows, term lists and
//! Theorem 5 baselines (everything else is `Arc`-shared with the previous
//! epoch), and resident sessions
//! [`rebase`](maxent::analyst::Analyst::rebase) onto it, carrying their
//! knowledge and solved overlay across — the next `refresh` re-solves only
//! what the delta dirtied, yet stays bit-identical to compiling the
//! post-delta table from scratch:
//!
//! ```
//! use std::sync::Arc;
//! use privacy_maxent_repro::prelude::*;
//!
//! let (_, table) = pm_anonymize::fixtures::paper_example();
//! let epoch0 = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
//! let mut analyst = Analyst::open(Arc::clone(&epoch0));
//! let handle = analyst
//!     .add_knowledge(Knowledge::Conditional {
//!         antecedent: vec![(0, 0), (1, 1)], // q3 = (male, high school)
//!         sa: 1,                            // pneumonia
//!         probability: 0.5,
//!     })
//!     .unwrap();
//! analyst.refresh().unwrap();
//!
//! // A late-arriving (female, junior) lung-cancer record lands in bucket 3.
//! let delta = TableDelta::new().insert(vec![1, 2], 4, 2);
//! let epoch1 = Arc::new(epoch0.apply(&delta).unwrap());
//! assert_eq!(epoch1.stats().recompiled_buckets, 1); // buckets 1 & 2 shared
//!
//! // Carry the session across; only the delta's footprint re-solves.
//! let stats = analyst.rebase(&epoch1).unwrap();
//! assert_eq!(stats.carried, 2, "solved overlay slices carried verbatim");
//! let refresh = analyst.refresh().unwrap();
//! assert_eq!(refresh.resolved, 0, "knowledge component untouched");
//! assert_eq!(refresh.closed_form, 1, "bucket 3 reverts to Theorem 5");
//! assert_eq!(analyst.estimate().epoch(), 1);
//!
//! // Bit-identical to compiling the post-delta table from scratch with
//! // the same knowledge set.
//! let scratch = Arc::new(
//!     CompiledTable::build(epoch1.table().clone(), EngineConfig::default()).unwrap(),
//! );
//! let mut replay = Analyst::open(scratch);
//! let _ = replay
//!     .add_knowledge(Knowledge::Conditional {
//!         antecedent: vec![(0, 0), (1, 1)],
//!         sa: 1,
//!         probability: 0.5,
//!     })
//!     .unwrap();
//! replay.refresh().unwrap();
//! assert_eq!(analyst.estimate().term_values(), replay.estimate().term_values());
//! # let _ = handle;
//! ```
//!
//! `pmx session` exposes the same loop interactively (`insert` / `retract`
//! / `move` / `rebase`), and `pm-bench`'s `table_delta_bench` measures the
//! epoch path against from-scratch recompilation
//! (`BENCH_table_delta.json`).
//!
//! # Incremental refreshes, forks and determinism
//!
//! Section 5.5 decomposes the constraint system into independent bucket
//! connected components; a knowledge delta can only change the optimum of
//! components its bucket footprint touches, so `refresh` re-solves those
//! and reuses the rest. With the default configuration every re-solve is
//! cold-started, making any interleaving of deltas — on a session or any
//! tree of its forks — **bit-identical** to a from-scratch
//! `Engine::estimate` holding the same final knowledge set, for every
//! thread count ([`EngineConfig`](maxent::engine::EngineConfig)`::threads`
//! only changes wall time). Setting `warm_start` seeds each re-solve from
//! the previous refresh's dual vectors instead — faster convergence, same
//! optimum within tolerance, but not bit-replayable.
//!
//! At Adult scale (14,210 records, 2,842 buckets, 300 arity-4 rules) the
//! one-time compile costs ~10 ms while `Analyst::open` over the shared
//! artifact is sub-microsecond — `pm-bench`'s `concurrent_bench` binary
//! measures the open speedup and the bit-exactness of concurrent forks
//! (`BENCH_concurrent.json`), alongside `incremental_bench`'s single-rule
//! delta sweep (`BENCH_incremental.json`) and `parallel_bench`'s thread
//! sweep (`BENCH_parallel.json`).
//!
//! # Workspace layout
//!
//! | Crate | Role |
//! |-------|------|
//! | [`pm_microdata`] | schemas, records, datasets, empirical `P(SA \| QI)` |
//! | [`pm_anonymize`] | Anatomy / Mondrian bucketizers, pseudonyms, `D'` |
//! | [`pm_assoc`] | Top-(K+, K−) association-rule mining |
//! | [`pm_linalg`] | dense + CSR sparse kernels |
//! | [`pm_solver`] | GIS/IIS, gradient, CG, L-BFGS, Newton maxent solvers (warm-startable) |
//! | [`pm_parallel`] | scoped work-stealing executor, dirty-set scheduling, broadcast |
//! | [`privacy_maxent`] | invariants, knowledge compilation, `CompiledTable` artifact, `Analyst` sessions |
//! | [`pm_datagen`] | Adult-census-like and synthetic generators |
//! | `pm-bench` | Figure 5-7 pipelines, `parallel_bench`, `incremental_bench`, `concurrent_bench`, `table_delta_bench` |
//! | `pm-cli` | `pmx` binary: demo, quantify, `compile`, interactive `session` mode |
//!
//! Other runnable examples: `adult_census`, `breast_cancer`,
//! `generalization`, `individuals` (Section 6 per-person knowledge, one
//! fork per scenario).
//!
//! This crate re-exports the public API of every member so examples and the
//! cross-crate integration tests in `tests/` can use one import. For the
//! crate map, the compile → open → delta → refresh → query data-flow and
//! where each paper section lives in the code, see the [`architecture`]
//! module (the rendered copy of `ARCHITECTURE.md` from the repository
//! root).

#![warn(missing_docs)]

/// The workspace architecture document (`ARCHITECTURE.md` at the
/// repository root), embedded so rustdoc readers get the crate map, the
/// compile → open → delta → refresh → query data-flow diagram, and the
/// paper-section → code index without leaving the docs.
#[doc = include_str!("../ARCHITECTURE.md")]
pub mod architecture {}

pub use pm_anonymize as anonymize;
pub use pm_assoc as assoc;
pub use pm_datagen as datagen;
pub use pm_linalg as linalg;
pub use pm_microdata as microdata;
pub use pm_parallel as parallel;
pub use pm_solver as solver;
pub use privacy_maxent as maxent;

/// One-stop imports for examples and integration tests.
pub mod prelude {
    pub use pm_anonymize::{anatomy::AnatomyBucketizer, published::PublishedTable};
    pub use pm_assoc::miner::{MinerConfig, RuleMiner};
    pub use pm_assoc::rule::{AssociationRule, RulePolarity};
    pub use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
    pub use pm_microdata::dataset::Dataset;
    pub use pm_microdata::schema::{AttributeRole, Schema};
    pub use privacy_maxent::analyst::{
        Analyst, AnalystReport, KnowledgeHandle, RebaseStats, RefreshStats,
    };
    pub use privacy_maxent::compiled::{CompileStats, CompiledTable};
    pub use privacy_maxent::delta::{AppliedDelta, DeltaOp, TableDelta};
    pub use privacy_maxent::engine::{
        Engine, EngineConfig, EngineConfigBuilder, EngineStats, Estimate, SolverKind,
    };
    pub use privacy_maxent::error::PmError;
    pub use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
    pub use privacy_maxent::metrics;
    pub use privacy_maxent::report::{PrivacyReport, ReportRow};
}
