//! Durable artifacts: versioned [`CompiledTable`] snapshots and an
//! append-only epoch WAL.
//!
//! Everything the engine compiles — the term index, the D'-invariants, the
//! Theorem-5 baselines, the interner symbol table — is a pure function of
//! the published table and the engine config, so the on-disk format stores
//! only **ground truth** (table multisets, config, baselines, epoch
//! lineage) plus the cheap-to-verify derived sections, and
//! [`CompiledTable::load`] re-derives the rest lazily on first use. A cold
//! load is a read plus a checksum sweep plus the two tiny header sections —
//! no hashing of the heavy state into Rust structures, no solving — and the
//! loaded artifact serves bit-identical estimates to the one that was
//! saved.
//!
//! # Snapshot layout (`FORMAT_VERSION` 1)
//!
//! All integers little-endian; `f64` as IEEE-754 bits (bit-preserved, so
//! estimates round-trip exactly).
//!
//! ```text
//! magic "PMXSNAP\0" (8) | version u32 | section_count u32
//! then per section, in fixed order:
//!   id u32 | payload_len u64 | checksum u64 | payload
//! sections: 1 META  2 CONFIG  3 INTERNER
//!           4 BUCKETS  5 TERMS  6 BASELINES
//! ```
//!
//! [`CompiledTable::load`] verifies the header and **every** section
//! checksum eagerly, then decodes only `META` and `CONFIG`. The heavy
//! ground-truth sections — `INTERNER`, `BUCKETS`, `TERMS`, `BASELINES` —
//! stay as raw verified bytes inside the artifact and hydrate on first use.
//! The invariant rows and the QI→bucket index are not stored at all: both
//! are pure functions of the hydrated table, re-derived on first use by the
//! same code `build` runs — bit-identical by construction, which the
//! format-stability test pins by asserting `save(load(x)) == x`.
//!
//! The checksum sweep is the whole durability story: every *random*
//! corruption — bit flips, truncated files, garbage — is caught at load
//! time (the fuzz suite sweeps exactly that space). A payload that passes
//! its checksum yet decodes inconsistently implies the checksum itself was
//! recomputed over tampered bytes (or the encoder is broken); that is
//! outside the contract, and hydration aborts with a panic rather than
//! serving bad estimates.
//!
//! # WAL layout
//!
//! ```text
//! header (28 bytes): magic "PMXWAL\0\0" | version u32 | base_epoch u64
//!                    | checksum u64 over bytes 0..20
//! record: payload_len u32 | payload | checksum u64 | commit marker u32
//! payload: epoch u64 | nops u32 | ops | ntouched u32 | touched…
//!          | nqs u32 | qs… | ops u32
//! op: tag u8 (0 insert, 1 retract, 2 move) | qi len u16 | qi values u16…
//!     | sa u16 | bucket u32  (move: from u32 | to u32)
//! ```
//!
//! A record is **committed** iff its length, checksum and commit marker are
//! all intact; [`recover`] truncates anything after the last committed
//! record (a torn tail from a crash mid-append) and replays the rest onto
//! the snapshot, erroring hard ([`PmError::Corrupt`]) on anything that is
//! bit-rot rather than a torn write: a checksum-valid record that fails to
//! decode, an epoch gap, or a replay whose [`AppliedDelta`] disagrees with
//! the recorded summary.

use std::fmt;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use pm_anonymize::published::{BucketView, PublishedTable};
use pm_microdata::qi::QiInterner;
use pm_microdata::value::Value;

use crate::compiled::{CompiledTable, CoreState};
use crate::delta::{AppliedDelta, DeltaOp, TableDelta};
use crate::engine::{EngineConfig, SolverKind};
use crate::error::PmError;
use crate::terms::{BucketTerms, TermIndex};
use crate::wire::{checksum64, Reader as R, Writer as W};

/// Leading magic of a snapshot file.
pub const MAGIC: [u8; 8] = *b"PMXSNAP\0";
/// Leading magic of a WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"PMXWAL\0\0";
/// On-disk format version (shared by snapshot and WAL). Any change to the
/// byte layout MUST bump this — the golden-fixture test fails loudly
/// otherwise.
pub const FORMAT_VERSION: u32 = 1;
/// File name of the snapshot inside a persistence directory.
pub const SNAPSHOT_FILE: &str = "snapshot.pmx";
/// File name of the WAL inside a persistence directory.
pub const WAL_FILE: &str = "wal.pmx";

const SECTION_COUNT: u32 = 6;
const SECTION_IDS: [(u32, &str); 6] = [
    (1, "meta"),
    (2, "config"),
    (3, "interner"),
    (4, "buckets"),
    (5, "terms"),
    (6, "baselines"),
];
const WAL_HEADER_LEN: usize = 28;
const WAL_COMMIT: u32 = u32::from_le_bytes(*b"CMIT");

fn io_err(path: &Path, e: &std::io::Error) -> PmError {
    PmError::Io { path: path.display().to_string(), detail: e.to_string() }
}

/// Writes `bytes` to `path` atomically: temp file in the same directory,
/// fsync, rename over the target, fsync the directory. A crash leaves
/// either the old file or the new one, never a torn mix.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), PmError> {
    let tmp = path.with_extension("tmp");
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, &e))?;
    f.write_all(bytes).map_err(|e| io_err(&tmp, &e))?;
    f.sync_all().map_err(|e| io_err(&tmp, &e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, &e))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

// -------------------------------------------------------- snapshot: encode

fn encode_section(out: &mut Vec<u8>, id: u32, payload: &[u8]) {
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

fn solver_code(kind: SolverKind) -> u8 {
    match kind {
        SolverKind::Lbfgs => 0,
        SolverKind::Gis => 1,
        SolverKind::Iis => 2,
        SolverKind::GradientDescent => 3,
    }
}

pub(crate) fn encode_snapshot(artifact: &CompiledTable) -> Vec<u8> {
    let table = artifact.table();
    let interner = table.interner();
    let config = artifact.config();
    let index = artifact.term_index();
    let m = table.num_buckets();
    let arity = if interner.distinct() == 0 { 0 } else { interner.tuple(0).len() };

    // 1 META
    let mut meta = W::default();
    meta.u64(artifact.epoch());
    meta.u64(table.total_records() as u64);
    meta.u64(table.sa_cardinality() as u64);
    meta.u64(m as u64);
    meta.u64(interner.distinct() as u64);
    meta.u64(arity as u64);
    meta.u64(index.len() as u64);
    meta.u64(artifact.num_invariants() as u64);
    match artifact.applied_delta() {
        None => meta.u8(0),
        Some(d) => {
            meta.u8(1);
            meta.count(d.num_ops());
            meta.count(d.touched_buckets().len());
            for &b in d.touched_buckets() {
                meta.count(b);
            }
            meta.count(d.qi_symbols().len());
            for &q in d.qi_symbols() {
                meta.count(q);
            }
        }
    }

    // 2 CONFIG
    let mut cfg = W::default();
    cfg.u8(solver_code(config.solver));
    cfg.u8(u8::from(config.decompose));
    cfg.u8(u8::from(config.concise_invariants));
    cfg.u8(u8::from(config.warm_start));
    cfg.u64(config.threads as u64);
    cfg.u64(config.max_iterations as u64);
    cfg.f64(config.tolerance);
    cfg.f64(config.residual_limit);

    // 3 INTERNER
    let mut sym = W::default();
    for i in 0..interner.distinct() {
        sym.count(interner.count(i));
    }
    for i in 0..interner.distinct() {
        for &v in interner.tuple(i) {
            sym.u16(v);
        }
    }

    // 4 BUCKETS
    let mut buckets = W::default();
    for b in table.buckets() {
        buckets.count(b.distinct_qi());
        for &(q, c) in b.qi_counts() {
            buckets.count(q);
            buckets.count(c);
        }
        buckets.count(b.distinct_sa());
        for &(s, c) in b.sa_counts() {
            buckets.u16(s);
            buckets.count(c);
        }
    }

    // 5 TERMS
    let mut terms = W::default();
    for bt in index.bucket_terms() {
        terms.count(bt.len());
        for &(q, s) in bt.pairs() {
            terms.count(q);
            terms.u16(s);
        }
    }

    // 6 BASELINES
    let mut baselines = W::default();
    for b in 0..m {
        let values = artifact.bucket_baseline(b);
        baselines.count(values.len());
        for &v in values.iter() {
            baselines.f64(v);
        }
    }

    let mut out = Vec::new();
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&SECTION_COUNT.to_le_bytes());
    for (id, payload) in [
        (1u32, meta.bytes()),
        (2, cfg.bytes()),
        (3, sym.bytes()),
        (4, buckets.bytes()),
        (5, terms.bytes()),
        (6, baselines.bytes()),
    ] {
        encode_section(&mut out, id, payload);
    }
    out
}

// -------------------------------------------------------- snapshot: decode

struct Section<'a> {
    payload: &'a [u8],
    /// Absolute file offset of `payload[0]`.
    base: u64,
    name: &'static str,
}

impl<'a> Section<'a> {
    fn reader(&self) -> R<'a> {
        R::new(self.payload, self.base, self.name)
    }
}

/// Splits a snapshot byte stream into its checksum-verified sections.
fn split_sections(bytes: &[u8]) -> Result<Vec<Section<'_>>, PmError> {
    let corrupt = |offset: u64, detail: String| PmError::Corrupt {
        section: "header".to_string(),
        offset,
        detail,
    };
    if bytes.len() < 16 {
        return Err(corrupt(0, format!("file is {} bytes; the header needs 16", bytes.len())));
    }
    if bytes[..8] != MAGIC {
        return Err(corrupt(0, "bad magic (not a snapshot file)".to_string()));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PmError::UnsupportedFormat { found: version, supported: FORMAT_VERSION });
    }
    let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
    if count != SECTION_COUNT {
        return Err(corrupt(12, format!("expected {SECTION_COUNT} sections, header says {count}")));
    }
    let mut pos = 16usize;
    let mut sections = Vec::with_capacity(SECTION_IDS.len());
    for &(id, name) in &SECTION_IDS {
        if bytes.len() - pos < 20 {
            return Err(corrupt(pos as u64, format!("truncated {name} section header")));
        }
        let got_id = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let sum = u64::from_le_bytes(bytes[pos + 12..pos + 20].try_into().expect("8 bytes"));
        if got_id != id {
            return Err(corrupt(pos as u64, format!("expected section {id} ({name}), found {got_id}")));
        }
        pos += 20;
        let remaining = (bytes.len() - pos) as u64;
        if len > remaining {
            return Err(corrupt(
                pos as u64 - 16,
                format!("{name} section claims {len} bytes but {remaining} remain"),
            ));
        }
        let payload = &bytes[pos..pos + len as usize];
        if checksum64(payload) != sum {
            return Err(PmError::Corrupt {
                section: name.to_string(),
                offset: pos as u64,
                detail: "section checksum mismatch".to_string(),
            });
        }
        sections.push(Section { payload, base: pos as u64, name });
        pos += len as usize;
    }
    if pos != bytes.len() {
        return Err(corrupt(pos as u64, format!("{} trailing bytes", bytes.len() - pos)));
    }
    Ok(sections)
}

struct Meta {
    epoch: u64,
    total_records: usize,
    sa_cardinality: usize,
    num_buckets: usize,
    distinct_qi: usize,
    qi_arity: usize,
    num_terms: usize,
    num_invariant_rows: usize,
    delta: Option<AppliedDelta>,
}

fn decode_meta(s: &Section<'_>) -> Result<Meta, PmError> {
    let mut r = s.reader();
    let epoch = r.u64()?;
    let total_records = r.u64()? as usize;
    let sa_cardinality = r.u64()? as usize;
    let num_buckets = r.u64()? as usize;
    let distinct_qi = r.u64()? as usize;
    let qi_arity = r.u64()? as usize;
    let num_terms = r.u64()? as usize;
    let num_invariant_rows = r.u64()? as usize;
    let delta = match r.u8()? {
        0 => None,
        1 => {
            let ops = r.u32()? as usize;
            let ntouched = r.len(4, "touched bucket")?;
            let touched = (0..ntouched).map(|_| r.u32().map(|v| v as usize)).collect::<Result<Vec<_>, _>>()?;
            let nqs = r.len(4, "delta QI symbol")?;
            let qs = (0..nqs).map(|_| r.u32().map(|v| v as usize)).collect::<Result<Vec<_>, _>>()?;
            Some(AppliedDelta { touched, qs, ops })
        }
        other => return Err(r.corrupt(format!("delta flag must be 0 or 1, found {other}"))),
    };
    r.finish()?;
    Ok(Meta {
        epoch,
        total_records,
        sa_cardinality,
        num_buckets,
        distinct_qi,
        qi_arity,
        num_terms,
        num_invariant_rows,
        delta,
    })
}

fn decode_config(s: &Section<'_>) -> Result<EngineConfig, PmError> {
    let mut r = s.reader();
    let solver = match r.u8()? {
        0 => SolverKind::Lbfgs,
        1 => SolverKind::Gis,
        2 => SolverKind::Iis,
        3 => SolverKind::GradientDescent,
        other => return Err(r.corrupt(format!("unknown solver code {other}"))),
    };
    let decompose = r.u8()? != 0;
    let concise = r.u8()? != 0;
    let warm_start = r.u8()? != 0;
    let threads = r.u64()? as usize;
    let max_iterations = r.u64()? as usize;
    let tolerance = r.f64()?;
    let residual_limit = r.f64()?;
    r.finish()?;
    Ok(EngineConfig::builder()
        .solver(solver)
        .decompose(decompose)
        .concise_invariants(concise)
        .warm_start(warm_start)
        .threads(threads)
        .max_iterations(max_iterations)
        .tolerance(tolerance)
        .residual_limit(residual_limit)
        .build())
}

fn decode_interner(s: &Section<'_>, meta: &Meta) -> Result<QiInterner, PmError> {
    let mut r = s.reader();
    let expect = meta
        .distinct_qi
        .checked_mul(4)
        .and_then(|c| meta.distinct_qi.checked_mul(meta.qi_arity)?.checked_mul(2).map(|t| c + t));
    if expect != Some(r.remaining()) {
        return Err(r.corrupt(format!(
            "interner payload is {} bytes; meta implies {expect:?}",
            r.remaining()
        )));
    }
    let mut counts = Vec::with_capacity(meta.distinct_qi);
    for _ in 0..meta.distinct_qi {
        counts.push(r.u32()? as usize);
    }
    let mut tuples = Vec::with_capacity(meta.distinct_qi);
    for _ in 0..meta.distinct_qi {
        let mut t = Vec::with_capacity(meta.qi_arity);
        for _ in 0..meta.qi_arity {
            t.push(r.u16()?);
        }
        tuples.push(t);
    }
    r.finish()?;
    Ok(QiInterner::from_parts(tuples, counts))
}

fn decode_table(s: &Section<'_>, meta: &Meta, interner: QiInterner) -> Result<PublishedTable, PmError> {
    let mut r = s.reader();
    let mut buckets = Vec::with_capacity(meta.num_buckets.min(r.remaining() / 8 + 1));
    for _ in 0..meta.num_buckets {
        let nq = r.len(8, "bucket QI entry")?;
        let mut qi_counts = Vec::with_capacity(nq);
        for _ in 0..nq {
            let q = r.u32()? as usize;
            let c = r.u32()? as usize;
            qi_counts.push((q, c));
        }
        let ns = r.len(6, "bucket SA entry")?;
        let mut sa_counts = Vec::with_capacity(ns);
        for _ in 0..ns {
            let s = r.u16()?;
            let c = r.u32()? as usize;
            sa_counts.push((s, c));
        }
        let view = BucketView::from_counts(qi_counts, sa_counts)
            .map_err(|e| r.corrupt(e.to_string()))?;
        buckets.push(Arc::new(view));
    }
    r.finish()?;
    let table = PublishedTable::from_parts(interner, buckets, meta.sa_cardinality)
        .map_err(|e| PmError::Corrupt {
            section: s.name.to_string(),
            offset: s.base,
            detail: e.to_string(),
        })?;
    if table.total_records() != meta.total_records {
        return Err(PmError::Corrupt {
            section: s.name.to_string(),
            offset: s.base,
            detail: format!(
                "bucket sizes sum to {} records but meta says {}",
                table.total_records(),
                meta.total_records
            ),
        });
    }
    Ok(table)
}

fn decode_terms(s: &Section<'_>, meta: &Meta) -> Result<TermIndex, PmError> {
    let mut r = s.reader();
    let mut buckets = Vec::with_capacity(meta.num_buckets.min(r.remaining() / 4 + 1));
    for _ in 0..meta.num_buckets {
        let n = r.len(6, "term")?;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let q = r.u32()? as usize;
            let s_val = r.u16()?;
            if q >= meta.distinct_qi {
                return Err(r.corrupt(format!(
                    "term references QI symbol {q} but only {} are interned",
                    meta.distinct_qi
                )));
            }
            if s_val as usize >= meta.sa_cardinality {
                return Err(r.corrupt(format!(
                    "term references SA value {s_val} outside cardinality {}",
                    meta.sa_cardinality
                )));
            }
            pairs.push((q, s_val));
        }
        buckets.push(Arc::new(BucketTerms::from_pairs(pairs)));
    }
    r.finish()?;
    let index = TermIndex::from_buckets(buckets);
    if index.len() != meta.num_terms {
        return Err(PmError::Corrupt {
            section: s.name.to_string(),
            offset: s.base,
            detail: format!("{} terms decoded but meta says {}", index.len(), meta.num_terms),
        });
    }
    Ok(index)
}

fn decode_baselines(
    s: &Section<'_>,
    meta: &Meta,
    index: &TermIndex,
) -> Result<Vec<Arc<[f64]>>, PmError> {
    let mut r = s.reader();
    let mut out = Vec::with_capacity(meta.num_buckets.min(r.remaining() / 4 + 1));
    for b in 0..meta.num_buckets {
        let n = r.len(8, "baseline value")?;
        let expect = index.bucket_range(b).len();
        if n != expect {
            return Err(r.corrupt(format!(
                "bucket {b} stores {n} baseline values but has {expect} terms"
            )));
        }
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            values.push(r.f64()?);
        }
        out.push(Arc::from(values));
    }
    r.finish()?;
    Ok(out)
}

/// The heavy snapshot sections, kept as raw checksum-verified bytes plus
/// the decoded META scalars that size them — hydrated into the artifact's
/// [`CoreState`] on first use instead of on the load path.
pub(crate) struct DeferredSnapshot {
    bytes: Vec<u8>,
    /// `(offset, len)` of the INTERNER, BUCKETS, TERMS and BASELINES
    /// payloads inside `bytes`.
    interner: (usize, usize),
    buckets: (usize, usize),
    terms: (usize, usize),
    baselines: (usize, usize),
    meta: Meta,
}

impl fmt::Debug for DeferredSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeferredSnapshot")
            .field("bytes", &self.bytes.len())
            .finish_non_exhaustive()
    }
}

impl DeferredSnapshot {
    pub(crate) fn records(&self) -> usize {
        self.meta.total_records
    }
    pub(crate) fn buckets(&self) -> usize {
        self.meta.num_buckets
    }
    pub(crate) fn distinct_qi(&self) -> usize {
        self.meta.distinct_qi
    }
    pub(crate) fn num_terms(&self) -> usize {
        self.meta.num_terms
    }

    fn section(&self, (offset, len): (usize, usize), name: &'static str) -> Section<'_> {
        Section { payload: &self.bytes[offset..offset + len], base: offset as u64, name }
    }

    /// Materializes the deferred sections into the artifact's [`CoreState`].
    ///
    /// Every byte here already passed its section checksum at load time, so
    /// random corruption (bit flips, truncation, garbage — the entire space
    /// the fuzz suite sweeps) can never reach this point. A payload that is
    /// checksum-valid yet structurally inconsistent means the checksums were
    /// recomputed over tampered bytes or the encoder is broken; that is
    /// outside the durability contract (see the [module docs](self)), and
    /// hydration aborts loudly instead of serving bad estimates.
    pub(crate) fn hydrate(&self) -> CoreState {
        let decode = || -> Result<CoreState, PmError> {
            let interner = decode_interner(&self.section(self.interner, "interner"), &self.meta)?;
            let table = decode_table(&self.section(self.buckets, "buckets"), &self.meta, interner)?;
            let index = decode_terms(&self.section(self.terms, "terms"), &self.meta)?;
            let bucket_baselines =
                decode_baselines(&self.section(self.baselines, "baselines"), &self.meta, &index)?;
            Ok(CoreState { table, index: Arc::new(index), bucket_baselines })
        };
        decode().unwrap_or_else(|e| {
            panic!(
                "snapshot passed its checksums but is structurally inconsistent \
                 (deliberate tampering or an encoder bug): {e}"
            )
        })
    }
}

pub(crate) fn decode_snapshot(bytes: Vec<u8>, start: Instant) -> Result<CompiledTable, PmError> {
    let sections = split_sections(&bytes)?;
    let mut meta = decode_meta(&sections[0])?;
    let config = decode_config(&sections[1])?;
    if meta.distinct_qi > 0 && meta.qi_arity == 0 {
        return Err(PmError::Corrupt {
            section: "meta".to_string(),
            offset: 0,
            detail: "interned tuples with zero arity".to_string(),
        });
    }
    let interner = (sections[2].base as usize, sections[2].payload.len());
    let buckets = (sections[3].base as usize, sections[3].payload.len());
    let terms = (sections[4].base as usize, sections[4].payload.len());
    let baselines = (sections[5].base as usize, sections[5].payload.len());
    let (epoch, invariant_rows, delta) = (meta.epoch, meta.num_invariant_rows, meta.delta.take());
    let snapshot = DeferredSnapshot { bytes, interner, buckets, terms, baselines, meta };
    Ok(CompiledTable::from_persisted(snapshot, config, epoch, delta, invariant_rows, start.elapsed()))
}

impl CompiledTable {
    /// Saves a versioned snapshot of this artifact to `path` (atomically:
    /// temp file + rename), returning the snapshot size in bytes. The
    /// snapshot captures the full serving state — table multisets, interner
    /// symbol table, term index, Theorem-5 baselines, epoch and delta
    /// summary; the invariant rows and QI→bucket index re-derive from the
    /// table — so [`CompiledTable::load`] serves bit-identical estimates.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<u64, PmError> {
        assert!(self.has_baseline(), "cannot persist an internal shell");
        let bytes = encode_snapshot(self);
        write_atomic(path.as_ref(), &bytes)?;
        Ok(bytes.len() as u64)
    }

    /// Loads a snapshot written by [`CompiledTable::save`]. The header and
    /// **every** section checksum are verified eagerly, so corrupt input —
    /// flips, truncation, garbage — yields [`PmError::Corrupt`] here (never
    /// a panic or unbounded allocation) and a future format yields
    /// [`PmError::UnsupportedFormat`]. Only the two small header sections
    /// are decoded on this path: the heavy state (interner, table, term
    /// index, baselines) hydrates from the verified bytes on first use, and
    /// the derived products (invariant rows, QI→bucket index, lookup maps)
    /// re-derive after that — which is what keeps a cold load an order of
    /// magnitude cheaper than a rebuild. The loaded artifact gets a fresh
    /// lineage: sessions cannot rebase across a save/load boundary.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PmError> {
        let start = Instant::now();
        let bytes = fs::read(path.as_ref()).map_err(|e| io_err(path.as_ref(), &e))?;
        decode_snapshot(bytes, start)
    }
}

// --------------------------------------------------------------------- WAL

fn encode_wal_header(base_epoch: u64) -> [u8; WAL_HEADER_LEN] {
    let mut h = [0u8; WAL_HEADER_LEN];
    h[..8].copy_from_slice(&WAL_MAGIC);
    h[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    h[12..20].copy_from_slice(&base_epoch.to_le_bytes());
    let sum = checksum64(&h[..20]);
    h[20..28].copy_from_slice(&sum.to_le_bytes());
    h
}

fn encode_wal_record(epoch: u64, delta: &TableDelta, applied: &AppliedDelta) -> Vec<u8> {
    let mut p = W::default();
    p.u64(epoch);
    p.count(delta.len());
    for op in delta.ops() {
        let (tag, qi, sa) = match op {
            DeltaOp::Insert { qi, sa, .. } => (0u8, qi, *sa),
            DeltaOp::Retract { qi, sa, .. } => (1, qi, *sa),
            DeltaOp::Move { qi, sa, .. } => (2, qi, *sa),
        };
        p.u8(tag);
        p.u16(u16::try_from(qi.len()).expect("QI arity fits u16"));
        for &v in qi {
            p.u16(v);
        }
        p.u16(sa);
        match op {
            DeltaOp::Insert { bucket, .. } | DeltaOp::Retract { bucket, .. } => p.count(*bucket),
            DeltaOp::Move { from, to, .. } => {
                p.count(*from);
                p.count(*to);
            }
        }
    }
    p.count(applied.touched_buckets().len());
    for &b in applied.touched_buckets() {
        p.count(b);
    }
    p.count(applied.qi_symbols().len());
    for &q in applied.qi_symbols() {
        p.count(q);
    }
    p.count(applied.num_ops());

    let mut out = W::default();
    out.count(p.len());
    out.extend(p.bytes());
    out.u64(checksum64(p.bytes()));
    out.u32(WAL_COMMIT);
    out.into_bytes()
}

/// One committed WAL record, decoded.
struct WalRecord {
    epoch: u64,
    delta: TableDelta,
    touched: Vec<usize>,
    qs: Vec<usize>,
    ops: usize,
}

/// Decodes one checksum-valid record payload. Failures here are hard
/// corruption ([`PmError::Corrupt`]), not torn tails: the checksum already
/// vouched for the bytes.
fn decode_wal_payload(payload: &[u8], base: u64) -> Result<WalRecord, PmError> {
    let mut r = R::new(payload, base, "wal");
    let epoch = r.u64()?;
    let nops = r.len(7, "delta op")?;
    let mut delta = TableDelta::new();
    for _ in 0..nops {
        let tag = r.u8()?;
        let arity = r.u16()? as usize;
        if arity * 2 > r.remaining() {
            return Err(r.corrupt(format!(
                "QI arity {arity} cannot fit in the {} bytes remaining",
                r.remaining()
            )));
        }
        let mut qi = Vec::with_capacity(arity);
        for _ in 0..arity {
            qi.push(r.u16()?);
        }
        let sa: Value = r.u16()?;
        delta = match tag {
            0 => delta.insert(qi, sa, r.u32()? as usize),
            1 => delta.retract(qi, sa, r.u32()? as usize),
            2 => {
                let from = r.u32()? as usize;
                let to = r.u32()? as usize;
                delta.move_record(qi, sa, from, to)
            }
            other => return Err(r.corrupt(format!("unknown delta op tag {other}"))),
        };
    }
    let ntouched = r.len(4, "touched bucket")?;
    let touched =
        (0..ntouched).map(|_| r.u32().map(|v| v as usize)).collect::<Result<Vec<_>, _>>()?;
    let nqs = r.len(4, "QI symbol")?;
    let qs = (0..nqs).map(|_| r.u32().map(|v| v as usize)).collect::<Result<Vec<_>, _>>()?;
    let ops = r.u32()? as usize;
    r.finish()?;
    Ok(WalRecord { epoch, delta, touched, qs, ops })
}

/// Result of scanning a whole WAL file.
struct WalScan {
    base_epoch: u64,
    records: Vec<WalRecord>,
    /// Byte length of the committed prefix (header + whole records).
    committed_len: u64,
    /// Whether bytes past `committed_len` form a torn (uncommitted) tail.
    torn: bool,
}

/// Scans a WAL byte stream: validates the header, then walks records until
/// the bytes run out or stop being committed. An invalid *complete* header
/// is hard corruption; an incomplete record (length, payload, checksum or
/// commit marker missing/mismatched) marks a torn tail. Checksum-valid but
/// undecodable payloads and epoch gaps are hard corruption.
fn scan_wal(bytes: &[u8], path: &Path) -> Result<WalScan, PmError> {
    debug_assert!(bytes.len() >= WAL_HEADER_LEN, "caller handles short files");
    let corrupt = |offset: u64, detail: String| PmError::Corrupt {
        section: "wal".to_string(),
        offset,
        detail,
    };
    if bytes[..8] != WAL_MAGIC {
        return Err(corrupt(0, format!("bad magic (not a WAL file): {}", path.display())));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(PmError::UnsupportedFormat { found: version, supported: FORMAT_VERSION });
    }
    let base_epoch = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let sum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    if checksum64(&bytes[..20]) != sum {
        return Err(corrupt(20, "WAL header checksum mismatch".to_string()));
    }

    let mut pos = WAL_HEADER_LEN;
    let mut records = Vec::new();
    let mut next_epoch = base_epoch + 1;
    let torn = loop {
        if pos == bytes.len() {
            break false;
        }
        if bytes.len() - pos < 4 {
            break true;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let Some(total) = len.checked_add(16) else { break true };
        if bytes.len() - pos < total {
            break true;
        }
        let payload = &bytes[pos + 4..pos + 4 + len];
        let sum =
            u64::from_le_bytes(bytes[pos + 4 + len..pos + 12 + len].try_into().expect("8 bytes"));
        let marker =
            u32::from_le_bytes(bytes[pos + 12 + len..pos + 16 + len].try_into().expect("4 bytes"));
        if checksum64(payload) != sum || marker != WAL_COMMIT {
            break true;
        }
        let record = decode_wal_payload(payload, (pos + 4) as u64)?;
        if record.epoch != next_epoch {
            return Err(corrupt(
                (pos + 4) as u64,
                format!("epoch gap: record advances to {} but WAL expects {next_epoch}", record.epoch),
            ));
        }
        next_epoch += 1;
        records.push(record);
        pos += total;
    };
    Ok(WalScan { base_epoch, records, committed_len: pos as u64, torn })
}

/// Append handle on an epoch WAL. Each [`EpochWal::append`] writes one
/// committed record (`fsync`ed before returning), so a crash can tear at
/// most the record being written — which [`recover`] truncates.
#[derive(Debug)]
pub struct EpochWal {
    file: fs::File,
    path: PathBuf,
    base_epoch: u64,
    next_epoch: u64,
}

impl EpochWal {
    /// Creates (or truncates) the WAL in `dir`, anchored at `base_epoch` —
    /// the epoch of the snapshot it extends.
    pub fn create(dir: impl AsRef<Path>, base_epoch: u64) -> Result<Self, PmError> {
        let path = dir.as_ref().join(WAL_FILE);
        let mut file = fs::File::create(&path).map_err(|e| io_err(&path, &e))?;
        file.write_all(&encode_wal_header(base_epoch)).map_err(|e| io_err(&path, &e))?;
        file.sync_all().map_err(|e| io_err(&path, &e))?;
        Ok(EpochWal { file, path, base_epoch, next_epoch: base_epoch + 1 })
    }

    /// Opens the WAL in `dir` for appending, strictly: the whole file must
    /// scan clean. A torn tail is reported as [`PmError::Corrupt`] telling
    /// the caller to run [`recover`] (which truncates it) first.
    pub fn open_append(dir: impl AsRef<Path>) -> Result<Self, PmError> {
        let path = dir.as_ref().join(WAL_FILE);
        let bytes = fs::read(&path).map_err(|e| io_err(&path, &e))?;
        if bytes.len() < WAL_HEADER_LEN {
            return Err(PmError::Corrupt {
                section: "wal".to_string(),
                offset: 0,
                detail: format!(
                    "file is {} bytes, shorter than the {WAL_HEADER_LEN}-byte header; run recover first",
                    bytes.len()
                ),
            });
        }
        let scan = scan_wal(&bytes, &path)?;
        if scan.torn {
            return Err(PmError::Corrupt {
                section: "wal".to_string(),
                offset: scan.committed_len,
                detail: "torn record tail; run recover first".to_string(),
            });
        }
        let next_epoch = scan.base_epoch + 1 + scan.records.len() as u64;
        let file = fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .map_err(|e| io_err(&path, &e))?;
        Ok(EpochWal { file, path, base_epoch: scan.base_epoch, next_epoch })
    }

    /// The snapshot epoch this WAL extends.
    #[must_use]
    pub fn base_epoch(&self) -> u64 {
        self.base_epoch
    }

    /// The epoch the next appended record must advance the table to.
    #[must_use]
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Appends one committed epoch record: the [`TableDelta`] that advanced
    /// the table to `epoch` plus the [`AppliedDelta`] summary the replay
    /// must reproduce. Durable (`fsync`) before returning.
    ///
    /// # Errors
    /// [`PmError::EpochMismatch`] if `epoch` is not the WAL's next epoch —
    /// the log must stay gapless and ordered.
    pub fn append(
        &mut self,
        epoch: u64,
        delta: &TableDelta,
        applied: &AppliedDelta,
    ) -> Result<(), PmError> {
        if epoch != self.next_epoch {
            return Err(PmError::EpochMismatch {
                session_epoch: self.next_epoch,
                artifact_epoch: epoch,
                detail: "WAL appends must be gapless".to_string(),
            });
        }
        let record = encode_wal_record(epoch, delta, applied);
        self.file.write_all(&record).map_err(|e| io_err(&self.path, &e))?;
        self.file.sync_data().map_err(|e| io_err(&self.path, &e))?;
        self.next_epoch += 1;
        Ok(())
    }
}

// ---------------------------------------------------------------- recovery

/// What [`recover`] reconstructed.
#[derive(Debug)]
pub struct Recovered {
    /// The artifact at the last fully-committed epoch.
    pub artifact: CompiledTable,
    /// WAL records replayed onto the snapshot.
    pub replayed: usize,
    /// WAL records skipped because the snapshot already contained their
    /// epoch (a crash between [`compact`]'s snapshot swap and WAL reset).
    pub skipped: usize,
    /// Bytes of torn (uncommitted) WAL tail truncated away.
    pub truncated_bytes: u64,
}

/// Restores the current artifact from a persistence directory: loads
/// `snapshot.pmx`, replays the committed `wal.pmx` tail on top, and repairs
/// the WAL (truncating any torn record, recreating a missing or
/// header-torn file) so that [`EpochWal::open_append`] succeeds afterwards.
///
/// Torn ≠ corrupt: incomplete trailing bytes are the expected residue of a
/// crash mid-append and are silently truncated, while a committed record
/// that fails to decode, an epoch gap, a replay failure
/// ([`PmError::WalReplay`]) or a summary mismatch is real corruption and
/// errors out without modifying anything.
pub fn recover(dir: impl AsRef<Path>) -> Result<Recovered, PmError> {
    let dir = dir.as_ref();
    let artifact = CompiledTable::load(dir.join(SNAPSHOT_FILE))?;
    let wal_path = dir.join(WAL_FILE);

    let bytes = match fs::read(&wal_path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            // First boot after a save with no WAL yet: create a fresh one.
            EpochWal::create(dir, artifact.epoch())?;
            return Ok(Recovered { artifact, replayed: 0, skipped: 0, truncated_bytes: 0 });
        }
        Err(e) => return Err(io_err(&wal_path, &e)),
    };

    if bytes.len() < WAL_HEADER_LEN {
        // Torn header (crash during WAL creation): rewrite it fresh.
        let truncated = bytes.len() as u64;
        EpochWal::create(dir, artifact.epoch())?;
        return Ok(Recovered { artifact, replayed: 0, skipped: 0, truncated_bytes: truncated });
    }

    let scan = scan_wal(&bytes, &wal_path)?;
    if scan.base_epoch > artifact.epoch() {
        return Err(PmError::Corrupt {
            section: "wal".to_string(),
            offset: 12,
            detail: format!(
                "WAL base epoch {} is ahead of the snapshot epoch {}",
                scan.base_epoch,
                artifact.epoch()
            ),
        });
    }

    let mut artifact = artifact;
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    for record in &scan.records {
        if record.epoch <= artifact.epoch() {
            skipped += 1;
            continue;
        }
        // The scan proved in-WAL contiguity, so the first non-skipped
        // record is exactly artifact.epoch() + 1.
        let next = artifact.apply(&record.delta).map_err(|e| PmError::WalReplay {
            epoch: record.epoch,
            source: Box::new(e),
        })?;
        let applied = next.applied_delta().expect("apply always records a delta");
        if applied.touched != record.touched || applied.qs != record.qs || applied.ops != record.ops
        {
            return Err(PmError::Corrupt {
                section: "wal".to_string(),
                offset: scan.committed_len,
                detail: format!(
                    "replay of epoch {} disagrees with the recorded summary",
                    record.epoch
                ),
            });
        }
        artifact = next;
        replayed += 1;
    }

    let truncated_bytes = bytes.len() as u64 - scan.committed_len;
    if scan.torn {
        let f = fs::OpenOptions::new()
            .write(true)
            .open(&wal_path)
            .map_err(|e| io_err(&wal_path, &e))?;
        f.set_len(scan.committed_len).map_err(|e| io_err(&wal_path, &e))?;
        f.sync_all().map_err(|e| io_err(&wal_path, &e))?;
    }
    Ok(Recovered { artifact, replayed, skipped, truncated_bytes })
}

/// What [`compact`] did.
#[derive(Debug)]
pub struct CompactStats {
    /// Epoch of the new snapshot.
    pub epoch: u64,
    /// WAL records folded into it.
    pub folded: usize,
    /// Size of the new snapshot in bytes.
    pub snapshot_bytes: u64,
}

/// Folds the WAL into a fresh snapshot: [`recover`] to the current epoch,
/// atomically replace `snapshot.pmx`, then reset `wal.pmx` to an empty log
/// anchored at the new snapshot's epoch. Crash-safe at every step: the
/// snapshot swap is atomic, and if the process dies before the WAL reset,
/// the next [`recover`] simply skips the already-folded records.
pub fn compact(dir: impl AsRef<Path>) -> Result<CompactStats, PmError> {
    let dir = dir.as_ref();
    let recovered = recover(dir)?;
    let snapshot_bytes = recovered.artifact.save(dir.join(SNAPSHOT_FILE))?;
    EpochWal::create(dir, recovered.artifact.epoch())?;
    Ok(CompactStats {
        epoch: recovered.artifact.epoch(),
        folded: recovered.replayed,
        snapshot_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use pm_anonymize::fixtures::paper_example;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("pmx-persist-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn paper_artifact() -> CompiledTable {
        let (_, table) = paper_example();
        CompiledTable::build(table, EngineConfig::default()).expect("baseline solves")
    }

    #[test]
    fn checksum_is_deterministic_and_flip_sensitive() {
        let data: Vec<u8> = (0..257u16).map(|i| (i % 251) as u8).collect();
        let base = checksum64(&data);
        assert_eq!(base, checksum64(&data), "deterministic");
        assert_ne!(checksum64(&[]), checksum64(&[0]), "length is mixed in");
        for i in 0..data.len() {
            for bit in [0x01u8, 0x80] {
                let mut flipped = data.clone();
                flipped[i] ^= bit;
                assert_ne!(base, checksum64(&flipped), "flip at byte {i} undetected");
            }
        }
    }

    #[test]
    fn reader_rejects_overruns_and_oversized_counts() {
        let mut w = W::default();
        w.u32(7);
        w.u16(3);
        let mut r = R::new(w.bytes(), 100, "meta");
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 3);
        let err = r.u64().unwrap_err();
        match &err {
            PmError::Corrupt { section, offset, .. } => {
                assert_eq!(section, "meta");
                assert_eq!(*offset, 106);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }

        // A count claiming more items than the payload could hold must be
        // rejected before any allocation.
        let mut w = W::default();
        w.u32(u32::MAX);
        let mut r = R::new(w.bytes(), 0, "terms");
        assert!(matches!(r.len(6, "term"), Err(PmError::Corrupt { .. })));
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let artifact = paper_artifact();
        let dir = tmpdir("roundtrip");
        let path = dir.join(SNAPSHOT_FILE);
        let written = artifact.save(&path).unwrap();
        assert_eq!(written, fs::metadata(&path).unwrap().len());

        let loaded = CompiledTable::load(&path).unwrap();
        assert_eq!(loaded.epoch(), artifact.epoch());
        assert_eq!(loaded.num_invariants(), artifact.num_invariants());
        assert_eq!(loaded.term_index().len(), artifact.term_index().len());
        assert_eq!(
            loaded.baseline_estimate().term_values(),
            artifact.baseline_estimate().term_values(),
            "estimates must be bit-identical"
        );
        // Format stability: re-encoding the loaded artifact reproduces the
        // file byte for byte, which pins stored == lazily-derived sections.
        assert_eq!(encode_snapshot(&loaded), fs::read(&path).unwrap());
    }

    #[test]
    fn snapshot_preserves_epoch_and_delta_summary() {
        let artifact = paper_artifact();
        let delta = TableDelta::new().insert(vec![0, 0], 0, 1);
        let e1 = artifact.apply(&delta).unwrap();
        let dir = tmpdir("epoch");
        let path = dir.join(SNAPSHOT_FILE);
        e1.save(&path).unwrap();
        let loaded = CompiledTable::load(&path).unwrap();
        assert_eq!(loaded.epoch(), 1);
        let d = loaded.applied_delta().expect("delta summary persists");
        assert_eq!(d.touched_buckets(), e1.applied_delta().unwrap().touched_buckets());
        assert_eq!(d.qi_symbols(), e1.applied_delta().unwrap().qi_symbols());
        assert_eq!(d.num_ops(), 1);
        assert_eq!(
            loaded.baseline_estimate().term_values(),
            e1.baseline_estimate().term_values()
        );
    }

    #[test]
    fn loaded_artifact_applies_deltas_like_the_original() {
        let artifact = paper_artifact();
        let dir = tmpdir("apply-after-load");
        let path = dir.join(SNAPSHOT_FILE);
        artifact.save(&path).unwrap();
        let loaded = CompiledTable::load(&path).unwrap();
        let delta = TableDelta::new().insert(vec![1, 3], 0, 2);
        let a = artifact.apply(&delta).unwrap();
        let b = loaded.apply(&delta).unwrap();
        assert_eq!(
            a.baseline_estimate().term_values(),
            b.baseline_estimate().term_values()
        );
        // Structural sharing survives the load: untouched buckets of the
        // loaded lineage share with the loaded parent.
        assert!(b.bucket_shared_with(&loaded, 0));
        assert!(!b.bucket_shared_with(&loaded, 2));
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let artifact = paper_artifact();
        let dir = tmpdir("magic");
        let path = dir.join(SNAPSHOT_FILE);
        artifact.save(&path).unwrap();
        let mut bytes = fs::read(&path).unwrap();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        fs::write(&path, &wrong_magic).unwrap();
        assert!(matches!(
            CompiledTable::load(&path),
            Err(PmError::Corrupt { .. })
        ));

        bytes[8..12].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&path, &bytes).unwrap();
        match CompiledTable::load(&path).unwrap_err() {
            PmError::UnsupportedFormat { found, supported } => {
                assert_eq!(found, FORMAT_VERSION + 1);
                assert_eq!(supported, FORMAT_VERSION);
            }
            other => panic!("expected UnsupportedFormat, got {other:?}"),
        }

        fs::remove_file(&path).unwrap();
        assert!(matches!(CompiledTable::load(&path), Err(PmError::Io { .. })));
    }

    #[test]
    fn truncated_snapshot_is_corrupt_not_panic() {
        let artifact = paper_artifact();
        let dir = tmpdir("truncate-snap");
        let path = dir.join(SNAPSHOT_FILE);
        artifact.save(&path).unwrap();
        let bytes = fs::read(&path).unwrap();
        for cut in [0, 4, 15, 16, 30, bytes.len() / 2, bytes.len() - 1] {
            fs::write(&path, &bytes[..cut]).unwrap();
            let err = CompiledTable::load(&path).unwrap_err();
            assert!(
                matches!(err, PmError::Corrupt { .. }),
                "cut at {cut}: expected Corrupt, got {err:?}"
            );
        }
    }

    #[test]
    fn wal_appends_replay_and_reject_gaps() {
        let e0 = paper_artifact();
        let dir = tmpdir("wal");
        e0.save(dir.join(SNAPSHOT_FILE)).unwrap();
        let mut wal = EpochWal::create(&dir, e0.epoch()).unwrap();
        assert_eq!(wal.base_epoch(), 0);
        assert_eq!(wal.next_epoch(), 1);

        let d1 = TableDelta::new().insert(vec![0, 0], 0, 1);
        let e1 = e0.apply(&d1).unwrap();
        wal.append(1, &d1, e1.applied_delta().unwrap()).unwrap();
        let d2 = TableDelta::new().move_record(vec![0, 0], 0, 0, 2);
        let e2 = e1.apply(&d2).unwrap();
        // Gapless: skipping an epoch is rejected before touching the file.
        assert!(matches!(
            wal.append(5, &d2, e2.applied_delta().unwrap()),
            Err(PmError::EpochMismatch { .. })
        ));
        wal.append(2, &d2, e2.applied_delta().unwrap()).unwrap();
        drop(wal);

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.replayed, 2);
        assert_eq!(recovered.skipped, 0);
        assert_eq!(recovered.truncated_bytes, 0);
        assert_eq!(recovered.artifact.epoch(), 2);
        assert_eq!(
            recovered.artifact.baseline_estimate().term_values(),
            e2.baseline_estimate().term_values(),
            "recovered estimate must be bit-identical to the live chain"
        );

        // The repaired WAL reopens for appending at the right epoch.
        let wal = EpochWal::open_append(&dir).unwrap();
        assert_eq!(wal.next_epoch(), 3);
    }

    #[test]
    fn recover_truncates_torn_tail_and_open_append_demands_it() {
        let e0 = paper_artifact();
        let dir = tmpdir("torn");
        e0.save(dir.join(SNAPSHOT_FILE)).unwrap();
        let mut wal = EpochWal::create(&dir, 0).unwrap();
        let d1 = TableDelta::new().insert(vec![0, 0], 0, 1);
        let e1 = e0.apply(&d1).unwrap();
        wal.append(1, &d1, e1.applied_delta().unwrap()).unwrap();
        drop(wal);

        let clean = fs::read(dir.join(WAL_FILE)).unwrap();
        let mut torn = clean.clone();
        torn.extend_from_slice(&[0x13, 0x37, 0x00]); // crash mid-append
        fs::write(dir.join(WAL_FILE), &torn).unwrap();

        assert!(matches!(
            EpochWal::open_append(&dir),
            Err(PmError::Corrupt { .. })
        ));
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.artifact.epoch(), 1);
        assert_eq!(recovered.replayed, 1);
        assert_eq!(recovered.truncated_bytes, 3);
        assert_eq!(fs::read(dir.join(WAL_FILE)).unwrap(), clean, "tail truncated");
        assert!(EpochWal::open_append(&dir).is_ok(), "repaired WAL reopens");
    }

    #[test]
    fn compact_folds_wal_and_survives_reapplied_records() {
        let e0 = paper_artifact();
        let dir = tmpdir("compact");
        e0.save(dir.join(SNAPSHOT_FILE)).unwrap();
        let mut wal = EpochWal::create(&dir, 0).unwrap();
        let d1 = TableDelta::new().insert(vec![0, 0], 0, 1);
        let e1 = e0.apply(&d1).unwrap();
        wal.append(1, &d1, e1.applied_delta().unwrap()).unwrap();
        let wal_before_compact = fs::read(dir.join(WAL_FILE)).unwrap();
        drop(wal);

        let stats = compact(&dir).unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.folded, 1);
        assert!(stats.snapshot_bytes > 0);
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.artifact.epoch(), 1);
        assert_eq!(recovered.replayed, 0, "WAL was reset");

        // Crash window: snapshot swapped but WAL reset never happened. The
        // stale record's epoch ≤ snapshot epoch and must be skipped.
        fs::write(dir.join(WAL_FILE), &wal_before_compact).unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.skipped, 1);
        assert_eq!(recovered.replayed, 0);
        assert_eq!(recovered.artifact.epoch(), 1);
        assert_eq!(
            recovered.artifact.baseline_estimate().term_values(),
            e1.baseline_estimate().term_values()
        );
    }

    #[test]
    fn missing_wal_is_recreated_and_future_base_is_corrupt() {
        let e0 = paper_artifact();
        let dir = tmpdir("nowal");
        e0.save(dir.join(SNAPSHOT_FILE)).unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.artifact.epoch(), 0);
        assert!(dir.join(WAL_FILE).exists(), "fresh WAL created");

        // A header-torn WAL (crash during creation) is rewritten fresh.
        fs::write(dir.join(WAL_FILE), b"PMXW").unwrap();
        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.truncated_bytes, 4);
        assert!(EpochWal::open_append(&dir).is_ok());

        // A WAL anchored ahead of the snapshot cannot be replayed.
        EpochWal::create(&dir, 7).unwrap();
        assert!(matches!(recover(&dir), Err(PmError::Corrupt { .. })));
    }
}
