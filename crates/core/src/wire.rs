//! Little-endian byte-level encoding helpers shared by every hand-rolled
//! wire format in the workspace.
//!
//! The offline build has no serde, so each format — the [`crate::persist`]
//! snapshot/WAL layouts and the `pm-serve` network protocol — encodes by
//! hand through the same two primitives:
//!
//! * [`Writer`] — an append-only little-endian byte sink.
//! * [`Reader`] — a **bounds-checked** decoder over one payload slice.
//!   Every failure is a typed [`PmError::Corrupt`] carrying a section name
//!   and the absolute offset; no read past the slice and no length-driven
//!   allocation is possible, so corrupt or adversarial input can neither
//!   panic nor OOM the decoder. This is the property the persistence fuzz
//!   suite (and the serve protocol-fuzz suite) lean on.
//! * [`checksum64`] — the 4-lane mixing digest the durable formats frame
//!   their sections with.
//!
//! `f64` values travel as IEEE-754 bits, so estimates round-trip exactly.

use crate::error::PmError;

/// 4-lane mixing checksum over little-endian 64-bit words — fast enough to
/// verify every section on the cold-load path, and any single-byte flip
/// deterministically changes the digest (each per-lane step is bijective,
/// and exactly one lane's rotated contribution to the finalizer changes).
/// Not cryptographic; it detects corruption, not adversaries.
#[must_use]
pub fn checksum64(bytes: &[u8]) -> u64 {
    const K1: u64 = 0x9E37_79B9_7F4A_7C15;
    const K2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mut lanes = [K1, K2, K1 ^ K2, K1.wrapping_add(K2)];
    let mut chunks = bytes.chunks_exact(32);
    for chunk in &mut chunks {
        for (lane, w) in lanes.iter_mut().zip(chunk.chunks_exact(8)) {
            let w = u64::from_le_bytes(w.try_into().expect("8-byte chunk"));
            *lane = (*lane ^ w).wrapping_mul(K1).rotate_left(29);
        }
    }
    let mut h = lanes[0]
        .rotate_left(1)
        .wrapping_add(lanes[1].rotate_left(7))
        .wrapping_add(lanes[2].rotate_left(18))
        .wrapping_add(lanes[3].rotate_left(31));
    for tail in chunks.remainder().chunks(8) {
        let mut buf = [0u8; 8];
        buf[..tail.len()].copy_from_slice(tail);
        h = (h ^ u64::from_le_bytes(buf)).wrapping_mul(K2).rotate_left(31);
    }
    h ^= bytes.len() as u64;
    h ^= h >> 33;
    h = h.wrapping_mul(K1);
    h ^= h >> 29;
    h = h.wrapping_mul(K2);
    h ^ (h >> 32)
}

/// Little-endian byte sink for the hand-rolled encoders.
#[derive(Default, Debug)]
pub struct Writer(Vec<u8>);

impl Writer {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.0.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn u16(&mut self, v: u16) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Appends a collection length as `u32`.
    ///
    /// # Panics
    /// Panics if `n` exceeds `u32::MAX` — every persisted or wired
    /// collection in this workspace is bounded far below that.
    pub fn count(&mut self, n: usize) {
        self.u32(u32::try_from(n).expect("count exceeds the encoded u32 range"));
    }

    /// Appends raw bytes verbatim.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.0.extend_from_slice(bytes);
    }

    /// The bytes written so far.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether nothing has been written.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Consumes the sink, returning the encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

/// Bounds-checked little-endian decoder over one payload slice. Every
/// failure is a [`PmError::Corrupt`] carrying the section name and the
/// absolute offset; no read past the slice and no length-driven allocation
/// is possible, so corrupt input can neither panic nor OOM.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
    /// Absolute offset of `bytes[0]` within the enclosing file or stream.
    base: u64,
    section: &'static str,
}

impl<'a> Reader<'a> {
    /// A decoder over `bytes`, reporting errors against `section` at
    /// absolute offset `base + position`.
    #[must_use]
    pub fn new(bytes: &'a [u8], base: u64, section: &'static str) -> Self {
        Reader { bytes, pos: 0, base, section }
    }

    /// A [`PmError::Corrupt`] at the current position.
    #[must_use]
    pub fn corrupt(&self, detail: impl Into<String>) -> PmError {
        PmError::Corrupt {
            section: self.section.to_string(),
            offset: self.base + self.pos as u64,
            detail: detail.into(),
        }
    }

    /// Takes the next `n` bytes, or errors without reading past the slice.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PmError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                let out = &self.bytes[self.pos..end];
                self.pos = end;
                Ok(out)
            }
            None => Err(self.corrupt(format!(
                "need {n} more bytes but only {} remain",
                self.bytes.len() - self.pos
            ))),
        }
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PmError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, PmError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PmError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PmError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, PmError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A `u32` element count, rejected up front if `n` items of at least
    /// `min_item_bytes` each cannot fit in the remaining payload — the
    /// anti-OOM gate in front of every `Vec::with_capacity`.
    pub fn len(&mut self, min_item_bytes: usize, what: &str) -> Result<usize, PmError> {
        let n = self.u32()? as usize;
        let remaining = self.bytes.len() - self.pos;
        if n.saturating_mul(min_item_bytes) > remaining {
            return Err(self.corrupt(format!(
                "{what} count {n} cannot fit in the {remaining} bytes remaining"
            )));
        }
        Ok(n)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Rejects trailing garbage after a complete decode.
    pub fn finish(&self) -> Result<(), PmError> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(300);
        w.u32(70_000);
        w.u64(1 << 40);
        w.f64(-0.125);
        w.count(3);
        w.extend(b"abc");
        let bytes = w.into_bytes();

        let mut r = Reader::new(&bytes, 0, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        assert_eq!(r.f64().unwrap().to_bits(), (-0.125f64).to_bits());
        assert_eq!(r.len(1, "tail").unwrap(), 3);
        assert_eq!(r.take(3).unwrap(), b"abc");
        r.finish().unwrap();
    }

    #[test]
    fn reader_rejects_overrun_and_oversized_counts() {
        let mut w = Writer::new();
        w.count(1_000_000); // claims a million items in an empty payload
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes, 10, "test");
        let err = r.len(8, "items").unwrap_err();
        assert!(matches!(err, PmError::Corrupt { .. }), "oversized count must be typed");

        let mut r = Reader::new(&[1, 2], 0, "test");
        assert!(r.u32().is_err(), "overrun must be typed, not a panic");
    }
}
