//! The compile-once / serve-many artifact: [`CompiledTable`].
//!
//! Section 5 of the paper proves the invariant system is a function of the
//! published table `D'` alone: the QI- and SA-invariants are sound
//! (Theorem 1), complete (Theorem 2) and concise (Theorem 3) **for every
//! adversary**, because they encode only what `D'` itself reveals. The same
//! holds for every other knowledge-independent stage of the pipeline — the
//! admissible-term index (Zero-invariants are structural), the QI→bucket
//! inverted index used to compile knowledge, the knowledge-free partition
//! (every bucket its own irrelevant component, Lemma 2) and its closed-form
//! Theorem 5 solution. None of it depends on which background knowledge a
//! particular adversary holds.
//!
//! [`CompiledTable::build`] therefore runs all of that exactly once and
//! freezes the result into an immutable, `Send + Sync` artifact. Any number
//! of [`crate::analyst::Analyst`] sessions then open over one
//! `Arc<CompiledTable>` ([`crate::analyst::Analyst::open`]) without paying
//! the compile again: a session holds only per-adversary state — its
//! knowledge set, dirty tracking, and current per-component solutions as a
//! copy-on-write overlay on the artifact's baseline. Opening a session is
//! O(1); the consistent-query-answering literature applies the same
//! database-only preprocessing split to serve many adversarial queries over
//! one fixed database.
//!
//! The artifact also powers cheap what-if forks
//! ([`crate::analyst::Analyst::fork`]): a fork clones the overlay (bucket →
//! `Arc` slice, so the clone is reference bumps) and shares everything
//! else.
//!
//! # Epochs: the table itself can change
//!
//! Because every knowledge-independent product above is **per-bucket** —
//! invariant rows are statements about one bucket's multisets, the term
//! index is bucket-major, the Theorem-5 baseline factorises per bucket —
//! the artifact stores each of them behind a per-bucket `Arc`.
//! [`CompiledTable::apply`] advances the artifact to a new *epoch* under a
//! record-level [`TableDelta`]: only the touched buckets' term lists,
//! invariant rows, baselines and QI→bucket index entries are recompiled;
//! every untouched bucket is shared by reference with the previous epoch.
//! Count-space targets make the sharing *bit-exact*: an untouched bucket's
//! rows do not even see the new total record count `N` (probabilities are
//! produced only at estimate assembly). Resident sessions carry their
//! adversary model across epochs with
//! [`crate::analyst::Analyst::rebase`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use pm_anonymize::published::PublishedTable;

use crate::analyst::RefreshStats;
use crate::compile::qi_bucket_index;
use crate::constraint::Constraint;
use crate::delta::{AppliedDelta, DeltaOp, TableDelta};
use crate::engine::{
    counts_to_probabilities, solve_component, uniform_bucket_values, EngineConfig,
    EngineStats, Estimate, RowSet, SolveScratch,
};
use crate::error::PmError;
use crate::invariants::bucket_invariant_rows;
use crate::partition::Component;
use crate::persist::DeferredSnapshot;
use crate::terms::{BucketTerms, TermIndex};

/// Distinguishes independent [`CompiledTable::build`] lineages so a session
/// can never be rebased onto an epoch of a *different* table's history.
static NEXT_LINEAGE: AtomicU64 = AtomicU64::new(0);

/// Unique id per artifact instance. Epoch numbers alone cannot identify a
/// parent: [`CompiledTable::apply`] takes `&self`, so two deltas applied to
/// the same artifact fork *sibling* epochs with equal numbers —
/// [`CompiledTable::is_successor_of`] therefore compares parent ids, not
/// epoch arithmetic.
static NEXT_UID: AtomicU64 = AtomicU64::new(0);

/// Shape and cost of one [`CompiledTable::build`] (or one
/// [`CompiledTable::apply`]) — what `pmx compile` prints.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CompileStats {
    /// Records in the published table.
    pub records: usize,
    /// Buckets in the published table.
    pub buckets: usize,
    /// Distinct QI tuples.
    pub distinct_qi: usize,
    /// Admissible `(q, s, b)` terms (Zero-invariants already excluded).
    pub terms: usize,
    /// Invariant rows. With [`EngineConfig::concise_invariants`] this is
    /// also the rank of the invariant system: Theorem 3 drops the one
    /// redundant SA-row per bucket, leaving independent rows.
    pub invariant_rows: usize,
    /// Components of the knowledge-free baseline partition.
    pub components: usize,
    /// Buckets recompiled by this build: all of them for a root
    /// [`CompiledTable::build`], only the delta's footprint for a
    /// [`CompiledTable::apply`].
    pub recompiled_buckets: usize,
    /// Wall time of the whole build (index + invariants + baseline solve).
    pub build: Duration,
    /// Portion of `build` spent solving the knowledge-free baseline.
    pub baseline_solve: Duration,
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compiled artifact: {} records, {} buckets, {} distinct QI tuples",
            self.records, self.buckets, self.distinct_qi
        )?;
        writeln!(
            f,
            "  {} admissible terms, {} invariant rows (rank), {} baseline component(s)",
            self.terms, self.invariant_rows, self.components
        )?;
        write!(
            f,
            "  built in {:.3} ms ({:.3} ms baseline solve, {} bucket(s) recompiled)",
            self.build.as_secs_f64() * 1e3,
            self.baseline_solve.as_secs_f64() * 1e3,
            self.recompiled_buckets,
        )
    }
}

/// The heavy decoded heart of an artifact — the published table, the
/// admissible-term index and the Theorem-5 baselines. `build`/`apply`
/// produce it directly; [`CompiledTable::load`] defers it behind the
/// snapshot's checksum-verified bytes and hydrates on first use, which is
/// what keeps a cold load an order of magnitude cheaper than a rebuild.
#[derive(Debug)]
pub(crate) struct CoreState {
    pub(crate) table: PublishedTable,
    pub(crate) index: Arc<TermIndex>,
    /// Per-bucket Theorem-5 baseline values (count space), aligned with
    /// each bucket's term range. Empty slices in the internal shell.
    pub(crate) bucket_baselines: Vec<Arc<[f64]>>,
}

/// Either the materialized [`CoreState`] (every built artifact) or the raw
/// checksum-verified snapshot bytes it hydrates from on first use (a loaded
/// artifact before anything touched it).
#[derive(Debug)]
enum LazyCore {
    Ready(CoreState),
    Deferred { cell: OnceLock<CoreState>, snapshot: Box<DeferredSnapshot> },
}

/// Everything knowledge-independent about one published table, compiled
/// once and shared — immutably — by any number of
/// [`crate::analyst::Analyst`] sessions (see the [module docs](self)).
#[derive(Debug)]
pub struct CompiledTable {
    /// The table, term index and baselines — possibly still undecoded
    /// snapshot bytes for a freshly loaded artifact.
    core: LazyCore,
    config: EngineConfig,
    /// Which [`CompiledTable::build`] history this artifact belongs to.
    lineage: u64,
    /// Position in that history: 0 for the root build, parent + 1 per
    /// [`CompiledTable::apply`].
    epoch: u64,
    /// Unique identity of this artifact instance (epoch numbers can
    /// collide across sibling branches; see [`NEXT_UID`]).
    uid: u64,
    /// The [`Self::uid`] of the artifact this epoch was applied from
    /// (`None` at the root).
    parent_uid: Option<u64>,
    /// Summary of the delta that produced this epoch (`None` at the root).
    delta: Option<AppliedDelta>,
    /// The D'-invariant rows (Theorems 1–3), per bucket, in bucket-local
    /// coordinates and count space — the epoch-shareable unit. Sessions
    /// address them as the prefix of the virtual
    /// `[invariants..., knowledge...]` row list via `row_offsets`.
    ///
    /// Derived state: `bucket_invariant_rows` is a pure function of the
    /// table and config, so [`CompiledTable::from_persisted`] leaves this
    /// unset and the first use re-derives it — bit-identical by
    /// construction. `build`/`apply` still fill it eagerly.
    bucket_rows: OnceLock<Vec<Arc<Vec<Constraint>>>>,
    /// Prefix sums of per-bucket invariant row counts (`len = m + 1`);
    /// derived from `bucket_rows`, same laziness.
    row_offsets: OnceLock<Vec<usize>>,
    /// QI symbol → buckets containing it (knowledge-compilation index),
    /// one `Arc` per symbol so epochs share unchanged entries. Derived
    /// state, like `bucket_rows`.
    qi_buckets: OnceLock<Vec<Arc<[usize]>>>,
    /// The knowledge-free partition, built on first use: with
    /// [`EngineConfig::decompose`], every bucket is its own irrelevant
    /// component; without it, one joint pseudo-component.
    baseline_components: OnceLock<Vec<Component>>,
    /// The baseline assembled into a served estimate, built on first use —
    /// what a freshly opened session answers queries from.
    baseline_estimate: OnceLock<Arc<Estimate>>,
    /// Engine statistics describing the baseline solve (for the lazy
    /// estimate assembly).
    baseline_estats: EngineStats,
    /// What the baseline solve did, reported as a fresh session's
    /// "last refresh".
    baseline_refresh: RefreshStats,
    /// `false` for the internal one-shot shell ([`Self::build_shell`]),
    /// whose baseline is a zero placeholder that must never be served.
    has_baseline: bool,
    stats: CompileStats,
}

impl CompiledTable {
    /// Compiles everything knowledge-independent about `table`, exactly
    /// once: the admissible-term index, the D'-invariants and their
    /// per-bucket index, the QI→bucket inverted index, the knowledge-free
    /// baseline partition, and the baseline (Theorem 5) solution.
    ///
    /// Only the baseline solve is fallible, and only when
    /// [`EngineConfig::decompose`] is off (the joint invariant system then
    /// goes through the numeric solver instead of the closed form).
    ///
    /// Wrap the result in an [`Arc`] and hand it to
    /// [`crate::analyst::Analyst::open`] from as many threads as you like.
    /// When the table later changes, advance the artifact with
    /// [`CompiledTable::apply`] instead of rebuilding.
    pub fn build(table: PublishedTable, config: EngineConfig) -> Result<Self, PmError> {
        let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
        let mut artifact = Self::build_shell(table, config);
        artifact.solve_baseline()?;
        artifact.stats.build = start.elapsed();
        Ok(artifact)
    }

    /// Solves (or closed-forms) the knowledge-free baseline into
    /// `bucket_baselines`, upgrading a shell into a servable artifact.
    fn solve_baseline(&mut self) -> Result<(), PmError> {
        let baseline_start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
        let mut estats = EngineStats::default();
        let mut stats = RefreshStats::default();
        let core = self.core();
        let m = core.table.num_buckets();
        let baselines: Vec<Arc<[f64]>> = if self.config.decompose {
            stats.closed_form = m;
            estats.num_irrelevant = m;
            estats.num_components = m;
            (0..m)
                .map(|b| Arc::from(uniform_bucket_values(&core.table, &core.index, b)))
                .collect()
        } else {
            // One joint pseudo-component through the numeric path — the
            // exact system a knowledge-free `Engine::estimate` would solve.
            let comp = joint_component(m);
            let rows = self.rows(&[]);
            let sol = solve_component(
                &self.config,
                &core.table,
                &core.index,
                rows,
                &comp,
                None,
                &mut SolveScratch::default(),
            )?;
            estats.num_constraints = sol.num_constraints;
            estats.num_free_terms = sol.num_free_terms;
            // The joint component covers buckets 0..m in ascending order, so
            // its local term concatenation *is* the global `TermIndex` layout.
            let values = sol.values;
            debug_assert_eq!(values.len(), core.index.len());
            if let Some(s) = sol.stats {
                estats.component_stats.push(s);
            }
            estats.num_components = 1;
            stats.resolved = 1;
            (0..m)
                .map(|b| Arc::from(&values[core.index.bucket_range(b)]))
                .collect()
        };
        self.core_mut().bucket_baselines = baselines;
        let baseline_solve = baseline_start.elapsed();

        estats.total_elapsed = baseline_solve;
        stats.components = estats.num_components;
        stats.dirty = stats.closed_form + stats.resolved;
        stats.solver = estats.solver_elapsed();
        stats.wall = baseline_solve;

        self.baseline_estats = estats;
        self.baseline_refresh = stats;
        self.has_baseline = true;
        self.stats.components = if self.config.decompose { m } else { 1 };
        self.stats.baseline_solve = baseline_solve;
        Ok(())
    }

    /// Everything except the baseline solve — the internal shell behind the
    /// one-shot `Engine::estimate`, which marks every bucket dirty and
    /// would discard a baseline immediately. The zero placeholder baseline
    /// is never served: a deferred session's first refresh writes every
    /// bucket (solved or closed-form) before its estimate is readable.
    pub(crate) fn build_shell(table: PublishedTable, config: EngineConfig) -> Self {
        let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
        let m = table.num_buckets();
        let index = Arc::new(TermIndex::build(&table));
        let bucket_rows: Vec<Arc<Vec<Constraint>>> = (0..m)
            .map(|b| Arc::new(bucket_invariant_rows(table.bucket(b), b, config.concise_invariants)))
            .collect();
        let row_offsets = prefix_offsets(&bucket_rows);
        let qi_buckets = qi_bucket_index(&table);
        let bucket_baselines: Vec<Arc<[f64]>> =
            (0..m).map(|_| Arc::from(Vec::new())).collect();
        let stats = CompileStats {
            records: table.total_records(),
            buckets: m,
            distinct_qi: table.interner().distinct(),
            terms: index.len(),
            invariant_rows: *row_offsets.last().expect("offsets hold the leading 0"),
            components: 0,
            recompiled_buckets: m,
            build: start.elapsed(),
            baseline_solve: Duration::default(),
        };
        Self {
            core: LazyCore::Ready(CoreState { table, index, bucket_baselines }),
            config,
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
            epoch: 0,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            parent_uid: None,
            delta: None,
            bucket_rows: OnceLock::from(bucket_rows),
            row_offsets: OnceLock::from(row_offsets),
            qi_buckets: OnceLock::from(qi_buckets),
            baseline_components: OnceLock::new(),
            baseline_estimate: OnceLock::new(),
            baseline_estats: EngineStats::default(),
            baseline_refresh: RefreshStats::default(),
            has_baseline: false,
            stats,
        }
    }

    /// Reassembles a servable artifact from a checksum-verified snapshot
    /// ([`crate::persist`]). The snapshot's METADATA and CONFIG sections
    /// are decoded eagerly (they size the [`CompileStats`]); the heavy
    /// ground-truth sections — table, term index, Theorem-5 baselines —
    /// stay as raw bytes inside the [`DeferredSnapshot`] and hydrate into
    /// the [`CoreState`] on first use, and everything derived from them
    /// (invariant rows, row offsets, QI→bucket index) re-derives lazily
    /// from the same pure functions `build` runs. The loaded artifact is
    /// bit-identical to the one that was saved, and the load itself pays
    /// for none of the materialization.
    ///
    /// The artifact gets a **fresh lineage**: a restarted process cannot
    /// hold sessions from the previous one, so nothing can legally rebase
    /// across the save/load boundary anyway, and fresh ids keep the
    /// uid/lineage allocators trivially correct.
    pub(crate) fn from_persisted(
        snapshot: DeferredSnapshot,
        config: EngineConfig,
        epoch: u64,
        delta: Option<AppliedDelta>,
        invariant_rows: usize,
        load: Duration,
    ) -> Self {
        let m = snapshot.buckets();
        let mut estats = EngineStats::default();
        let mut refresh = RefreshStats::default();
        if config.decompose {
            estats.num_irrelevant = m;
            estats.num_components = m;
            refresh.closed_form = m;
        } else {
            estats.num_components = 1;
            refresh.resolved = 1;
        }
        refresh.components = estats.num_components;
        refresh.dirty = refresh.closed_form + refresh.resolved;
        let stats = CompileStats {
            records: snapshot.records(),
            buckets: m,
            distinct_qi: snapshot.distinct_qi(),
            terms: snapshot.num_terms(),
            invariant_rows,
            components: estats.num_components,
            recompiled_buckets: 0,
            build: load,
            baseline_solve: Duration::default(),
        };
        Self {
            core: LazyCore::Deferred { cell: OnceLock::new(), snapshot: Box::new(snapshot) },
            config,
            lineage: NEXT_LINEAGE.fetch_add(1, Ordering::Relaxed),
            epoch,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            parent_uid: None,
            delta,
            bucket_rows: OnceLock::new(),
            row_offsets: OnceLock::new(),
            qi_buckets: OnceLock::new(),
            baseline_components: OnceLock::new(),
            baseline_estimate: OnceLock::new(),
            baseline_estats: estats,
            baseline_refresh: refresh,
            has_baseline: true,
            stats,
        }
    }

    /// The decoded core, hydrating a loaded artifact's snapshot bytes on
    /// first use (concurrent first uses race benignly inside the
    /// `OnceLock`; built artifacts return their state directly).
    pub(crate) fn core(&self) -> &CoreState {
        match &self.core {
            LazyCore::Ready(state) => state,
            LazyCore::Deferred { cell, snapshot } => cell.get_or_init(|| snapshot.hydrate()),
        }
    }

    /// Mutable core access for the build paths. Only freshly built shells
    /// are ever mutated, so a deferred (loaded) core here is a logic error.
    fn core_mut(&mut self) -> &mut CoreState {
        match &mut self.core {
            LazyCore::Ready(state) => state,
            LazyCore::Deferred { .. } => unreachable!("loaded artifacts are never re-solved"),
        }
    }

    /// Advances the artifact to a new **epoch** under a record-level
    /// [`TableDelta`]: applies the operations to (a clone of) the table,
    /// then recompiles only the touched buckets' term lists, invariant
    /// rows, Theorem-5 baselines and QI→bucket index entries — every
    /// untouched bucket is shared by reference with this epoch.
    ///
    /// The result serves exactly like `CompiledTable::build` of the
    /// post-delta table (sessions arrive at bit-identical estimates), at a
    /// cost proportional to the delta's bucket footprint instead of the
    /// table size. Open sessions carry their adversary model forward with
    /// [`crate::analyst::Analyst::rebase`].
    ///
    /// The application is atomic: on any invalid operation
    /// ([`PmError::InvalidDelta`]) no new epoch is produced and `self` is
    /// untouched. Without [`EngineConfig::decompose`] the baseline is a
    /// joint numeric solve with nothing bucket-local to share, so the new
    /// epoch is a full rebuild (same result, none of the savings).
    pub fn apply(&self, delta: &TableDelta) -> Result<Self, PmError> {
        assert!(self.has_baseline, "cannot apply a delta to an internal shell");
        let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
        let core = self.core();

        // Stage the post-delta table; any failure leaves `self` untouched.
        let mut table = core.table.clone();
        let mut qs: Vec<usize> = Vec::with_capacity(delta.len());
        for op in delta.ops() {
            let q = match op {
                DeltaOp::Insert { qi, sa, bucket } => table.insert_record(qi, *sa, *bucket),
                DeltaOp::Retract { qi, sa, bucket } => table.retract_record(qi, *sa, *bucket),
                DeltaOp::Move { qi, sa, from, to } => table.move_record(qi, *sa, *from, *to),
            }
            .map_err(|e| PmError::InvalidDelta {
                detail: match e {
                    pm_anonymize::error::AnonymizeError::InvalidDelta { detail } => detail,
                    other => other.to_string(),
                },
            })?;
            qs.push(q);
        }
        qs.sort_unstable();
        qs.dedup();
        let touched = delta.touched_buckets();
        let applied = AppliedDelta { touched: touched.clone(), qs, ops: delta.len() };

        if !self.config.decompose {
            // The joint baseline couples every bucket: rebuild, keeping the
            // epoch lineage so sessions can still rebase (everything
            // dirties).
            let mut next = Self::build_shell(table, self.config.clone());
            next.lineage = self.lineage;
            next.epoch = self.epoch + 1;
            next.parent_uid = Some(self.uid);
            next.delta = Some(applied);
            next.solve_baseline()?;
            next.stats.build = start.elapsed();
            return Ok(next);
        }

        // Per-bucket incremental recompile: share every untouched bucket.
        let mut bucket_terms = core.index.bucket_terms().to_vec();
        let mut bucket_rows = self.bucket_rows().to_vec();
        let mut bucket_baselines = core.bucket_baselines.clone();
        for &b in &touched {
            bucket_terms[b] = Arc::new(BucketTerms::build(table.bucket(b)));
        }
        let index = Arc::new(TermIndex::from_buckets(bucket_terms));
        let baseline_start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
        for &b in &touched {
            bucket_rows[b] = Arc::new(bucket_invariant_rows(
                table.bucket(b),
                b,
                self.config.concise_invariants,
            ));
            bucket_baselines[b] = Arc::from(uniform_bucket_values(&table, &index, b));
        }
        let baseline_solve = baseline_start.elapsed();
        let row_offsets = prefix_offsets(&bucket_rows);

        // QI→bucket index: edit only symbols whose membership in a touched
        // bucket flipped (plus newly interned symbols, which by
        // construction live only in touched buckets) — each edit patches
        // the symbol's old sorted list instead of rescanning the table.
        let mut qi_buckets = self.qi_buckets().to_vec();
        qi_buckets.resize_with(table.interner().distinct(), || Arc::from(Vec::new()));
        let old_qi_len = self.qi_buckets().len();
        for &b in &touched {
            let old_b = core.table.bucket(b);
            let new_b = table.bucket(b);
            for &(q, _) in old_b.qi_counts().iter().chain(new_b.qi_counts()) {
                let now = new_b.contains_qi(q);
                if old_b.contains_qi(q) == now && q < old_qi_len {
                    continue;
                }
                let mut list = qi_buckets[q].to_vec();
                match (list.binary_search(&b), now) {
                    (Err(i), true) => list.insert(i, b),
                    (Ok(i), false) => {
                        list.remove(i);
                    }
                    _ => continue,
                }
                qi_buckets[q] = Arc::from(list);
            }
        }

        let m = table.num_buckets();
        let stats = CompileStats {
            records: table.total_records(),
            buckets: m,
            distinct_qi: table.interner().distinct(),
            terms: index.len(),
            invariant_rows: *row_offsets.last().expect("offsets hold the leading 0"),
            components: m,
            recompiled_buckets: touched.len(),
            build: Duration::default(),
            baseline_solve,
        };
        let mut next = Self {
            core: LazyCore::Ready(CoreState { table, index, bucket_baselines }),
            config: self.config.clone(),
            lineage: self.lineage,
            epoch: self.epoch + 1,
            uid: NEXT_UID.fetch_add(1, Ordering::Relaxed),
            parent_uid: Some(self.uid),
            delta: Some(applied),
            bucket_rows: OnceLock::from(bucket_rows),
            row_offsets: OnceLock::from(row_offsets),
            qi_buckets: OnceLock::from(qi_buckets),
            baseline_components: OnceLock::new(),
            baseline_estimate: OnceLock::new(),
            baseline_estats: self.baseline_estats.clone(),
            baseline_refresh: self.baseline_refresh.clone(),
            has_baseline: true,
            stats,
        };
        next.stats.build = start.elapsed();
        Ok(next)
    }

    /// The published table this artifact compiled (as of this epoch).
    #[must_use]
    pub fn table(&self) -> &PublishedTable {
        &self.core().table
    }

    /// The configuration the artifact was built with. Sessions opened via
    /// [`crate::analyst::Analyst::open`] inherit it, and every epoch of a
    /// lineage shares it.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The admissible-term index.
    #[must_use]
    pub fn term_index(&self) -> &TermIndex {
        &self.core().index
    }

    /// This artifact's epoch: 0 for a root [`CompiledTable::build`],
    /// incremented by every [`CompiledTable::apply`].
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Summary of the delta that produced this epoch (`None` at the root).
    #[must_use]
    pub fn applied_delta(&self) -> Option<&AppliedDelta> {
        self.delta.as_ref()
    }

    /// Whether `self` was produced by [`CompiledTable::apply`] on exactly
    /// `ancestor` — the relation [`crate::analyst::Analyst::rebase`]
    /// requires. Compared by unique artifact identity, not epoch
    /// arithmetic: `apply` takes `&self`, so two deltas applied to the same
    /// artifact fork *sibling* epochs with equal numbers, and a session on
    /// one branch must not rebase onto the other's children.
    #[must_use]
    pub fn is_successor_of(&self, ancestor: &Self) -> bool {
        self.lineage == ancestor.lineage && self.parent_uid == Some(ancestor.uid)
    }

    /// Number of invariant rows (the rank of the invariant system under
    /// [`EngineConfig::concise_invariants`], Theorem 3).
    #[must_use]
    pub fn num_invariants(&self) -> usize {
        *self.row_offsets().last().expect("offsets hold the leading 0")
    }

    /// Components of the knowledge-free baseline partition.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.baseline_components().len()
    }

    /// The knowledge-free baseline estimate — what a freshly opened session
    /// serves. Assembled on first use, then a cheap `Arc` clone.
    #[must_use]
    pub fn baseline_estimate(&self) -> Arc<Estimate> {
        Arc::clone(self.baseline_estimate.get_or_init(|| {
            let core = self.core();
            let mut values = vec![0.0; core.index.len()];
            for (b, baseline) in core.bucket_baselines.iter().enumerate() {
                if !baseline.is_empty() {
                    values[core.index.bucket_range(b)].copy_from_slice(baseline);
                }
            }
            counts_to_probabilities(&mut values, &core.table);
            Arc::new(Estimate::assemble(
                values,
                Arc::clone(&core.index),
                &core.table,
                self.epoch,
                self.baseline_estats.clone(),
            ))
        }))
    }

    /// Build statistics (what `pmx compile` prints).
    #[must_use]
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    // ---- crate-internal surface for the session engine ----

    pub(crate) fn index_arc(&self) -> &Arc<TermIndex> {
        &self.core().index
    }

    pub(crate) fn rows<'a>(&'a self, knowledge: &'a [Constraint]) -> RowSet<'a> {
        RowSet {
            bucket_rows: self.bucket_rows(),
            row_offsets: self.row_offsets(),
            knowledge,
        }
    }

    /// The per-bucket invariant rows, deriving them on first use for a
    /// persisted artifact (`bucket_invariant_rows` is pure, so the result
    /// is bit-identical to what `build` would have produced).
    pub(crate) fn bucket_rows(&self) -> &[Arc<Vec<Constraint>>] {
        self.bucket_rows.get_or_init(|| {
            let core = self.core();
            (0..core.table.num_buckets())
                .map(|b| {
                    Arc::new(bucket_invariant_rows(
                        core.table.bucket(b),
                        b,
                        self.config.concise_invariants,
                    ))
                })
                .collect()
        })
    }

    /// Prefix sums of per-bucket invariant row counts, derived on first use.
    pub(crate) fn row_offsets(&self) -> &[usize] {
        self.row_offsets.get_or_init(|| prefix_offsets(self.bucket_rows()))
    }

    pub(crate) fn qi_buckets(&self) -> &[Arc<[usize]>] {
        self.qi_buckets.get_or_init(|| qi_bucket_index(&self.core().table))
    }

    pub(crate) fn baseline_components(&self) -> &[Component] {
        self.baseline_components.get_or_init(|| {
            // `stats.buckets` is exact in every construction path, so the
            // partition never forces a deferred core to hydrate.
            let m = self.stats.buckets;
            if self.config.decompose {
                (0..m)
                    .map(|b| Component { buckets: vec![b], knowledge_rows: Vec::new() })
                    .collect()
            } else {
                vec![joint_component(m)]
            }
        })
    }

    /// Bucket `b`'s baseline values (count space; empty in a shell).
    pub(crate) fn bucket_baseline(&self, b: usize) -> &Arc<[f64]> {
        &self.core().bucket_baselines[b]
    }

    pub(crate) fn baseline_refresh(&self) -> &RefreshStats {
        &self.baseline_refresh
    }

    pub(crate) fn has_baseline(&self) -> bool {
        self.has_baseline
    }

    /// Structural-sharing observability for the epoch tests: whether bucket
    /// `b`'s compile products (term list, invariant rows, baseline) are all
    /// shared pointer-equal with `other`'s.
    pub fn bucket_shared_with(&self, other: &Self, b: usize) -> bool {
        let (mine, theirs) = (self.core(), other.core());
        mine.index.bucket_shared_with(&theirs.index, b)
            && Arc::ptr_eq(&self.bucket_rows()[b], &other.bucket_rows()[b])
            && Arc::ptr_eq(&mine.bucket_baselines[b], &theirs.bucket_baselines[b])
    }
}

/// The single knowledge-free joint pseudo-component of a
/// `decompose = false` solve (sessions attach their knowledge rows
/// themselves).
pub(crate) fn joint_component(num_buckets: usize) -> Component {
    Component { buckets: (0..num_buckets).collect(), knowledge_rows: Vec::new() }
}

fn prefix_offsets(bucket_rows: &[Arc<Vec<Constraint>>]) -> Vec<usize> {
    let mut offsets = Vec::with_capacity(bucket_rows.len() + 1);
    let mut total = 0usize;
    offsets.push(0);
    for rows in bucket_rows {
        total += rows.len();
        offsets.push(total);
    }
    offsets
}

// Compile-time contract: the whole point of the artifact is to be shared
// across session threads behind one `Arc`.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<CompiledTable>();
    send_sync::<CompileStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pm_anonymize::fixtures::paper_example;

    /// The artifact's baseline is the Theorem 5 uniform estimate, bit for
    /// bit, and the build stats describe the Figure 1 publication.
    #[test]
    fn build_matches_uniform_baseline() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        let artifact = CompiledTable::build(table, EngineConfig::default()).unwrap();
        assert_eq!(
            artifact.baseline_estimate().term_values(),
            uniform.term_values()
        );
        assert_eq!(artifact.epoch(), 0);
        assert!(artifact.applied_delta().is_none());
        let stats = artifact.stats();
        assert_eq!(stats.buckets, 3);
        assert_eq!(stats.records, 10);
        assert_eq!(stats.components, 3);
        assert_eq!(stats.recompiled_buckets, 3);
        assert_eq!(stats.terms, artifact.term_index().len());
        assert!(stats.invariant_rows > 0);
        assert!(stats.build >= stats.baseline_solve);
        assert!(!format!("{stats}").is_empty());
    }

    /// Without decomposition the baseline goes through the numeric solver
    /// and still matches the closed form (Theorem 5 consistency).
    #[test]
    fn joint_baseline_matches_closed_form() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        let artifact = CompiledTable::build(
            table,
            EngineConfig::builder().decompose(false).build(),
        )
        .unwrap();
        assert_eq!(artifact.num_components(), 1, "one joint pseudo-component");
        let baseline = artifact.baseline_estimate();
        for (i, (&a, &b)) in baseline
            .term_values()
            .iter()
            .zip(uniform.term_values())
            .enumerate()
        {
            assert!((a - b).abs() < 1e-9, "term {i}: {a} vs {b}");
        }
    }

    /// `apply` advances the epoch, recompiles exactly the touched buckets,
    /// and matches a from-scratch build of the post-delta table bit for
    /// bit.
    #[test]
    fn apply_is_incremental_and_exact() {
        let (_, table) = paper_example();
        let e0 = CompiledTable::build(table.clone(), EngineConfig::default()).unwrap();
        let delta = TableDelta::new().insert(vec![0, 0], 0, 1);
        let e1 = e0.apply(&delta).unwrap();
        assert_eq!(e1.epoch(), 1);
        assert!(e1.is_successor_of(&e0));
        assert!(!e0.is_successor_of(&e1));
        assert_eq!(e1.applied_delta().unwrap().touched_buckets(), &[1]);
        assert_eq!(e1.stats().recompiled_buckets, 1);
        assert!(e1.bucket_shared_with(&e0, 0), "bucket 0 shared");
        assert!(!e1.bucket_shared_with(&e0, 1), "bucket 1 recompiled");
        assert!(e1.bucket_shared_with(&e0, 2), "bucket 2 shared");

        // From-scratch build of the same post-delta table: identical bits.
        let mut scratch_table = table;
        scratch_table.insert_record(&[0, 0], 0, 1).unwrap();
        let scratch = CompiledTable::build(scratch_table, EngineConfig::default()).unwrap();
        assert_eq!(
            e1.baseline_estimate().term_values(),
            scratch.baseline_estimate().term_values()
        );
        assert_eq!(e1.num_invariants(), scratch.num_invariants());
        assert_eq!(e1.baseline_estimate().epoch(), 1);
        assert_eq!(scratch.baseline_estimate().epoch(), 0);
    }

    /// An invalid operation rejects the whole delta; a no-op delta shares
    /// every bucket.
    #[test]
    fn apply_is_atomic_and_noop_shares_everything() {
        let (_, table) = paper_example();
        let e0 = CompiledTable::build(table, EngineConfig::default()).unwrap();
        let bad = TableDelta::new()
            .insert(vec![0, 0], 0, 1)
            .retract(vec![0, 0], 4, 1); // bucket 2 holds no lung cancer
        assert!(matches!(e0.apply(&bad), Err(PmError::InvalidDelta { .. })));

        let e1 = e0.apply(&TableDelta::new()).unwrap();
        assert_eq!(e1.epoch(), 1);
        assert!(e1.applied_delta().unwrap().is_noop());
        for b in 0..3 {
            assert!(e1.bucket_shared_with(&e0, b));
        }
        assert_eq!(
            e1.baseline_estimate().term_values(),
            e0.baseline_estimate().term_values()
        );
    }

    /// Epochs from different lineages never pass the successor check, even
    /// when the tables are identical.
    #[test]
    fn lineages_are_distinct() {
        let (_, table) = paper_example();
        let a = CompiledTable::build(table.clone(), EngineConfig::default()).unwrap();
        let b = CompiledTable::build(table, EngineConfig::default()).unwrap();
        let a1 = a.apply(&TableDelta::new()).unwrap();
        assert!(a1.is_successor_of(&a));
        assert!(!a1.is_successor_of(&b));
    }

    /// `apply` takes `&self`, so epochs can fork into sibling branches with
    /// equal epoch numbers — the successor check distinguishes them by
    /// artifact identity, never by epoch arithmetic.
    #[test]
    fn sibling_branches_are_not_successors() {
        let (_, table) = paper_example();
        let e0 = CompiledTable::build(table, EngineConfig::default()).unwrap();
        let branch_a = e0.apply(&TableDelta::new().insert(vec![0, 0], 0, 0)).unwrap();
        let branch_b = e0.apply(&TableDelta::new().insert(vec![0, 0], 0, 1)).unwrap();
        assert_eq!(branch_a.epoch(), branch_b.epoch(), "siblings share the number");
        assert!(branch_a.is_successor_of(&e0));
        assert!(branch_b.is_successor_of(&e0));
        // A child of branch B is epoch 2 — numerically "one ahead" of
        // branch A, but NOT its successor.
        let b2 = branch_b.apply(&TableDelta::new()).unwrap();
        assert!(b2.is_successor_of(&branch_b));
        assert!(!b2.is_successor_of(&branch_a), "nephews are not children");
        assert!(!branch_a.is_successor_of(&branch_b), "siblings are not parent/child");
    }
}
