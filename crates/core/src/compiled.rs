//! The compile-once / serve-many artifact: [`CompiledTable`].
//!
//! Section 5 of the paper proves the invariant system is a function of the
//! published table `D'` alone: the QI- and SA-invariants are sound
//! (Theorem 1), complete (Theorem 2) and concise (Theorem 3) **for every
//! adversary**, because they encode only what `D'` itself reveals. The same
//! holds for every other knowledge-independent stage of the pipeline — the
//! admissible-term index (Zero-invariants are structural), the QI→bucket
//! inverted index used to compile knowledge, the knowledge-free partition
//! (every bucket its own irrelevant component, Lemma 2) and its closed-form
//! Theorem 5 solution. None of it depends on which background knowledge a
//! particular adversary holds.
//!
//! [`CompiledTable::build`] therefore runs all of that exactly once and
//! freezes the result into an immutable, `Send + Sync` artifact. Any number
//! of [`crate::analyst::Analyst`] sessions then open over one
//! `Arc<CompiledTable>` ([`crate::analyst::Analyst::open`]) without paying
//! the compile again: a session holds only per-adversary state — its
//! knowledge set, dirty tracking, and current per-component solutions as a
//! copy-on-write overlay on the artifact's baseline. Opening a session is
//! O(1); the consistent-query-answering literature applies the same
//! database-only preprocessing split to serve many adversarial queries over
//! one fixed database.
//!
//! The artifact also powers cheap what-if forks
//! ([`crate::analyst::Analyst::fork`]): a fork clones the overlay (bucket →
//! `Arc` slice, so the clone is reference bumps) and shares everything
//! else.

use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::published::PublishedTable;

use crate::analyst::RefreshStats;
use crate::compile::qi_bucket_index;
use crate::constraint::{Constraint, ConstraintOrigin};
use crate::engine::{
    fill_uniform, solve_component, EngineConfig, EngineStats, Estimate, RowSet,
};
use crate::error::PmError;
use crate::invariants::data_invariants;
use crate::partition::{connected_components, Component};
use crate::terms::TermIndex;

/// Shape and cost of one [`CompiledTable::build`] — what `pmx compile`
/// prints.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct CompileStats {
    /// Records in the published table.
    pub records: usize,
    /// Buckets in the published table.
    pub buckets: usize,
    /// Distinct QI tuples.
    pub distinct_qi: usize,
    /// Admissible `(q, s, b)` terms (Zero-invariants already excluded).
    pub terms: usize,
    /// Invariant rows. With [`EngineConfig::concise_invariants`] this is
    /// also the rank of the invariant system: Theorem 3 drops the one
    /// redundant SA-row per bucket, leaving independent rows.
    pub invariant_rows: usize,
    /// Components of the knowledge-free baseline partition.
    pub components: usize,
    /// Wall time of the whole build (index + invariants + baseline solve).
    pub build: Duration,
    /// Portion of `build` spent solving the knowledge-free baseline.
    pub baseline_solve: Duration,
}

impl fmt::Display for CompileStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "compiled artifact: {} records, {} buckets, {} distinct QI tuples",
            self.records, self.buckets, self.distinct_qi
        )?;
        writeln!(
            f,
            "  {} admissible terms, {} invariant rows (rank), {} baseline component(s)",
            self.terms, self.invariant_rows, self.components
        )?;
        write!(
            f,
            "  built in {:.3} ms ({:.3} ms baseline solve)",
            self.build.as_secs_f64() * 1e3,
            self.baseline_solve.as_secs_f64() * 1e3
        )
    }
}

/// Everything knowledge-independent about one published table, compiled
/// once and shared — immutably — by any number of
/// [`crate::analyst::Analyst`] sessions (see the [module docs](self)).
#[derive(Debug)]
pub struct CompiledTable {
    table: PublishedTable,
    config: EngineConfig,
    index: Arc<TermIndex>,
    /// The D'-invariant rows (Theorems 1–3). Sessions address them as the
    /// prefix of the virtual `[invariants..., knowledge...]` row list.
    invariants: Vec<Constraint>,
    /// Per-bucket indices into `invariants`.
    bucket_invariants: Vec<Vec<usize>>,
    /// QI symbol → buckets containing it (knowledge-compilation index).
    qi_buckets: Vec<Vec<usize>>,
    /// The knowledge-free partition: with
    /// [`EngineConfig::decompose`], every bucket is its own irrelevant
    /// component; without it, one joint pseudo-component.
    baseline_components: Vec<Component>,
    /// The knowledge-free maxent solution over all terms (Theorem 5 closed
    /// form under decomposition, a numeric solve of the joint invariant
    /// system otherwise). The copy-on-write base of every session.
    baseline_values: Arc<Vec<f64>>,
    /// [`baseline_values`](Self::baseline_values) assembled into a served
    /// estimate — what a freshly opened session answers queries from.
    baseline_estimate: Arc<Estimate>,
    /// What the baseline solve did, reported as a fresh session's
    /// "last refresh".
    baseline_refresh: RefreshStats,
    /// `false` for the internal one-shot shell ([`Self::build_shell`]),
    /// whose baseline is a zero placeholder that must never be served.
    has_baseline: bool,
    stats: CompileStats,
}

impl CompiledTable {
    /// Compiles everything knowledge-independent about `table`, exactly
    /// once: the admissible-term index, the D'-invariants and their
    /// per-bucket index, the QI→bucket inverted index, the knowledge-free
    /// baseline partition, and the baseline (Theorem 5) solution.
    ///
    /// Only the baseline solve is fallible, and only when
    /// [`EngineConfig::decompose`] is off (the joint invariant system then
    /// goes through the numeric solver instead of the closed form).
    ///
    /// Wrap the result in an [`Arc`] and hand it to
    /// [`crate::analyst::Analyst::open`] from as many threads as you like.
    pub fn build(table: PublishedTable, config: EngineConfig) -> Result<Self, PmError> {
        let start = Instant::now();
        let mut artifact = Self::build_shell(table, config);

        // Knowledge-free baseline partition + solution.
        let baseline_start = Instant::now();
        let mut values = vec![0.0; artifact.index.len()];
        let mut estats = EngineStats::default();
        let mut stats = RefreshStats::default();
        if artifact.config.decompose {
            artifact.baseline_components =
                connected_components(&artifact.invariants, &artifact.index);
            let all_buckets: Vec<usize> = (0..artifact.table.num_buckets()).collect();
            fill_uniform(&artifact.table, &artifact.index, &all_buckets, &mut values);
            stats.closed_form = artifact.baseline_components.len();
        } else {
            // One joint pseudo-component through the numeric path — the
            // exact system a knowledge-free `Engine::estimate` would solve.
            let comp = Component {
                buckets: (0..artifact.table.num_buckets()).collect(),
                knowledge_rows: Vec::new(),
            };
            let rows = RowSet {
                invariants: &artifact.invariants,
                bucket_invariants: &artifact.bucket_invariants,
                knowledge: &[],
            };
            let sol = solve_component(
                &artifact.config,
                &artifact.table,
                &artifact.index,
                rows,
                &comp,
                None,
            )?;
            estats.num_constraints = sol.num_constraints;
            estats.num_free_terms = sol.num_free_terms;
            for (&t, &v) in sol.terms.iter().zip(&sol.values) {
                values[t] = v;
            }
            if let Some(s) = sol.stats {
                estats.component_stats.push(s);
            }
            artifact.baseline_components = vec![comp];
            stats.resolved = 1;
        }
        let baseline_solve = baseline_start.elapsed();

        estats.num_components = artifact.baseline_components.len();
        estats.num_irrelevant = if artifact.config.decompose {
            artifact.baseline_components.len()
        } else {
            0
        };
        estats.total_elapsed = baseline_solve;
        stats.components = artifact.baseline_components.len();
        stats.dirty = stats.closed_form + stats.resolved;
        stats.solver = estats.solver_elapsed();
        stats.wall = baseline_solve;

        artifact.baseline_values = Arc::new(values);
        artifact.baseline_estimate = Arc::new(Estimate::assemble(
            (*artifact.baseline_values).clone(),
            Arc::clone(&artifact.index),
            &artifact.table,
            estats,
        ));
        artifact.baseline_refresh = stats;
        artifact.has_baseline = true;
        artifact.stats.components = artifact.baseline_components.len();
        artifact.stats.baseline_solve = baseline_solve;
        artifact.stats.build = start.elapsed();
        Ok(artifact)
    }

    /// Everything except the baseline partition and solve — the internal
    /// shell behind the one-shot `Engine::estimate`, which marks every
    /// bucket dirty and would discard a baseline immediately. The zero
    /// placeholder baseline is never served: a deferred session's first
    /// refresh writes every bucket (solved or closed-form) before its
    /// estimate is readable.
    pub(crate) fn build_shell(table: PublishedTable, config: EngineConfig) -> Self {
        let start = Instant::now();
        let index = Arc::new(TermIndex::build(&table));
        let invariants = data_invariants(&table, &index, config.concise_invariants);
        let mut bucket_invariants: Vec<Vec<usize>> = vec![Vec::new(); table.num_buckets()];
        for (i, c) in invariants.iter().enumerate() {
            match c.origin {
                ConstraintOrigin::QiInvariant { b, .. }
                | ConstraintOrigin::SaInvariant { b, .. } => bucket_invariants[b].push(i),
                ConstraintOrigin::Knowledge { .. } => {}
            }
        }
        let qi_buckets = qi_bucket_index(&table);
        let baseline_values = Arc::new(vec![0.0; index.len()]);
        let baseline_estimate = Arc::new(Estimate::assemble(
            (*baseline_values).clone(),
            Arc::clone(&index),
            &table,
            EngineStats::default(),
        ));
        let stats = CompileStats {
            records: table.total_records(),
            buckets: table.num_buckets(),
            distinct_qi: table.interner().distinct(),
            terms: index.len(),
            invariant_rows: invariants.len(),
            components: 0,
            build: start.elapsed(),
            baseline_solve: Duration::default(),
        };
        Self {
            table,
            config,
            index,
            invariants,
            bucket_invariants,
            qi_buckets,
            baseline_components: Vec::new(),
            baseline_values,
            baseline_estimate,
            baseline_refresh: RefreshStats::default(),
            has_baseline: false,
            stats,
        }
    }

    /// The published table this artifact compiled.
    #[must_use]
    pub fn table(&self) -> &PublishedTable {
        &self.table
    }

    /// The configuration the artifact was built with. Sessions opened via
    /// [`crate::analyst::Analyst::open`] inherit it.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The admissible-term index.
    #[must_use]
    pub fn term_index(&self) -> &TermIndex {
        &self.index
    }

    /// Number of invariant rows (the rank of the invariant system under
    /// [`EngineConfig::concise_invariants`], Theorem 3).
    #[must_use]
    pub fn num_invariants(&self) -> usize {
        self.invariants.len()
    }

    /// Components of the knowledge-free baseline partition.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.baseline_components.len()
    }

    /// The knowledge-free baseline estimate — what a freshly opened session
    /// serves. Cheap `Arc` clone.
    #[must_use]
    pub fn baseline_estimate(&self) -> Arc<Estimate> {
        Arc::clone(&self.baseline_estimate)
    }

    /// Build statistics (what `pmx compile` prints).
    #[must_use]
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    // ---- crate-internal surface for the session engine ----

    pub(crate) fn index_arc(&self) -> &Arc<TermIndex> {
        &self.index
    }

    pub(crate) fn rows<'a>(&'a self, knowledge: &'a [Constraint]) -> RowSet<'a> {
        RowSet {
            invariants: &self.invariants,
            bucket_invariants: &self.bucket_invariants,
            knowledge,
        }
    }

    pub(crate) fn qi_buckets(&self) -> &[Vec<usize>] {
        &self.qi_buckets
    }

    pub(crate) fn baseline_components(&self) -> &[Component] {
        &self.baseline_components
    }

    pub(crate) fn baseline_values(&self) -> &Arc<Vec<f64>> {
        &self.baseline_values
    }

    pub(crate) fn baseline_refresh(&self) -> &RefreshStats {
        &self.baseline_refresh
    }

    pub(crate) fn has_baseline(&self) -> bool {
        self.has_baseline
    }
}

// Compile-time contract: the whole point of the artifact is to be shared
// across session threads behind one `Arc`.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<CompiledTable>();
    send_sync::<CompileStats>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pm_anonymize::fixtures::paper_example;

    /// The artifact's baseline is the Theorem 5 uniform estimate, bit for
    /// bit, and the build stats describe the Figure 1 publication.
    #[test]
    fn build_matches_uniform_baseline() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        let artifact = CompiledTable::build(table, EngineConfig::default()).unwrap();
        assert_eq!(
            artifact.baseline_estimate().term_values(),
            uniform.term_values()
        );
        let stats = artifact.stats();
        assert_eq!(stats.buckets, 3);
        assert_eq!(stats.records, 10);
        assert_eq!(stats.components, 3);
        assert_eq!(stats.terms, artifact.term_index().len());
        assert!(stats.invariant_rows > 0);
        assert!(stats.build >= stats.baseline_solve);
        assert!(!format!("{stats}").is_empty());
    }

    /// Without decomposition the baseline goes through the numeric solver
    /// and still matches the closed form (Theorem 5 consistency).
    #[test]
    fn joint_baseline_matches_closed_form() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        let artifact = CompiledTable::build(
            table,
            EngineConfig::builder().decompose(false).build(),
        )
        .unwrap();
        assert_eq!(artifact.num_components(), 1, "one joint pseudo-component");
        let baseline = artifact.baseline_estimate();
        for (i, (&a, &b)) in baseline
            .term_values()
            .iter()
            .zip(uniform.term_values())
            .enumerate()
        {
            assert!((a - b).abs() < 1e-9, "term {i}: {a} vs {b}");
        }
    }
}
