//! Knowledge about individuals (Section 6): the pseudonym-expanded engine.
//!
//! Statements like "Alice (whose QI is q₁) has breast cancer with
//! probability 0.2" cannot be expressed over `P(Q, S, B)` when several
//! people share `q₁`. The paper therefore re-attaches *pseudonyms* to the
//! published table (Figure 4) and works with terms `P(i, q, s, b)` where `i`
//! ranges over the pseudonym set of `q`.
//!
//! Invariant structure over the expanded terms (the "derivation is similar"
//! the paper sketches):
//!
//! * **Person invariant** — each person appears exactly once:
//!   `Σ_b Σ_s P(i, q, s, b) = 1/N` for every pseudonym `i` (with `q` its
//!   owner).
//! * **QI-bucket invariant** — the mass of `q` records in bucket `b` is
//!   published: `Σ_i Σ_s P(i, q, s, b) = P(q, b)`.
//! * **SA-bucket invariant** — the bucket's SA multiset is published:
//!   `Σ_i P(i, owner(i), s, b) = P(s, b)`.
//! * **Zero invariants** — structural, as in the base engine.
//!
//! Without individual knowledge the maxent solution is symmetric in the
//! pseudonyms of each `q`, and its `i`-marginal recovers the base engine's
//! `P(q, s, b)` — verified in the tests.

use std::collections::HashMap;
use std::time::Instant;

use pm_anonymize::pseudonym::{PseudonymId, PseudonymTable};
use pm_anonymize::published::PublishedTable;
use pm_linalg::CsrMatrix;
use pm_microdata::qi::QiId;
use pm_microdata::value::Value;
use pm_solver::stats::StopReason;
use pm_solver::{Lbfgs, LbfgsConfig, MaxEntDual};

use crate::engine::EngineStats;
use crate::error::CoreError;
use crate::knowledge::{Knowledge, KnowledgeBase};
use crate::preprocess::preprocess;

/// One admissible expanded term `P(i, q, s, b)` (`q` = owner of `i`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PersonTerm {
    /// Pseudonym.
    pub i: PseudonymId,
    /// SA value.
    pub s: Value,
    /// Bucket.
    pub b: usize,
}

/// Index over expanded terms.
#[derive(Debug, Clone)]
pub struct PersonTermIndex {
    terms: Vec<PersonTerm>,
    lookup: HashMap<(PseudonymId, Value, usize), usize>,
}

impl PersonTermIndex {
    /// Builds the index: term `(i, s, b)` is admissible iff `owner(i) ∈
    /// QI(b)` and `s ∈ SA(b)`.
    pub fn build(table: &PublishedTable, pseudonyms: &PseudonymTable) -> Self {
        let mut terms = Vec::new();
        let mut lookup = HashMap::new();
        for b in 0..table.num_buckets() {
            let bucket = table.bucket(b);
            for &(q, _) in bucket.qi_counts() {
                for i in pseudonyms.pseudonyms_of(q) {
                    for &(s, _) in bucket.sa_counts() {
                        lookup.insert((i, s, b), terms.len());
                        terms.push(PersonTerm { i, s, b });
                    }
                }
            }
        }
        Self { terms, lookup }
    }

    /// Number of expanded terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Index of `(i, s, b)` if admissible.
    pub fn get(&self, i: PseudonymId, s: Value, b: usize) -> Option<usize> {
        self.lookup.get(&(i, s, b)).copied()
    }

    /// The term at `idx`.
    pub fn term(&self, idx: usize) -> PersonTerm {
        self.terms[idx]
    }
}

/// The estimate produced by the individual engine.
#[derive(Debug, Clone)]
pub struct PersonEstimate {
    values: Vec<f64>,
    index: PersonTermIndex,
    pseudonyms: PseudonymTable,
    sa_cardinality: usize,
    distinct_qi: usize,
    qi_marginal: Vec<f64>,
    /// Solver statistics.
    pub stats: EngineStats,
}

impl PersonEstimate {
    /// `P(i, s, b)` for pseudonym `i` (0 if inadmissible).
    pub fn p_isb(&self, i: PseudonymId, s: Value, b: usize) -> f64 {
        self.index.get(i, s, b).map(|t| self.values[t]).unwrap_or(0.0)
    }

    /// Posterior over SA values for one person:
    /// `P(s | i) = N · Σ_b P(i, q, s, b)`.
    pub fn person_posterior(&self, i: PseudonymId) -> Vec<f64> {
        let n = self.pseudonyms.total() as f64;
        let q = self.pseudonyms.owner(i);
        let mut row = vec![0.0; self.sa_cardinality];
        for (t, term) in self.index.terms.iter().enumerate() {
            if term.i == i {
                row[term.s as usize] += self.values[t];
            }
        }
        let _ = q;
        for v in &mut row {
            *v *= n;
        }
        row
    }

    /// The `i`-marginalised conditional `P*(s | q)` — comparable with the
    /// base engine's [`crate::engine::Estimate::conditional`].
    pub fn conditional(&self, q: QiId, s: Value) -> f64 {
        let pq = self.qi_marginal[q];
        if pq == 0.0 {
            return 0.0;
        }
        let joint: f64 = self
            .index
            .terms
            .iter()
            .enumerate()
            .filter(|(_, t)| self.pseudonyms.owner(t.i) == q && t.s == s)
            .map(|(ti, _)| self.values[ti])
            .sum();
        (joint / pq).clamp(0.0, 1.0)
    }

    /// Number of distinct QI symbols.
    pub fn distinct_qi(&self) -> usize {
        self.distinct_qi
    }
}

/// The pseudonym-expanded Privacy-MaxEnt engine.
#[derive(Debug, Clone, Default)]
pub struct IndividualEngine {
    /// Dual-solver tolerance (count space).
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl IndividualEngine {
    /// Creates an engine with default solver settings.
    pub fn new() -> Self {
        Self { tolerance: 1e-9, max_iterations: 5000 }
    }

    /// Estimates `P(i, q, s, b)` under a knowledge base that may mix
    /// distribution knowledge and individual knowledge.
    pub fn estimate(
        &self,
        table: &PublishedTable,
        kb: &KnowledgeBase,
    ) -> Result<PersonEstimate, CoreError> {
        let start = Instant::now();
        let tolerance = if self.tolerance > 0.0 { self.tolerance } else { 1e-9 };
        let max_iterations = if self.max_iterations > 0 { self.max_iterations } else { 5000 };
        let pseudonyms = PseudonymTable::from_interner(table.interner());
        let index = PersonTermIndex::build(table, &pseudonyms);
        let n = table.total_records() as f64;

        // --- Invariants (count space: targets are record counts). ---
        let mut rows: Vec<Vec<(usize, f64)>> = Vec::new();
        let mut rhs: Vec<f64> = Vec::new();

        // Person invariants: Σ_{b,s} P(i,·) = 1/N  → count 1.
        for q in 0..table.interner().distinct() {
            for i in pseudonyms.pseudonyms_of(q) {
                let mut row = Vec::new();
                for b in table.buckets_with_qi(q) {
                    for &(s, _) in table.bucket(b).sa_counts() {
                        row.push((index.get(i, s, b).expect("admissible"), 1.0));
                    }
                }
                rows.push(row);
                rhs.push(1.0);
            }
        }
        // QI-bucket invariants: Σ_{i,s} = count(q, b).
        for b in 0..table.num_buckets() {
            let bucket = table.bucket(b);
            for &(q, qc) in bucket.qi_counts() {
                let mut row = Vec::new();
                for i in pseudonyms.pseudonyms_of(q) {
                    for &(s, _) in bucket.sa_counts() {
                        row.push((index.get(i, s, b).expect("admissible"), 1.0));
                    }
                }
                rows.push(row);
                rhs.push(qc as f64);
            }
            // SA-bucket invariants: Σ_i = count(s, b). Drop the first per
            // bucket (conciseness carries over: the same single dependency
            // exists among the bucket's QI- and SA-sums).
            for (k, &(s, sc)) in bucket.sa_counts().iter().enumerate() {
                if k == 0 {
                    continue;
                }
                let mut row = Vec::new();
                for &(q, _) in bucket.qi_counts() {
                    for i in pseudonyms.pseudonyms_of(q) {
                        row.push((index.get(i, s, b).expect("admissible"), 1.0));
                    }
                }
                rows.push(row);
                rhs.push(sc as f64);
            }
        }

        // --- Knowledge. ---
        for item in kb.items() {
            item.validate()?;
            match item {
                Knowledge::Conditional { antecedent, sa, probability } => {
                    // Same as the base engine, expanded over pseudonyms.
                    let mut row = Vec::new();
                    let mut matching = 0usize;
                    for (q, tuple, count) in table.interner().iter() {
                        if !antecedent.iter().all(|&(pos, v)| tuple[pos] == v) {
                            continue;
                        }
                        matching += count;
                        for b in table.buckets_with_qi(q) {
                            for i in pseudonyms.pseudonyms_of(q) {
                                if let Some(t) = index.get(i, *sa, b) {
                                    row.push((t, 1.0));
                                }
                            }
                        }
                    }
                    if matching == 0 {
                        return Err(CoreError::InvalidKnowledge {
                            detail: "antecedent matches no record".into(),
                        });
                    }
                    rows.push(row);
                    rhs.push(probability * matching as f64);
                }
                Knowledge::IndividualSa { pseudonym, sa, probability } => {
                    let row = self.person_sa_row(table, &pseudonyms, &index, *pseudonym, &[*sa])?;
                    rows.push(row);
                    rhs.push(*probability);
                }
                Knowledge::IndividualOneOf { pseudonym, sas } => {
                    let row = self.person_sa_row(table, &pseudonyms, &index, *pseudonym, sas)?;
                    rows.push(row);
                    rhs.push(1.0);
                }
                Knowledge::GroupCount { pseudonyms: people, sa, count } => {
                    let mut row = Vec::new();
                    for &i in people {
                        row.extend(self.person_sa_row(table, &pseudonyms, &index, i, &[*sa])?);
                    }
                    rows.push(row);
                    rhs.push(*count as f64);
                }
            }
        }

        // --- Preprocess + solve (count space throughout). ---
        let constraints: Vec<crate::constraint::Constraint> = rows
            .into_iter()
            .zip(rhs)
            .enumerate()
            .map(|(i, (coeffs, rhs))| crate::constraint::Constraint {
                coeffs,
                rhs,
                origin: crate::constraint::ConstraintOrigin::Knowledge { index: i },
            })
            .collect();
        let reduced = preprocess(&constraints, index.len())?;

        let mut stats = EngineStats {
            num_components: 1,
            num_constraints: reduced.rows.len(),
            num_free_terms: reduced.num_free(),
            ..Default::default()
        };

        let counts = if reduced.num_free() == 0 {
            reduced.expand(&[])
        } else {
            let a = CsrMatrix::from_rows(reduced.num_free(), &reduced.rows);
            let dual = MaxEntDual::new(a, reduced.rhs.clone());
            let cfg = LbfgsConfig {
                tolerance,
                max_iterations,
                ..Default::default()
            };
            let sol = Lbfgs::new(cfg).minimize(&dual, &vec![0.0; dual.num_constraints()]);
            let p = dual.primal(&sol.x);
            let residual = dual.residual(&p);
            if residual > 1e-5 && sol.stats.stop != StopReason::Converged {
                return Err(CoreError::SolverFailed { residual });
            }
            stats.component_stats.push(sol.stats);
            reduced.expand(&p)
        };
        let values: Vec<f64> = counts.iter().map(|v| v / n).collect();
        stats.total_elapsed = start.elapsed();

        let qi_marginal: Vec<f64> = (0..table.interner().distinct())
            .map(|q| table.p_qi(q))
            .collect();
        Ok(PersonEstimate {
            values,
            index,
            pseudonyms,
            sa_cardinality: table.sa_cardinality(),
            distinct_qi: table.interner().distinct(),
            qi_marginal,
            stats,
        })
    }

    /// Row `Σ_b Σ_{s∈sas} P(i, q, s, b)` for one person.
    fn person_sa_row(
        &self,
        table: &PublishedTable,
        pseudonyms: &PseudonymTable,
        index: &PersonTermIndex,
        i: PseudonymId,
        sas: &[Value],
    ) -> Result<Vec<(usize, f64)>, CoreError> {
        if i >= pseudonyms.total() {
            return Err(CoreError::InvalidKnowledge {
                detail: format!("pseudonym {i} out of range"),
            });
        }
        let q = pseudonyms.owner(i);
        let mut row = Vec::new();
        for b in table.buckets_with_qi(q) {
            for &s in sas {
                if let Some(t) = index.get(i, s, b) {
                    row.push((t, 1.0));
                }
            }
        }
        Ok(row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pm_anonymize::fixtures::paper_example;

    fn engine() -> IndividualEngine {
        IndividualEngine::new()
    }

    /// Without individual knowledge, the expanded estimate's i-marginal
    /// agrees with the base engine (pseudonym symmetry).
    #[test]
    fn marginal_matches_base_engine() {
        let (_, table) = paper_example();
        let base = Engine::uniform_estimate(&table);
        let est = engine().estimate(&table, &KnowledgeBase::new()).unwrap();
        for q in 0..est.distinct_qi() {
            for s in 0..5u16 {
                assert!(
                    (est.conditional(q, s) - base.conditional(q, s)).abs() < 1e-6,
                    "q={q} s={s}: {} vs {}",
                    est.conditional(q, s),
                    base.conditional(q, s)
                );
            }
        }
    }

    /// Section 6, form (1): "P(Alice has breast cancer) = 0.2" with Alice =
    /// i1 (a q1 person). The constraint is honoured exactly.
    #[test]
    fn individual_probability_respected() {
        let (_, table) = paper_example();
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::IndividualSa { pseudonym: 0, sa: 2, probability: 0.2 })
            .unwrap();
        let est = engine().estimate(&table, &kb).unwrap();
        let posterior = est.person_posterior(0);
        assert!((posterior[2] - 0.2).abs() < 1e-6, "posterior {posterior:?}");
        // Posteriors are distributions.
        let sum: f64 = posterior.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
    }

    /// Section 6, form (2): "Alice has either breast cancer or HIV".
    #[test]
    fn disjunction_respected() {
        let (_, table) = paper_example();
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![2, 3] })
            .unwrap();
        let est = engine().estimate(&table, &kb).unwrap();
        let posterior = est.person_posterior(0);
        assert!((posterior[2] + posterior[3] - 1.0).abs() < 1e-6, "{posterior:?}");
    }

    /// Section 6, form (3): "two people among Alice (q1), Bob (q2), Charlie
    /// (q5) have HIV" — the paper's exact example, with i1, i4, i9.
    #[test]
    fn group_count_respected() {
        let (_, table) = paper_example();
        // i1 = first q1 person; q2 = {female, college} → pseudonyms {i4,
        // i5}; q5 = {female, graduate} → i9. (Figure 4's numbering.)
        let interner = table.interner();
        let pseud = PseudonymTable::from_interner(interner);
        let q2 = interner.lookup(&[1, 0]).unwrap();
        let q5 = interner.lookup(&[1, 3]).unwrap();
        let i4 = pseud.pseudonyms_of(q2).start;
        let i9 = pseud.pseudonyms_of(q5).start;
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::GroupCount { pseudonyms: vec![0, i4, i9], sa: 3, count: 2 })
            .unwrap();
        let est = engine().estimate(&table, &kb).unwrap();
        let total: f64 = [0, i4, i9]
            .iter()
            .map(|&i| est.person_posterior(i)[3])
            .sum();
        assert!((total - 2.0).abs() < 1e-5, "expected 2 HIV among the trio, got {total}");
    }

    /// People sharing a QI symbol get identical posteriors absent
    /// distinguishing knowledge (exchangeability).
    #[test]
    fn exchangeable_pseudonyms() {
        let (_, table) = paper_example();
        let mut kb = KnowledgeBase::new();
        // Knowledge about i1 only.
        kb.push(Knowledge::IndividualSa { pseudonym: 0, sa: 3, probability: 0.9 })
            .unwrap();
        let est = engine().estimate(&table, &kb).unwrap();
        // i2 and i3 (the other q1 people) must still match each other.
        let p2 = est.person_posterior(1);
        let p3 = est.person_posterior(2);
        for s in 0..5 {
            assert!((p2[s] - p3[s]).abs() < 1e-6);
        }
        // And differ from i1.
        let p1 = est.person_posterior(0);
        assert!((p1[3] - 0.9).abs() < 1e-6);
        assert!(p2[3] < 0.9);
    }

    #[test]
    fn invalid_pseudonym_rejected() {
        let (_, table) = paper_example();
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::IndividualSa { pseudonym: 999, sa: 0, probability: 0.5 })
            .unwrap();
        assert!(matches!(
            engine().estimate(&table, &kb),
            Err(CoreError::InvalidKnowledge { .. })
        ));
    }
}
