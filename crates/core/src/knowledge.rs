//! Background-knowledge representation.
//!
//! Knowledge is anything the adversary knows beyond the published data.
//! The paper's two categories are both supported:
//!
//! * **Knowledge about the data distribution** (Section 4):
//!   [`Knowledge::Conditional`] — `P(s | Qv) = p` for a QI-subset value
//!   combination `Qv`. Association rules (positive and negative) reduce to
//!   this form via [`Knowledge::from_rule`].
//! * **Knowledge about individuals** (Section 6): probabilistic statements
//!   about pseudonymous persons — a single SA value, a disjunction of SA
//!   values, or a count over a group of people.

use pm_anonymize::pseudonym::PseudonymId;
use pm_assoc::rule::AssociationRule;
use pm_microdata::schema::Schema;
use pm_microdata::value::Value;

use crate::error::CoreError;

/// One unit of background knowledge.
#[derive(Debug, Clone, PartialEq)]
pub enum Knowledge {
    /// `P(sa = s | Qv) = probability` — knowledge about the data
    /// distribution (Section 4.1).
    ///
    /// `antecedent` holds `(qi_position, value)` pairs, where `qi_position`
    /// indexes into the QI *tuple* (the projection order of
    /// `Schema::qi_attrs`), not the raw attribute id.
    Conditional {
        /// `(position within QI tuple, value)` pairs, ascending by position.
        antecedent: Vec<(usize, Value)>,
        /// The SA value.
        sa: Value,
        /// The pinned conditional probability.
        probability: f64,
    },
    /// "The probability that person `i` has `s` is `p`" (Section 6, form 1).
    IndividualSa {
        /// Pseudonym of the person.
        pseudonym: PseudonymId,
        /// SA value.
        sa: Value,
        /// Probability.
        probability: f64,
    },
    /// "Person `i` has one of `sas`" (Section 6, form 2).
    IndividualOneOf {
        /// Pseudonym of the person.
        pseudonym: PseudonymId,
        /// The possible SA values (certainty: their probabilities sum to 1).
        sas: Vec<Value>,
    },
    /// "Exactly `count` among `pseudonyms` have `sa`" (Section 6, form 3).
    GroupCount {
        /// The people involved.
        pseudonyms: Vec<PseudonymId>,
        /// The shared SA value.
        sa: Value,
        /// How many of them have it.
        count: usize,
    },
}

impl Knowledge {
    /// Converts an association rule into conditional-probability knowledge.
    ///
    /// The rule's antecedent uses raw attribute ids; this translates them to
    /// QI-tuple positions using the schema. A negative rule `Qv ⇒ ¬s` with
    /// confidence `c` pins `P(s | Qv) = 1 − c`.
    pub fn from_rule(rule: &AssociationRule, schema: &Schema) -> Result<Self, CoreError> {
        let qi_attrs = schema.qi_attrs();
        let mut antecedent = Vec::with_capacity(rule.antecedent.len());
        for &(attr, value) in &rule.antecedent {
            let pos = qi_attrs.iter().position(|&a| a == attr).ok_or_else(|| {
                CoreError::InvalidKnowledge {
                    detail: format!("attribute {attr} is not a quasi-identifier"),
                }
            })?;
            antecedent.push((pos, value));
        }
        antecedent.sort_unstable_by_key(|&(p, _)| p);
        Ok(Self::Conditional {
            antecedent,
            sa: rule.sa_value,
            probability: rule.conditional_probability(),
        })
    }

    /// Whether this item concerns individuals (and therefore needs the
    /// pseudonym-expanded engine).
    pub fn is_individual(&self) -> bool {
        !matches!(self, Self::Conditional { .. })
    }

    /// Validates probability ranges.
    pub fn validate(&self) -> Result<(), CoreError> {
        let check = |p: f64| {
            if (0.0..=1.0).contains(&p) {
                Ok(())
            } else {
                Err(CoreError::InvalidProbability(p))
            }
        };
        match self {
            Self::Conditional { probability, .. } | Self::IndividualSa { probability, .. } => {
                check(*probability)
            }
            Self::IndividualOneOf { sas, .. } => {
                if sas.is_empty() {
                    Err(CoreError::InvalidKnowledge {
                        detail: "empty SA disjunction".into(),
                    })
                } else {
                    Ok(())
                }
            }
            Self::GroupCount { pseudonyms, count, .. } => {
                if *count > pseudonyms.len() {
                    Err(CoreError::InvalidKnowledge {
                        detail: format!(
                            "count {count} exceeds group size {}",
                            pseudonyms.len()
                        ),
                    })
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// An ordered collection of knowledge items; the ME constraint index of each
/// item is its position here.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KnowledgeBase {
    items: Vec<Knowledge>,
}

impl KnowledgeBase {
    /// Empty knowledge base (the "no background knowledge" assumption of
    /// prior work).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a base from association rules (the Top-(K+, K−) bound).
    pub fn from_rules<'a, I>(rules: I, schema: &Schema) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = &'a AssociationRule>,
    {
        let mut kb = Self::new();
        for r in rules {
            kb.push(Knowledge::from_rule(r, schema)?)?;
        }
        Ok(kb)
    }

    /// Appends a validated item.
    pub fn push(&mut self, k: Knowledge) -> Result<(), CoreError> {
        k.validate()?;
        self.items.push(k);
        Ok(())
    }

    /// The items.
    pub fn items(&self) -> &[Knowledge] {
        &self.items
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the base is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether any item concerns individuals.
    pub fn has_individual_knowledge(&self) -> bool {
        self.items.iter().any(Knowledge::is_individual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_assoc::rule::RulePolarity;
    use pm_microdata::schema::paper_example_schema;

    #[test]
    fn from_positive_rule() {
        let schema = paper_example_schema();
        let rule = AssociationRule {
            antecedent: vec![(0, 1)], // gender = female
            sa_value: 2,
            polarity: RulePolarity::Positive,
            antecedent_support: 4,
            support: 2,
            confidence: 0.5,
        };
        let k = Knowledge::from_rule(&rule, &schema).unwrap();
        assert_eq!(
            k,
            Knowledge::Conditional { antecedent: vec![(0, 1)], sa: 2, probability: 0.5 }
        );
    }

    #[test]
    fn from_negative_rule_inverts_confidence() {
        let schema = paper_example_schema();
        let rule = AssociationRule {
            antecedent: vec![(1, 0)], // degree = college
            sa_value: 3,
            polarity: RulePolarity::Negative,
            antecedent_support: 5,
            support: 4,
            confidence: 0.8,
        };
        let k = Knowledge::from_rule(&rule, &schema).unwrap();
        match k {
            Knowledge::Conditional { probability, .. } => {
                assert!((probability - 0.2).abs() < 1e-12)
            }
            _ => panic!("expected conditional"),
        }
    }

    #[test]
    fn non_qi_attribute_rejected() {
        let schema = paper_example_schema();
        let rule = AssociationRule {
            antecedent: vec![(2, 0)], // attribute 2 is the SA itself
            sa_value: 0,
            polarity: RulePolarity::Positive,
            antecedent_support: 1,
            support: 1,
            confidence: 1.0,
        };
        assert!(matches!(
            Knowledge::from_rule(&rule, &schema),
            Err(CoreError::InvalidKnowledge { .. })
        ));
    }

    #[test]
    fn validation() {
        let bad = Knowledge::Conditional { antecedent: vec![], sa: 0, probability: 1.5 };
        assert!(matches!(bad.validate(), Err(CoreError::InvalidProbability(_))));
        let bad = Knowledge::GroupCount { pseudonyms: vec![0], sa: 0, count: 2 };
        assert!(bad.validate().is_err());
        let ok = Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![1, 2] };
        assert!(ok.validate().is_ok());
        let bad = Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![] };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn individual_detection() {
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::Conditional { antecedent: vec![], sa: 0, probability: 0.5 })
            .unwrap();
        assert!(!kb.has_individual_knowledge());
        kb.push(Knowledge::IndividualSa { pseudonym: 0, sa: 0, probability: 0.2 })
            .unwrap();
        assert!(kb.has_individual_knowledge());
        assert_eq!(kb.len(), 2);
    }
}
