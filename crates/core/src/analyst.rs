//! The resident [`Analyst`] session: a lightweight, forkable handle over a
//! shared [`CompiledTable`] artifact, with incremental knowledge deltas,
//! component-level dirty tracking and warm-started re-solves.
//!
//! # Compile once, serve many
//!
//! Everything knowledge-independent — the term index, the D'-invariants,
//! the QI→bucket inverted index, the baseline partition and its Theorem 5
//! solution — is a function of the published table alone (Theorems 1–3),
//! so it is compiled exactly once into an immutable, `Send + Sync`
//! [`CompiledTable`]. A session is only the *per-adversary* state on top:
//!
//! * [`CompiledTable::build`] + [`Analyst::open`] split the old
//!   [`Analyst::new`] into the one-time compile and an O(1) session open.
//!   Any number of sessions (across threads) share one
//!   `Arc<CompiledTable>`; each holds its own knowledge set, dirty
//!   tracking, and current solution as a **copy-on-write overlay** on the
//!   artifact's baseline (bucket → `Arc` slice — buckets never touched by
//!   the adversary's knowledge are never copied at all).
//! * [`Analyst::fork`] clones a session for speculative what-if deltas:
//!   the artifact is shared, the overlay clone is reference bumps, and the
//!   fork evolves independently of its parent (handles issued before the
//!   fork stay valid in both).
//! * [`Analyst::snapshot`] hands out the current [`Estimate`] as a cheap
//!   `Arc` — query serving holds the snapshot while the session refreshes
//!   underneath, so a refresh never blocks readers.
//! * [`Analyst::add_knowledge`] / [`Analyst::remove_knowledge`] compile the
//!   delta eagerly, record its **bucket footprint** (the buckets its
//!   constraint touches), mark those buckets dirty, and return a stable
//!   [`KnowledgeHandle`]. Nothing is re-solved yet.
//! * [`Analyst::refresh`] re-partitions (cheap: union-find over buckets)
//!   and re-solves **only the components containing a dirty bucket**. Clean
//!   components keep their overlay (or baseline) values verbatim; dirty
//!   irrelevant components revert to the artifact's Theorem 5 baseline;
//!   dirty relevant components re-solve on the `pm-parallel` pool —
//!   optionally warm-started from the previous refresh's dual vectors
//!   ([`EngineConfig::warm_start`]).
//! * [`Analyst::conditional`], [`Analyst::batch`] and [`Analyst::report`]
//!   serve queries from the merged current [`Estimate`] without any
//!   recompute.
//! * [`Analyst::rebase`] carries the whole session — knowledge entries,
//!   overlay, dirty tracking — onto the next **table epoch** when the
//!   published table itself changes ([`CompiledTable::apply`] under a
//!   [`crate::delta::TableDelta`]): only the delta's bucket footprint and
//!   the rules it could have changed are dirtied/recompiled, everything
//!   else (including solved overlay slices, which live in epoch-stable
//!   count space) is carried verbatim.
//!
//! [`Analyst::new`] survives as a thin wrapper (build + open) and the
//! one-shot [`Engine::estimate`] as a throwaway session over an internal
//! artifact shell; both produce bit-identical output to the pre-artifact
//! API.
//!
//! # Why component-granular invalidation is sound
//!
//! Section 5.5 of the paper proves the constraint system decomposes into
//! independent subproblems along bucket connected components: a constraint
//! only couples the buckets its terms live in, so the maxent optimum of the
//! whole system restricted to one component equals the optimum of that
//! component solved alone. A knowledge delta can therefore only change the
//! optimum of components it touches — and "touches" is exactly the delta's
//! bucket footprint. Components disjoint from every footprint since the
//! last refresh see an unchanged constraint system (any rule attached to
//! them touches only their buckets, and no such rule was added or removed),
//! so their previous solution *is* their current optimum and is reused
//! bit-for-bit. Component merges and splits are covered by the same
//! argument: a merge is caused by an added rule whose footprint lies in the
//! merged component, a split by a removed rule whose footprint lies in all
//! resulting parts — either way the affected components contain dirty
//! buckets and re-solve.
//!
//! # Determinism
//!
//! With [`EngineConfig::warm_start`] off (the default), a refresh is
//! **bit-identical** to a from-scratch [`Engine::estimate`] holding the
//! same final knowledge set (in the same insertion order), for every thread
//! count: clean components are reused verbatim and dirty ones re-solve the
//! identical cold-started local system. The same holds for any tree of
//! [`Analyst::fork`]s — each fork's estimate depends only on its own final
//! knowledge set. Warm starts converge to the same optimum within
//! tolerance but along a different path, so low-order bits differ — opt in
//! when serving latency matters more than replayability.
//!
//! [`CompiledTable`]: crate::compiled::CompiledTable
//! [`CompiledTable::build`]: crate::compiled::CompiledTable::build
//! [`CompiledTable::apply`]: crate::compiled::CompiledTable::apply
//! [`Engine::estimate`]: crate::engine::Engine::estimate
//! [`EngineConfig::warm_start`]: crate::engine::EngineConfig::warm_start

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::published::PublishedTable;
use pm_anonymize::pseudonym::PseudonymId;
use pm_assoc::rule::AssociationRule;
use pm_microdata::qi::QiId;
use pm_microdata::schema::Schema;
use pm_microdata::value::Value;

use crate::batch;
use crate::compile::compile_items_parallel;
use crate::compiled::CompiledTable;
use crate::constraint::{Constraint, ConstraintOrigin};
use crate::engine::{
    solve_component, uniform_bucket_values, ComponentSolution, EngineConfig, EngineStats,
    Estimate, SolveScratch,
};
use crate::error::PmError;
use crate::individuals::{IndividualEngine, PersonEstimate};
use crate::knowledge::{Knowledge, KnowledgeBase};
use crate::metrics;
use crate::overlay::FlatOverlay;
use crate::partition::{knowledge_components, split_separable_knowledge, Component};

/// Stable identifier of one knowledge item inside an [`Analyst`] session.
///
/// Handles are never reused within a session, survive removals of other
/// items, and index nothing directly — they are looked up, so a stale
/// handle yields [`PmError::StaleHandle`] instead of touching the wrong
/// rule. A [`Analyst::fork`] inherits its parent's live handles; handles
/// issued after the fork are per-session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[must_use = "a dropped handle makes its knowledge item irremovable"]
pub struct KnowledgeHandle(u64);

impl KnowledgeHandle {
    /// The raw id (for serialising sessions, e.g. the CLI's scripted mode).
    #[must_use]
    pub fn id(self) -> u64 {
        self.0
    }

    /// Reconstructs a handle from [`KnowledgeHandle::id`]. Forged ids are
    /// harmless: operations on a handle the session never issued return
    /// [`PmError::StaleHandle`].
    pub fn from_id(id: u64) -> Self {
        Self(id)
    }
}

impl fmt::Display for KnowledgeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What one [`Analyst::rebase`] actually did.
#[derive(Debug, Clone, Default)]
pub struct RebaseStats {
    /// The epoch the session now serves from.
    pub epoch: u64,
    /// Buckets the delta touched (all dirtied).
    pub touched_buckets: usize,
    /// Knowledge entries recompiled against the new epoch (a sound
    /// overapproximation of the entries the delta could have changed).
    pub recompiled: usize,
    /// Recompiled entries whose constraint actually changed (their old and
    /// new footprints dirtied too).
    pub changed: usize,
    /// Overlay buckets carried forward verbatim (their solved values are
    /// provably still the post-delta optimum).
    pub carried: usize,
}

/// What one [`Analyst::refresh`] actually did.
#[derive(Debug, Clone, Default)]
pub struct RefreshStats {
    /// Components in the current partition.
    pub components: usize,
    /// Components invalidated by the accumulated deltas.
    pub dirty: usize,
    /// Dirty components re-solved numerically.
    pub resolved: usize,
    /// Dirty irrelevant components reverted to the Theorem 5 closed form.
    pub closed_form: usize,
    /// Clean components whose previous solution was reused verbatim.
    pub reused: usize,
    /// Numeric re-solves that started from a non-zero cached dual
    /// (always 0 with [`EngineConfig::warm_start`] off).
    pub warm_started: usize,
    /// Whether the Section 6 individual layer was re-solved.
    pub individual_resolve: bool,
    /// Wall time of the whole refresh.
    pub wall: Duration,
    /// Summed solver time of the numeric re-solves.
    pub solver: Duration,
}

/// Session snapshot served by [`Analyst::report`] — privacy scores of the
/// current estimate plus the shape of the last refresh. No recompute: the
/// metrics fold over the already-merged conditional table.
#[derive(Debug, Clone)]
pub struct AnalystReport {
    /// Live distribution-knowledge items.
    pub knowledge_items: usize,
    /// Individual-knowledge items ([`Analyst::set_individuals`]).
    pub individual_items: usize,
    /// Components in the current partition.
    pub components: usize,
    /// Whether deltas are pending (queries serve the pre-delta estimate
    /// until the next [`Analyst::refresh`]).
    pub pending_deltas: bool,
    /// `max_{q,s} P*(s | q)` of the current estimate.
    pub max_disclosure: f64,
    /// `1 / max_disclosure`.
    pub effective_l_diversity: f64,
    /// `min_q H(S | Q = q)` in nats.
    pub min_conditional_entropy: f64,
    /// The last refresh's statistics.
    pub last_refresh: RefreshStats,
}

impl fmt::Display for AnalystReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session: {} knowledge item(s){}, {} component(s){}",
            self.knowledge_items,
            if self.individual_items > 0 {
                format!(" + {} individual", self.individual_items)
            } else {
                String::new()
            },
            self.components,
            if self.pending_deltas { " [deltas pending]" } else { "" },
        )?;
        writeln!(
            f,
            "last refresh: {} re-solved, {} closed-form, {} reused in {:.3} ms",
            self.last_refresh.resolved,
            self.last_refresh.closed_form,
            self.last_refresh.reused,
            self.last_refresh.wall.as_secs_f64() * 1e3,
        )?;
        write!(
            f,
            "max disclosure {:.4} | effective l-diversity {:.3} | min H(S|q) {:.4} nats",
            self.max_disclosure, self.effective_l_diversity, self.min_conditional_entropy,
        )
    }
}

/// One live knowledge item: the compiled constraint plus its bucket
/// footprint — the session's invalidation unit.
#[derive(Clone)]
struct KnowledgeEntry {
    handle: KnowledgeHandle,
    item: Knowledge,
    /// Compiled constraint coefficients over global term ids (origin is
    /// re-indexed per refresh, so only coefficients and target are cached).
    coeffs: Vec<(usize, f64)>,
    rhs: f64,
    /// Buckets the constraint touches, ascending and deduplicated.
    footprint: Vec<usize>,
}

/// Identity of a dual variable across refreshes, for warm starts. Invariant
/// rows are identified by their bucket-local origin, knowledge rows by the
/// stable handle (their positional index shifts as items come and go).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DualKey {
    Qi { q: QiId, b: usize },
    Sa { s: Value, b: usize },
    Knowledge { handle: KnowledgeHandle },
}

fn dual_key(origin: &ConstraintOrigin, entries: &[KnowledgeEntry]) -> Option<DualKey> {
    match *origin {
        ConstraintOrigin::QiInvariant { q, b } => Some(DualKey::Qi { q, b }),
        ConstraintOrigin::SaInvariant { s, b } => Some(DualKey::Sa { s, b }),
        ConstraintOrigin::Knowledge { index } => {
            entries.get(index).map(|e| DualKey::Knowledge { handle: e.handle })
        }
    }
}

/// A long-lived Privacy-MaxEnt session over one published table — a
/// lightweight handle on a shared [`CompiledTable`] artifact.
///
/// See the [module docs](self) for the lifecycle and the soundness
/// argument. The one-shot [`crate::engine::Engine::estimate`] is a thin
/// wrapper over this type.
#[derive(Debug)]
pub struct Analyst {
    /// The shared knowledge-independent artifact.
    artifact: Arc<CompiledTable>,
    config: EngineConfig,
    entries: Vec<KnowledgeEntry>,
    next_handle: u64,
    /// Buckets touched by deltas since the last successful refresh.
    dirty: BTreeSet<usize>,
    /// Whether the knowledge set changed since the last refresh.
    stale: bool,
    /// Current partition; `None` means the artifact's knowledge-free
    /// baseline partition (the state of a freshly opened session).
    components: Option<Vec<Component>>,
    /// Whether the cached partition's *structure* may be out of date:
    /// entries were added/removed (knowledge-row ids shift), a rebase
    /// changed some entry's bits, or the new epoch re-numbered rows
    /// (invariant or bucket count moved). While false, a refresh reuses
    /// `components` verbatim instead of re-partitioning the whole table —
    /// the steady-state path stays O(dirty components), not O(table).
    partition_stale: bool,
    /// Copy-on-write solution overlay: one flat epoch-indexed value buffer
    /// plus a dense bucket → `(offset, len)` slot table (count space —
    /// epoch-stable). Buckets without a slot serve the artifact's baseline.
    overlay: FlatOverlay,
    /// The served estimate — an `Arc` so [`Analyst::snapshot`] readers keep
    /// a consistent view across refreshes.
    estimate: Arc<Estimate>,
    /// Dual vectors of the last refresh, by row identity (warm starts).
    dual_cache: HashMap<DualKey, f64>,
    individuals: Vec<Knowledge>,
    individuals_stale: bool,
    person: Option<PersonEstimate>,
    last_refresh: RefreshStats,
}

impl fmt::Debug for KnowledgeEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnowledgeEntry")
            .field("handle", &self.handle)
            .field("item", &self.item)
            .field("footprint", &self.footprint)
            .finish_non_exhaustive()
    }
}

impl Analyst {
    /// Compiles `table` and opens a session over the fresh artifact — the
    /// historical all-in-one entry point, now a thin wrapper over
    /// [`CompiledTable::build`] + [`Analyst::open`] with bit-identical
    /// output. Callers opening more than one session over the same table
    /// should build the artifact once and share it.
    ///
    /// The only fallible part is the baseline solve, and only when
    /// [`EngineConfig::decompose`] is off (the joint invariant system then
    /// goes through the numeric solver instead of the closed form).
    pub fn new(table: PublishedTable, config: EngineConfig) -> Result<Self, PmError> {
        Ok(Self::open(Arc::new(CompiledTable::build(table, config)?)))
    }

    /// Opens a lightweight session over a shared artifact, inheriting the
    /// artifact's [`EngineConfig`].
    ///
    /// This is O(1): no compilation, no solving — the session starts with
    /// an empty knowledge set, an empty overlay, and serves the artifact's
    /// knowledge-free baseline estimate immediately.
    pub fn open(artifact: Arc<CompiledTable>) -> Self {
        let config = artifact.config().clone();
        Self::open_inner(artifact, config)
    }

    /// [`Analyst::open`] with per-session [`EngineConfig`] overrides
    /// (solver, tolerance, thread count, warm starts, …).
    ///
    /// The artifact bakes in [`EngineConfig::decompose`] and
    /// [`EngineConfig::concise_invariants`] — its invariant rows and
    /// baseline were built under them — so a `config` disagreeing on either
    /// returns [`PmError::ArtifactMismatch`] instead of silently serving
    /// estimates from a mismatched artifact. For a `decompose = false`
    /// artifact the baked-in baseline is additionally a *numeric* solve, so
    /// the solver knobs (`solver`, `tolerance`, `max_iterations`) must
    /// match too; under decomposition the baseline is the closed form and
    /// those stay freely overridable.
    pub fn open_with(
        artifact: Arc<CompiledTable>,
        config: EngineConfig,
    ) -> Result<Self, PmError> {
        let built = artifact.config();
        if config.decompose != built.decompose {
            return Err(PmError::ArtifactMismatch {
                detail: format!(
                    "artifact was built with decompose = {}, session wants {}",
                    built.decompose, config.decompose
                ),
            });
        }
        if config.concise_invariants != built.concise_invariants {
            return Err(PmError::ArtifactMismatch {
                detail: format!(
                    "artifact was built with concise_invariants = {}, session wants {}",
                    built.concise_invariants, config.concise_invariants
                ),
            });
        }
        // Without decomposition the baseline is a *numeric* solve baked in
        // under the artifact's solver knobs, so a session disagreeing on
        // any of them would serve baseline bits its own config never
        // produces. (Under decomposition the baseline is the closed form —
        // no solver touched it — so per-session solver overrides are fine.)
        if !built.decompose {
            let mismatch = if config.solver != built.solver {
                Some(format!("solver ({:?} vs {:?})", built.solver, config.solver))
            } else if config.tolerance != built.tolerance {
                Some(format!("tolerance ({} vs {})", built.tolerance, config.tolerance))
            } else if config.max_iterations != built.max_iterations {
                Some(format!(
                    "max_iterations ({} vs {})",
                    built.max_iterations, config.max_iterations
                ))
            } else {
                None
            };
            if let Some(knob) = mismatch {
                return Err(PmError::ArtifactMismatch {
                    detail: format!(
                        "the artifact's decompose = false baseline was solved \
                         numerically under its own {knob}; rebuild the artifact \
                         with the session's config instead"
                    ),
                });
            }
        }
        Ok(Self::open_inner(artifact, config))
    }

    fn open_inner(artifact: Arc<CompiledTable>, config: EngineConfig) -> Self {
        let estimate = artifact.baseline_estimate();
        let last_refresh = artifact.baseline_refresh().clone();
        let overlay = FlatOverlay::new(artifact.table().num_buckets(), artifact.epoch());
        Self {
            artifact,
            config,
            entries: Vec::new(),
            next_handle: 0,
            dirty: BTreeSet::new(),
            stale: false,
            components: None,
            partition_stale: true,
            overlay,
            estimate,
            dual_cache: HashMap::new(),
            individuals: Vec::new(),
            individuals_stale: false,
            person: None,
            last_refresh,
        }
    }

    /// A throwaway session over an artifact *shell* (no baseline solved) —
    /// the one-shot `Engine::estimate` path. Every bucket starts dirty and
    /// `estimate` is a zero placeholder until the first refresh, which
    /// skips the baseline solve the immediate full refresh would discard.
    pub(crate) fn new_deferred(table: PublishedTable, config: EngineConfig) -> Self {
        let artifact = Arc::new(CompiledTable::build_shell(table, config.clone()));
        let mut session = Self::open_inner(artifact, config);
        session.dirty = (0..session.artifact.table().num_buckets()).collect();
        session.stale = true;
        session
    }

    /// Forks the session for speculative what-if deltas.
    ///
    /// The fork shares the artifact (an `Arc` bump) and starts from this
    /// session's exact state — knowledge set, pending deltas, overlay,
    /// dual cache, served estimate. From there the two evolve independently:
    /// deltas and refreshes on one are invisible to the other, and each
    /// stays bit-identical to a from-scratch solve of its own knowledge
    /// set. Handles issued before the fork are valid in both sessions.
    #[must_use = "forking has no effect on the parent; use the returned session"]
    pub fn fork(&self) -> Self {
        Self {
            artifact: Arc::clone(&self.artifact),
            config: self.config.clone(),
            entries: self.entries.clone(),
            next_handle: self.next_handle,
            dirty: self.dirty.clone(),
            stale: self.stale,
            components: self.components.clone(),
            partition_stale: self.partition_stale,
            // One `Arc` bump plus a slot-table memcpy: the flat value
            // buffer is shared until a refresh on either side performs its
            // first write (copy-on-write; see `overlay::FlatOverlay`).
            overlay: self.overlay.clone(),
            estimate: Arc::clone(&self.estimate),
            dual_cache: self.dual_cache.clone(),
            individuals: self.individuals.clone(),
            individuals_stale: self.individuals_stale,
            person: self.person.clone(),
            last_refresh: self.last_refresh.clone(),
        }
    }

    /// The shared artifact this session serves from.
    #[must_use]
    pub fn artifact(&self) -> &Arc<CompiledTable> {
        &self.artifact
    }

    // ---- Overlay observability (structural-sharing test hooks). ----
    //
    // These expose *identity*, not values: pointer/offset equality is how
    // `tests/test_overlay_lifecycle.rs` proves fork copy-on-write and
    // steady-state in-place reuse instead of merely observing equal bytes.

    /// Whether this session's overlay still shares its flat value buffer
    /// with `other`'s (true between a fork and the first copy-on-write
    /// write on either side).
    #[doc(hidden)]
    #[must_use]
    pub fn overlay_shares_buffer_with(&self, other: &Analyst) -> bool {
        self.overlay.shares_buffer_with(&other.overlay)
    }

    /// The overlay buffer's raw address (identity across refreshes proves
    /// in-place reuse; a change proves a copy-on-write break).
    #[doc(hidden)]
    #[must_use]
    pub fn overlay_buffer_ptr(&self) -> *const f64 {
        self.overlay.buffer_ptr()
    }

    /// Bucket `b`'s `(offset, len)` overlay slot, `None` when the bucket
    /// serves the artifact's baseline.
    #[doc(hidden)]
    #[must_use]
    pub fn overlay_slot(&self, b: usize) -> Option<(usize, usize)> {
        self.overlay.slot(b)
    }

    /// Number of buckets with overlay values.
    #[doc(hidden)]
    #[must_use]
    pub fn overlay_len(&self) -> usize {
        self.overlay.len()
    }

    /// The table epoch the overlay's slot layout was built against.
    #[doc(hidden)]
    #[must_use]
    pub fn overlay_epoch(&self) -> u64 {
        self.overlay.epoch()
    }

    /// The table epoch this session is pinned to (advanced by
    /// [`Analyst::rebase`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.artifact.epoch()
    }

    /// Carries the session — its knowledge entries, copy-on-write overlay
    /// and dirty tracking — forward onto the **successor epoch** of its
    /// current artifact (produced by [`CompiledTable::apply`]).
    ///
    /// The rebase is footprint-local: only the delta's touched buckets are
    /// dirtied, plus the footprints of any knowledge entry the delta could
    /// have changed. Which entries are those? A compiled rule depends on
    /// (a) the counts of the QI symbols matching its antecedent and (b) the
    /// admissible `(q, sa, bucket)` combinations of those symbols — so the
    /// delta can only have changed rules whose antecedent matches a
    /// *candidate* symbol: one of the delta records' own QI symbols, or a
    /// symbol present in a touched bucket before or after the delta. Those
    /// entries are recompiled against the new epoch (in parallel, against
    /// the artifact's shared QI→bucket index) and compared: entries whose
    /// constraint is bit-unchanged dirty nothing. Every other entry keeps
    /// its compiled row (term ids renumbered to the new epoch's layout —
    /// pure offset arithmetic, since its buckets are untouched).
    ///
    /// Everything else carries forward: overlay slices of untouched buckets
    /// are provably still their components' optimum (count-space solutions
    /// do not even see the new `N`), so the next [`Analyst::refresh`]
    /// re-solves only components intersecting the dirty set — and is
    /// **bit-identical** to compiling the post-delta table from scratch and
    /// replaying the same knowledge set.
    ///
    /// Errors:
    /// * [`PmError::EpochMismatch`] if `new` is not the direct successor of
    ///   the session's epoch (wrong lineage, skipped or backwards epoch) —
    ///   rebase through each intermediate epoch in order.
    /// * A knowledge compile error (e.g. [`PmError::InvalidKnowledge`] when
    ///   a retraction removed the last record matching a rule's
    ///   antecedent). The session is untouched; remove the offending item
    ///   and rebase again.
    /// * [`PmError::InvalidKnowledge`] when Section 6 individual knowledge
    ///   is set ([`Analyst::set_individuals`]) and the delta inserts or
    ///   retracts records: pseudonym ids are count-derived and would
    ///   silently shift. Clear (or re-derive) the individual set first;
    ///   move-only deltas keep counts, and pseudonyms, intact.
    ///
    /// Queries keep serving the pre-delta estimate until the next
    /// successful [`Analyst::refresh`] ([`Analyst::is_stale`] reports the
    /// pending state).
    ///
    /// [`CompiledTable::apply`]: crate::compiled::CompiledTable::apply
    pub fn rebase(&mut self, new: &Arc<CompiledTable>) -> Result<RebaseStats, PmError> {
        if Arc::ptr_eq(&self.artifact, new) {
            return Ok(RebaseStats {
                epoch: self.artifact.epoch(),
                carried: self.overlay.len(),
                ..Default::default()
            });
        }
        if !new.is_successor_of(&self.artifact) {
            return Err(PmError::EpochMismatch {
                session_epoch: self.artifact.epoch(),
                artifact_epoch: new.epoch(),
                detail: "rebase requires the direct successor of the session's artifact \
                         (an epoch produced by CompiledTable::apply on it — not an \
                         ancestor, a skipped descendant, a sibling branch, or another \
                         lineage)"
                    .into(),
            });
        }
        let delta = new.applied_delta().expect("successor epochs carry their delta");

        // No-op delta: swap the artifact pointer, dirty nothing — the next
        // refresh's fast path leaves the served estimate pointer-equal.
        if delta.is_noop() {
            self.overlay.rebase(new.table().num_buckets(), new.epoch());
            let carried = self.overlay.len();
            self.artifact = Arc::clone(new);
            return Ok(RebaseStats {
                epoch: self.artifact.epoch(),
                carried,
                ..Default::default()
            });
        }

        let old = Arc::clone(&self.artifact);
        let touched = delta.touched_buckets();

        // Section 6 pseudonyms are prefix-sum offsets over the interner's
        // record counts — unlike QiIds they are NOT stable under count
        // changes, so a rebase would silently re-point the session's
        // individual knowledge at different people (or out of range).
        // Refuse count-shifting deltas while individual knowledge is set;
        // moves only re-bucket records and stay safe.
        if !self.individuals.is_empty() {
            let old_interner = old.table().interner();
            let new_interner = new.table().interner();
            let shifted = delta.qi_symbols().iter().any(|&q| {
                q >= old_interner.distinct() || old_interner.count(q) != new_interner.count(q)
            });
            if shifted {
                return Err(PmError::InvalidKnowledge {
                    detail: "the delta inserts or retracts records, which shifts the \
                             pseudonym ids the session's individual knowledge is keyed \
                             by; clear or re-derive it (set_individuals) before rebasing"
                        .into(),
                });
            }
        }

        // Entries the delta could have changed (see the doc comment). A
        // compiled rule depends on (1) the counts of its matching symbols,
        // (2) their bucket membership, (3) per-bucket `(q, sa)`
        // admissibility — so it needs recompiling iff its antecedent
        // matches a delta record's symbol (counts), or a symbol whose
        // *membership* in a touched bucket flipped (buckets_of /
        // admissibility), or its SA value's membership flipped in a bucket
        // holding a matching symbol. Everything else is provably
        // bit-unchanged. With decomposition off there is one joint system
        // anyway — recompile everything and dirty every bucket.
        let interner = new.table().interner();
        let matches = |antecedent: &[(usize, Value)], q: usize| {
            let tuple = interner.tuple(q);
            antecedent.iter().all(|&(pos, v)| tuple[pos] == v)
        };
        let affected: Vec<usize> = if self.config.decompose {
            // Symbols whose counts changed (delta records) plus symbols
            // whose membership in a touched bucket flipped.
            let mut cand: BTreeSet<usize> = delta.qi_symbols().iter().copied().collect();
            // Per touched bucket: SA values whose membership flipped, with
            // the bucket's pre/post symbol pool for the matching test.
            let mut sa_flips: Vec<(BTreeSet<Value>, Vec<usize>)> = Vec::new();
            for &b in touched {
                let old_b = old.table().bucket(b);
                let new_b = new.table().bucket(b);
                let mut pool: Vec<usize> = Vec::new();
                for &(q, _) in old_b.qi_counts().iter().chain(new_b.qi_counts()) {
                    if old_b.contains_qi(q) != new_b.contains_qi(q) {
                        cand.insert(q);
                    }
                    pool.push(q);
                }
                pool.sort_unstable();
                pool.dedup();
                let flips: BTreeSet<Value> = old_b
                    .sa_counts()
                    .iter()
                    .chain(new_b.sa_counts())
                    .map(|&(s, _)| s)
                    .filter(|&s| old_b.contains_sa(s) != new_b.contains_sa(s))
                    .collect();
                if !flips.is_empty() {
                    sa_flips.push((flips, pool));
                }
            }
            self.entries
                .iter()
                .enumerate()
                .filter(|(_, e)| {
                    let Knowledge::Conditional { antecedent, sa, .. } = &e.item else {
                        return false;
                    };
                    cand.iter().any(|&q| matches(antecedent, q))
                        || sa_flips.iter().any(|(flips, pool)| {
                            flips.contains(sa) && pool.iter().any(|&q| matches(antecedent, q))
                        })
                })
                .map(|(i, _)| i)
                .collect()
        } else {
            (0..self.entries.len()).collect()
        };

        // Recompile affected entries against the new epoch. Atomic: any
        // failure (now-unmatchable antecedent) leaves the session exactly
        // as it was.
        let items: Vec<Knowledge> =
            affected.iter().map(|&i| self.entries[i].item.clone()).collect();
        let compiled = compile_items_parallel(
            &items,
            new.table(),
            new.term_index(),
            new.qi_buckets(),
            self.config.threads,
        )?;

        // ---- Commit. ----
        let old_index = old.term_index();
        let new_index = new.term_index();
        let mut changed = 0usize;
        let mut is_affected = vec![false; self.entries.len()];
        for &i in &affected {
            is_affected[i] = true;
        }
        let mut affected_it = affected.iter().zip(compiled);
        for (i, entry) in self.entries.iter_mut().enumerate() {
            if is_affected[i] {
                let (_, c) = affected_it.next().expect("one compile per affected entry");
                // Bit-unchanged? Compare by term identity (ids shift across
                // epochs) and the count-space target.
                let unchanged = entry.rhs == c.rhs
                    && entry.coeffs.len() == c.coeffs.len()
                    && entry.coeffs.iter().zip(&c.coeffs).all(|(&(ot, ov), &(nt, nv))| {
                        ov == nv && old_index.term(ot) == new_index.term(nt)
                    });
                let mut footprint: Vec<usize> =
                    c.coeffs.iter().map(|&(t, _)| new_index.term(t).b).collect();
                footprint.sort_unstable();
                footprint.dedup();
                if !unchanged {
                    changed += 1;
                    self.dirty.extend(entry.footprint.iter().copied());
                    self.dirty.extend(footprint.iter().copied());
                    self.dual_cache.remove(&DualKey::Knowledge { handle: entry.handle });
                }
                entry.coeffs = c.coeffs;
                entry.rhs = c.rhs;
                entry.footprint = footprint;
            } else {
                // The constraint is bit-unchanged, but term ids are
                // per-epoch. Untouched buckets keep their local layout
                // (offset arithmetic); a coefficient can also sit in a
                // *touched* bucket — its `(q, sa)` presence there is
                // provably unchanged (else the entry were affected), yet
                // the rebuilt bucket may have reordered its local term
                // list, so those remap by term identity.
                for (t, _) in &mut entry.coeffs {
                    let b = old_index.bucket_of(*t);
                    *t = if touched.binary_search(&b).is_ok() {
                        let term = old_index.term(*t);
                        new_index
                            .get(term.q, term.s, b)
                            .expect("presence in a touched bucket is unchanged for unaffected rules")
                    } else {
                        *t - old_index.bucket_range(b).start + new_index.bucket_range(b).start
                    };
                }
            }
        }

        self.dirty.extend(touched.iter().copied());
        if !self.config.decompose {
            self.dirty.extend(0..new.table().num_buckets());
        }
        for &b in touched {
            // Dirty anyway, and the bucket's term range may have resized.
            self.overlay.remove(b);
        }
        // Untouched slots carry their count-space values verbatim onto the
        // successor epoch; only the bucket count and epoch tag move.
        self.overlay.rebase(new.table().num_buckets(), new.epoch());
        self.dual_cache.retain(|k, _| match *k {
            DualKey::Qi { b, .. } | DualKey::Sa { b, .. } => !touched.contains(&b),
            DualKey::Knowledge { .. } => true,
        });
        let carried = self.overlay.len();
        self.stale = true;
        // The partition survives the rebase iff its row numbering does:
        // every entry bit-unchanged (same footprints → same connectivity)
        // and the new epoch kept the invariant-row base and bucket count
        // (knowledge-row ids are `num_invariants + i`).
        if changed > 0
            || new.num_invariants() != old.num_invariants()
            || new.table().num_buckets() != old.table().num_buckets()
        {
            self.partition_stale = true;
        }
        if !self.individuals.is_empty() {
            // The person-level layer is a function of the table: re-solve.
            self.individuals_stale = true;
        }
        self.artifact = Arc::clone(new);
        Ok(RebaseStats {
            epoch: self.artifact.epoch(),
            touched_buckets: touched.len(),
            recompiled: affected.len(),
            changed,
            carried,
        })
    }

    /// The published table this session serves.
    #[must_use]
    pub fn table(&self) -> &PublishedTable {
        self.artifact.table()
    }

    /// The engine configuration the session was opened with.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Adds one piece of distribution knowledge, compiling it eagerly and
    /// dirtying the components its bucket footprint touches. Returns a
    /// stable handle for later [`Analyst::remove_knowledge`].
    ///
    /// Individual knowledge (Section 6) goes through
    /// [`Analyst::set_individuals`]; passing it here returns
    /// [`PmError::RequiresIndividualEngine`].
    pub fn add_knowledge(&mut self, item: Knowledge) -> Result<KnowledgeHandle, PmError> {
        let handles = self.add_knowledge_batch(std::slice::from_ref(&item))?;
        Ok(handles[0])
    }

    /// [`Analyst::add_knowledge`] for a whole batch: items compile in
    /// parallel on [`EngineConfig::threads`] workers against the artifact's
    /// QI→bucket index, and the batch registers atomically — on any
    /// compile error (reported for the lowest-indexed failing item) the
    /// session is unchanged.
    pub fn add_knowledge_batch(
        &mut self,
        items: &[Knowledge],
    ) -> Result<Vec<KnowledgeHandle>, PmError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if items.iter().any(Knowledge::is_individual) {
            return Err(PmError::RequiresIndividualEngine);
        }
        for item in items {
            item.validate()?;
        }
        let compiled = compile_items_parallel(
            items,
            self.artifact.table(),
            self.artifact.term_index(),
            self.artifact.qi_buckets(),
            self.config.threads,
        )?;
        let index = self.artifact.term_index();
        let mut handles = Vec::with_capacity(items.len());
        for (item, c) in items.iter().zip(compiled) {
            let mut footprint: Vec<usize> =
                c.coeffs.iter().map(|&(t, _)| index.term(t).b).collect();
            footprint.sort_unstable();
            footprint.dedup();
            self.dirty.extend(footprint.iter().copied());
            let handle = KnowledgeHandle(self.next_handle);
            self.next_handle += 1;
            self.entries.push(KnowledgeEntry {
                handle,
                item: item.clone(),
                coeffs: c.coeffs,
                rhs: c.rhs,
                footprint,
            });
            handles.push(handle);
        }
        self.stale = true;
        self.partition_stale = true;
        Ok(handles)
    }

    /// Converts association rules to knowledge ([`Knowledge::from_rule`])
    /// and adds them as one batch.
    pub fn add_rules<'a, I>(
        &mut self,
        rules: I,
        schema: &Schema,
    ) -> Result<Vec<KnowledgeHandle>, PmError>
    where
        I: IntoIterator<Item = &'a AssociationRule>,
    {
        let items: Vec<Knowledge> = rules
            .into_iter()
            .map(|r| Knowledge::from_rule(r, schema))
            .collect::<Result<_, _>>()?;
        self.add_knowledge_batch(&items)
    }

    /// Removes a previously added item, dirtying its bucket footprint.
    /// Returns the removed knowledge, or [`PmError::StaleHandle`] if the
    /// handle is not live.
    pub fn remove_knowledge(&mut self, handle: KnowledgeHandle) -> Result<Knowledge, PmError> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.handle == handle)
            .ok_or(PmError::StaleHandle { handle })?;
        let entry = self.entries.remove(pos);
        self.dirty.extend(entry.footprint.iter().copied());
        self.dual_cache.remove(&DualKey::Knowledge { handle });
        self.stale = true;
        self.partition_stale = true;
        Ok(entry.item)
    }

    /// Replaces the session's Section 6 individual-knowledge set.
    ///
    /// The individual layer is solved by the pseudonym-expanded
    /// [`IndividualEngine`] as one joint system (it has no component
    /// decomposition), so its dirty tracking is a single flag: the next
    /// [`Analyst::refresh`] re-solves it iff this set or the distribution
    /// knowledge changed. While the set is non-empty,
    /// [`Analyst::conditional`] and [`Analyst::batch`] serve from the
    /// person-level estimate and [`Analyst::person_posterior`] becomes
    /// available.
    pub fn set_individuals(&mut self, items: Vec<Knowledge>) -> Result<(), PmError> {
        for item in &items {
            if !item.is_individual() {
                return Err(PmError::InvalidKnowledge {
                    detail: "set_individuals only accepts individual knowledge; \
                             use add_knowledge for distribution knowledge"
                        .into(),
                });
            }
            item.validate()?;
        }
        self.individuals = items;
        self.individuals_stale = true;
        Ok(())
    }

    /// Live knowledge items with their handles, in insertion order.
    #[must_use = "iterating the knowledge set has no side effects"]
    pub fn knowledge(&self) -> impl Iterator<Item = (KnowledgeHandle, &Knowledge)> {
        self.entries.iter().map(|e| (e.handle, &e.item))
    }

    /// Number of live distribution-knowledge items.
    #[must_use]
    pub fn knowledge_len(&self) -> usize {
        self.entries.len()
    }

    /// The bucket footprint recorded for a live handle.
    pub fn footprint(&self, handle: KnowledgeHandle) -> Result<&[usize], PmError> {
        self.entries
            .iter()
            .find(|e| e.handle == handle)
            .map(|e| e.footprint.as_slice())
            .ok_or(PmError::StaleHandle { handle })
    }

    /// Whether deltas are pending (queries serve the pre-delta estimate
    /// until [`Analyst::refresh`]).
    #[must_use]
    pub fn is_stale(&self) -> bool {
        self.stale || self.individuals_stale
    }

    /// Buckets dirtied by the deltas accumulated since the last refresh.
    #[must_use]
    pub fn pending_buckets(&self) -> usize {
        self.dirty.len()
    }

    /// The current partition: the session's own once it diverged, the
    /// artifact's knowledge-free baseline before that.
    fn current_components(&self) -> &[Component] {
        match &self.components {
            Some(c) => c,
            None => self.artifact.baseline_components(),
        }
    }

    /// Components in the current partition.
    #[must_use]
    pub fn num_components(&self) -> usize {
        self.current_components().len()
    }

    /// Statistics of the last refresh.
    #[must_use]
    pub fn last_refresh(&self) -> &RefreshStats {
        &self.last_refresh
    }

    /// Re-solves exactly the components invalidated since the last refresh
    /// and merges them into the served estimate.
    ///
    /// On a component-solve error (infeasible or non-convergent delta,
    /// wrapped in [`PmError::Component`] with the failing component's
    /// index) the session state is untouched: the previous estimate and
    /// partition keep serving, the dirty set is retained, and removing the
    /// offending delta followed by another refresh fully recovers. A
    /// failure in the Section 6 individual layer happens *after* the
    /// component layer merged successfully: the refreshed component
    /// estimate serves, the individual layer stays flagged stale
    /// ([`Analyst::is_stale`]), and the next refresh retries it.
    pub fn refresh(&mut self) -> Result<RefreshStats, PmError> {
        let start = Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds RefreshStats durations, never the estimate bytes")
        let was_stale = self.stale;
        if !self.stale && !self.individuals_stale {
            let stats = RefreshStats {
                components: self.num_components(),
                reused: self.num_components(),
                wall: start.elapsed(),
                ..Default::default()
            };
            self.last_refresh = stats.clone();
            return Ok(stats);
        }

        let artifact = Arc::clone(&self.artifact);
        let index = artifact.term_index();

        // The knowledge tail and the new partition stay local until every
        // dirty solve succeeds, so a failed refresh never changes what
        // `report()` describes.
        let krows: Vec<Constraint>;
        let components: Vec<Component>;
        if self.stale {
            krows = self.build_knowledge_rows();
            // The knowledge rows themselves are cheap to rebuild (O(rules));
            // the whole-table partition is not. A rebase that left every
            // entry bit-unchanged keeps `partition_stale` false, so the
            // steady-state delta path reuses the partition verbatim.
            let cached = if self.partition_stale { None } else { self.components.take() };
            components = match cached {
                Some(c) => c,
                None if self.config.decompose => {
                    knowledge_components(&krows, artifact.num_invariants(), index)
                }
                // One pseudo-component holding everything; knowledge rows
                // all attach to it (no incrementality without Section 5.5).
                None => vec![Component {
                    buckets: (0..artifact.table().num_buckets()).collect(),
                    knowledge_rows: (0..krows.len())
                        .map(|i| artifact.num_invariants() + i)
                        .collect(),
                }],
            };
            self.partition_stale = false;
        } else {
            // Only the individual layer is stale: keep the partition.
            krows = Vec::new();
            components = match self.components.take() {
                Some(c) => c,
                None => artifact.baseline_components().to_vec(),
            };
        }
        let rows = artifact.rows(&krows);

        // Dirty = contains a bucket some delta touched. Everything else is
        // provably unchanged (see the module docs) and reused verbatim.
        let mut dirty_closed: Vec<usize> = Vec::new();
        let mut dirty_numeric: Vec<usize> = Vec::new();
        for (i, comp) in components.iter().enumerate() {
            if !comp.buckets.iter().any(|b| self.dirty.contains(b)) {
                continue;
            }
            if comp.is_irrelevant() && self.config.decompose {
                dirty_closed.push(i);
            } else {
                dirty_numeric.push(i);
            }
        }

        // Re-solve dirty numeric components on the worker pool (dirty-set
        // scheduling). Tiny components are fused into batches sized by the
        // cost model ([`EngineConfig::batch_min_cost`]) so per-task
        // dispatch overhead — result slot, closure call, cache migration —
        // amortises across real solver work; each worker carries ONE
        // scratch arena across every component it solves. Mirrors the
        // historical engine: an abort flag skips still-queued work once one
        // component fails, and the earliest-indexed observed failure is
        // reported.
        let config = &self.config;
        let table = artifact.table();
        let entries = &self.entries;
        let dual_cache = &self.dual_cache;
        let warm_fn = move |ci: usize| -> f64 {
            dual_key(&rows.get(ci).origin, entries)
                .and_then(|k| dual_cache.get(&k).copied())
                .unwrap_or(0.0)
        };
        let warm: Option<&(dyn Fn(usize) -> f64 + Sync)> =
            if config.warm_start { Some(&warm_fn) } else { None };

        let costs: Vec<u64> = dirty_numeric
            .iter()
            .map(|&ci| batch::component_cost(index, rows, &components[ci]))
            .collect();
        let batches = batch::plan_batches(&dirty_numeric, &costs, config.batch_min_cost);
        let failed = AtomicBool::new(false);
        let solved = pm_parallel::map_chunked_with(
            config.threads,
            1,
            &batches,
            SolveScratch::default,
            |scratch, _, batch| {
                batch
                    .iter()
                    .map(|&ci| {
                        if failed.load(Ordering::Relaxed) {
                            return None; // skipped: another component already failed
                        }
                        let result = solve_component(
                            config,
                            table,
                            index,
                            rows,
                            &components[ci],
                            warm,
                            scratch,
                        );
                        if result.is_err() {
                            failed.store(true, Ordering::Relaxed);
                        }
                        Some((ci, result))
                    })
                    .collect::<Vec<_>>()
            },
        );
        let mut solutions: Vec<(usize, ComponentSolution)> =
            Vec::with_capacity(dirty_numeric.len());
        // Batches concatenate to `dirty_numeric` verbatim, so this scan
        // visits components in canonical order — the earliest-indexed
        // failure wins, exactly as with one-task-per-component dispatch.
        for slot in solved.into_iter().flatten() {
            match slot {
                Some((ci, Ok(sol))) => solutions.push((ci, sol)),
                // Earliest-indexed observed failure; no state was merged,
                // so removing the offending delta and refreshing recovers.
                Some((ci, Err(e))) => {
                    return Err(PmError::Component { index: ci, source: Box::new(e) })
                }
                // Skipped slot: the error that caused it is later in the
                // scan and is returned there.
                None => {}
            }
        }
        debug_assert!(
            !failed.load(Ordering::Relaxed),
            "abort flag set but no error surfaced"
        );

        // --- Merge; only reached when every dirty solve succeeded. ---
        // Dirty irrelevant components revert to the artifact's Theorem 5
        // baseline: dropping the overlay entry *is* the closed form. A
        // one-shot shell has no baseline, so it materialises the closed
        // form into the overlay instead (identical values either way).
        for &i in &dirty_closed {
            for &b in &components[i].buckets {
                if artifact.has_baseline() {
                    self.overlay.remove(b);
                } else {
                    self.overlay.insert(b, &uniform_bucket_values(table, index, b));
                }
            }
        }
        let mut estats = EngineStats {
            num_components: components.len(),
            num_irrelevant: if self.config.decompose {
                components.iter().filter(|c| c.is_irrelevant()).count()
            } else {
                0
            },
            ..Default::default()
        };
        let mut warm_started = 0usize;
        for (ci, sol) in solutions {
            if sol.warm_seeded {
                warm_started += 1;
            }
            estats.num_constraints += sol.num_constraints;
            estats.num_free_terms += sol.num_free_terms;
            // A component's local term space is the concatenation of its
            // buckets' ranges, so the solution splits into per-bucket
            // overlay slices by range length.
            let mut offset = 0usize;
            for &b in &components[ci].buckets {
                let len = index.bucket_range(b).len();
                self.overlay.insert(b, &sol.values[offset..offset + len]);
                offset += len;
            }
            debug_assert_eq!(offset, sol.values.len(), "component terms must cover buckets");
            // No key collisions here: the only rows sharing an origin are
            // the per-bucket splits of a separable zero rule, and those
            // have rhs = 0, so preprocessing always eliminates them before
            // the solver — they never appear among surviving duals.
            for &(ri, lam) in &sol.duals {
                if let Some(key) = dual_key(&rows.get(ri).origin, &self.entries) {
                    self.dual_cache.insert(key, lam);
                }
            }
            if let Some(s) = sol.stats {
                estats.component_stats.push(s);
            }
        }

        let resolved = dirty_numeric.len();
        let closed_form = dirty_closed.len();
        let reused = components.len() - resolved - closed_form;
        self.components = Some(components);
        self.dirty.clear();
        self.stale = false;

        estats.total_elapsed = start.elapsed();
        let solver = estats.solver_elapsed();
        self.estimate = Arc::new(self.assemble_estimate(estats));

        // --- Individual layer (Section 6): one joint system on top. ---
        let individual_resolve = if self.individuals.is_empty() {
            self.person = None;
            self.individuals_stale = false;
            false
        } else if self.individuals_stale || was_stale {
            // Mark pending *before* the fallible solve: the component layer
            // above already merged, so on failure the session keeps serving
            // it, stays flagged stale, and the next refresh retries this
            // layer alone.
            self.individuals_stale = true;
            let mut kb = KnowledgeBase::new();
            for e in &self.entries {
                kb.push(e.item.clone())?;
            }
            for item in &self.individuals {
                kb.push(item.clone())?;
            }
            let engine = IndividualEngine {
                tolerance: self.config.tolerance,
                max_iterations: self.config.max_iterations,
            };
            self.person = Some(engine.estimate(self.artifact.table(), &kb)?);
            self.individuals_stale = false;
            true
        } else {
            false
        };

        let stats = RefreshStats {
            components: self.num_components(),
            dirty: resolved + closed_form,
            resolved,
            closed_form,
            reused,
            warm_started,
            individual_resolve,
            wall: start.elapsed(),
            solver,
        };
        self.last_refresh = stats.clone();
        Ok(stats)
    }

    /// The current merged estimate (as of the last successful refresh).
    #[must_use]
    pub fn estimate(&self) -> &Estimate {
        &self.estimate
    }

    /// The current estimate as a cheap `Arc` snapshot. The snapshot is
    /// immutable and stays consistent while the session refreshes
    /// underneath — hand it to query threads so serving never blocks on
    /// (or races with) a refresh.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Estimate> {
        Arc::clone(&self.estimate)
    }

    /// Consumes the session, returning the current estimate.
    #[must_use]
    pub fn into_estimate(self) -> Estimate {
        Arc::try_unwrap(self.estimate).unwrap_or_else(|shared| (*shared).clone())
    }

    /// `P*(s | q)` from the current estimate — the person-level one when
    /// individual knowledge is set, the component-level one otherwise.
    /// No recompute; deltas pending since the last refresh are not
    /// reflected (see [`Analyst::is_stale`]).
    #[must_use]
    pub fn conditional(&self, q: QiId, s: Value) -> f64 {
        match &self.person {
            Some(p) => p.conditional(q, s),
            None => self.estimate.conditional(q, s),
        }
    }

    /// [`Analyst::conditional`] for a batch of `(q, s)` queries.
    #[must_use]
    pub fn batch(&self, queries: &[(QiId, Value)]) -> Vec<f64> {
        queries.iter().map(|&(q, s)| self.conditional(q, s)).collect()
    }

    /// The posterior SA distribution of pseudonym `i`, when individual
    /// knowledge is set (`None` otherwise).
    #[must_use]
    pub fn person_posterior(&self, i: PseudonymId) -> Option<Vec<f64>> {
        self.person.as_ref().map(|p| p.person_posterior(i))
    }

    /// Privacy scores of the current estimate plus session shape.
    #[must_use]
    pub fn report(&self) -> AnalystReport {
        AnalystReport {
            knowledge_items: self.entries.len(),
            individual_items: self.individuals.len(),
            components: self.num_components(),
            pending_deltas: self.is_stale(),
            max_disclosure: metrics::max_disclosure(&self.estimate),
            effective_l_diversity: metrics::effective_l_diversity(&self.estimate),
            min_conditional_entropy: metrics::min_conditional_entropy(&self.estimate),
            last_refresh: self.last_refresh.clone(),
        }
    }

    /// The knowledge tail of the virtual row list, rebuilt from the live
    /// entries: origins re-indexed to current positions, with the
    /// separable-zero-row split the one-shot engine applies (only under
    /// decomposition, as there).
    fn build_knowledge_rows(&self) -> Vec<Constraint> {
        let krows: Vec<Constraint> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| Constraint {
                coeffs: e.coeffs.clone(),
                rhs: e.rhs,
                origin: ConstraintOrigin::Knowledge { index: i },
            })
            .collect();
        if self.config.decompose {
            split_separable_knowledge(krows, self.artifact.term_index())
        } else {
            krows
        }
    }

    /// Materialises the served estimate: per bucket, the session's overlay
    /// slice if it has one, the artifact's baseline otherwise — all in
    /// count space — then one `÷ N` into probability space. Gathering per
    /// bucket (instead of scattering over a global baseline vector) is what
    /// lets the artifact advance epochs without ever materialising a
    /// full-table baseline.
    fn assemble_estimate(&self, stats: EngineStats) -> Estimate {
        let index = self.artifact.index_arc();
        let table = self.artifact.table();
        debug_assert_eq!(
            self.overlay.epoch(),
            self.artifact.epoch(),
            "overlay slot layout must be rebased onto the served epoch"
        );
        let mut values = vec![0.0; index.len()];
        for b in 0..table.num_buckets() {
            let range = index.bucket_range(b);
            match self.overlay.get(b) {
                Some(slice) => values[range].copy_from_slice(slice),
                None => {
                    let baseline = self.artifact.bucket_baseline(b);
                    debug_assert!(
                        baseline.len() == range.len(),
                        "bucket {b} has neither overlay nor baseline values"
                    );
                    values[range].copy_from_slice(baseline);
                }
            }
        }
        crate::engine::counts_to_probabilities(&mut values, table);
        Estimate::assemble(
            values,
            Arc::clone(index),
            table,
            self.artifact.epoch(),
            stats,
        )
    }
}

// Compile-time contract: sessions are handed between threads in resident
// deployments; everything here must stay `Send + Sync`.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Analyst>();
    send_sync::<KnowledgeHandle>();
    send_sync::<RefreshStats>();
    send_sync::<AnalystReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pm_anonymize::fixtures::paper_example;

    fn conditional_k(antecedent: Vec<(usize, Value)>, sa: Value, p: f64) -> Knowledge {
        Knowledge::Conditional { antecedent, sa, probability: p }
    }

    /// A fresh session's baseline equals the uniform estimate.
    #[test]
    fn baseline_is_uniform() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        let analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        assert_eq!(analyst.estimate().term_values(), uniform.term_values());
        assert_eq!(analyst.last_refresh().closed_form, 3);
        assert_eq!(analyst.last_refresh().resolved, 0);
        assert!(!analyst.is_stale());
    }

    /// `open` over a shared artifact serves the same baseline, and after
    /// the same deltas arrives at the same bits as `Analyst::new` — from
    /// several sessions over one artifact.
    #[test]
    fn open_matches_new_bitwise() {
        let (_, table) = paper_example();
        let k = conditional_k(vec![(0, 0)], 0, 0.3);
        let mut from_new = Analyst::new(table.clone(), EngineConfig::default()).unwrap();
        let _ = from_new.add_knowledge(k.clone()).unwrap();
        from_new.refresh().unwrap();

        let artifact =
            Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
        for _ in 0..3 {
            let mut session = Analyst::open(Arc::clone(&artifact));
            assert_eq!(
                session.estimate().term_values(),
                artifact.baseline_estimate().term_values()
            );
            let _ = session.add_knowledge(k.clone()).unwrap();
            session.refresh().unwrap();
            assert_eq!(
                session.estimate().term_values(),
                from_new.estimate().term_values()
            );
        }
    }

    /// `open_with` rejects configs the artifact was not built under.
    #[test]
    fn open_with_rejects_artifact_mismatch() {
        let (_, table) = paper_example();
        let artifact =
            Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
        // Per-session knobs are fine.
        let session = Analyst::open_with(
            Arc::clone(&artifact),
            EngineConfig::builder().threads(2).warm_start(true).build(),
        )
        .unwrap();
        assert_eq!(session.config().threads, 2);
        // Artifact-baked knobs are not.
        assert!(matches!(
            Analyst::open_with(
                Arc::clone(&artifact),
                EngineConfig::builder().decompose(false).build(),
            ),
            Err(PmError::ArtifactMismatch { .. })
        ));
        assert!(matches!(
            Analyst::open_with(
                artifact,
                EngineConfig::builder().concise_invariants(false).build(),
            ),
            Err(PmError::ArtifactMismatch { .. })
        ));
        // A decompose = false artifact additionally bakes the solver knobs
        // into its numeric baseline.
        let (_, table) = paper_example();
        let joint = Arc::new(
            CompiledTable::build(
                table,
                EngineConfig::builder().decompose(false).build(),
            )
            .unwrap(),
        );
        assert!(Analyst::open_with(
            Arc::clone(&joint),
            EngineConfig::builder().decompose(false).threads(2).build(),
        )
        .is_ok());
        assert!(matches!(
            Analyst::open_with(
                Arc::clone(&joint),
                EngineConfig::builder().decompose(false).tolerance(1e-4).build(),
            ),
            Err(PmError::ArtifactMismatch { .. })
        ));
        assert!(matches!(
            Analyst::open_with(
                joint,
                EngineConfig::builder()
                    .decompose(false)
                    .solver(crate::engine::SolverKind::Gis)
                    .build(),
            ),
            Err(PmError::ArtifactMismatch { .. })
        ));
    }

    /// Forks evolve independently: the parent is unaffected by the fork's
    /// deltas and vice versa, pre-fork handles work in both, and each side
    /// matches a from-scratch solve of its own knowledge set.
    #[test]
    fn forks_are_independent_what_ifs() {
        let (_, table) = paper_example();
        let base = conditional_k(vec![(0, 0)], 0, 0.3);
        let whatif = conditional_k(vec![(1, 0)], 3, 0.4);

        let mut parent = Analyst::new(table.clone(), EngineConfig::default()).unwrap();
        let base_handle = parent.add_knowledge(base.clone()).unwrap();
        parent.refresh().unwrap();
        let parent_bits = parent.estimate().term_values().to_vec();

        // Fork, apply a speculative delta, refresh — parent unchanged.
        let mut fork = parent.fork();
        let _ = fork.add_knowledge(whatif.clone()).unwrap();
        fork.refresh().unwrap();
        assert_eq!(parent.estimate().term_values(), parent_bits.as_slice());
        assert_ne!(fork.estimate().term_values(), parent_bits.as_slice());

        // The fork matches a from-scratch solve of base + whatif.
        let mut kb = KnowledgeBase::new();
        kb.push(base).unwrap();
        kb.push(whatif).unwrap();
        let scratch = Engine::default().estimate(&table, &kb).unwrap();
        assert_eq!(fork.estimate().term_values(), scratch.term_values());

        // A pre-fork handle is live in the fork too; retracting it there
        // does not retract it in the parent.
        fork.remove_knowledge(base_handle).unwrap();
        fork.refresh().unwrap();
        assert_eq!(parent.knowledge_len(), 1);
        assert!(parent.footprint(base_handle).is_ok());

        // And the parent can keep evolving without disturbing the fork.
        parent.remove_knowledge(base_handle).unwrap();
        parent.refresh().unwrap();
        let uniform = Engine::uniform_estimate(&table);
        assert_eq!(parent.estimate().term_values(), uniform.term_values());
    }

    /// Snapshots are immutable views: a refresh replaces the session's
    /// estimate without touching outstanding snapshots.
    #[test]
    fn snapshots_survive_refreshes() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let before = analyst.snapshot();
        let before_bits = before.term_values().to_vec();
        let _ = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.refresh().unwrap();
        // The old snapshot still serves the pre-refresh bits…
        assert_eq!(before.term_values(), before_bits.as_slice());
        // …while the session (and new snapshots) serve the new ones.
        assert_ne!(analyst.snapshot().term_values(), before_bits.as_slice());
    }

    /// Incremental adds arrive at the same bits as one-shot estimates with
    /// the same final knowledge set.
    #[test]
    fn incremental_matches_one_shot_bitwise() {
        let (_, table) = paper_example();
        let k1 = conditional_k(vec![(0, 0)], 0, 0.3); // P(flu | male) = 0.3
        let k2 = conditional_k(vec![(1, 0)], 3, 0.4); // P(hiv | college) = 0.4
        let mut kb = KnowledgeBase::new();
        kb.push(k1.clone()).unwrap();
        kb.push(k2.clone()).unwrap();
        let one_shot = Engine::default().estimate(&table, &kb).unwrap();

        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let _ = analyst.add_knowledge(k1).unwrap();
        analyst.refresh().unwrap();
        let _ = analyst.add_knowledge(k2).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), one_shot.term_values());
        for q in 0..one_shot.distinct_qi() {
            assert_eq!(analyst.estimate().conditional_row(q), one_shot.conditional_row(q));
        }
    }

    /// A delta re-solves only the components its footprint touches.
    #[test]
    fn delta_dirties_only_its_footprint() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        // P(pneumonia | q3) = 0.5 touches buckets 1 and 2 (indices 0, 1);
        // bucket 3 stays clean.
        let h = analyst.add_knowledge(conditional_k(vec![(0, 0), (1, 1)], 1, 0.5)).unwrap();
        assert_eq!(analyst.footprint(h).unwrap(), &[0, 1]);
        assert!(analyst.is_stale());
        let stats = analyst.refresh().unwrap();
        assert_eq!(stats.components, 2, "buckets 1+2 fuse, bucket 3 alone");
        assert_eq!(stats.resolved, 1, "only the fused component re-solves");
        assert_eq!(stats.reused, 1, "bucket 3 is reused verbatim");

        // A second, disjoint delta: P(flu | graduate) = 0.5 lives in
        // bucket 3 only — the fused {1, 2} component must be reused.
        let _ = analyst.add_knowledge(conditional_k(vec![(1, 3)], 0, 0.5)).unwrap();
        let stats = analyst.refresh().unwrap();
        assert_eq!(stats.components, 2);
        assert_eq!(stats.resolved, 1);
        assert_eq!(stats.reused, 1, "the untouched component is not re-solved");
    }

    /// Removing a delta restores the exact previous bits.
    #[test]
    fn remove_restores_previous_bits() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let baseline = analyst.estimate().term_values().to_vec();
        let h = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.refresh().unwrap();
        assert_ne!(analyst.estimate().term_values(), baseline.as_slice());
        let removed = analyst.remove_knowledge(h).unwrap();
        assert_eq!(removed, conditional_k(vec![(0, 0)], 0, 0.3));
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), baseline.as_slice());
        assert_eq!(analyst.knowledge_len(), 0);
    }

    /// Stale handles are rejected, not silently ignored.
    #[test]
    fn stale_handles_error() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let h = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.remove_knowledge(h).unwrap();
        assert!(matches!(
            analyst.remove_knowledge(h),
            Err(PmError::StaleHandle { handle }) if handle == h
        ));
        assert!(matches!(
            analyst.remove_knowledge(KnowledgeHandle::from_id(999)),
            Err(PmError::StaleHandle { .. })
        ));
    }

    /// An infeasible delta fails the refresh with component context, leaves
    /// the session serving the previous estimate, and removing the delta
    /// fully recovers.
    #[test]
    fn infeasible_delta_is_recoverable() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let good = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.refresh().unwrap();
        let expected = analyst.estimate().term_values().to_vec();

        // P(flu | male) = 0 contradicts bucket 1's contents.
        let components_before = analyst.num_components();
        let bad = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.0)).unwrap();
        let err = analyst.refresh().unwrap_err();
        assert!(matches!(err, PmError::Component { .. }), "got {err:?}");
        assert!(
            matches!(
                err.root_cause(),
                PmError::SolverFailed { .. } | PmError::Infeasible { .. }
            ),
            "root cause: {:?}",
            err.root_cause()
        );
        // Queries still serve the pre-delta estimate, and the reported
        // partition is still the one that produced it.
        assert_eq!(analyst.estimate().term_values(), expected.as_slice());
        assert_eq!(analyst.num_components(), components_before);
        assert_eq!(analyst.report().components, components_before);
        assert!(analyst.is_stale());

        analyst.remove_knowledge(bad).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), expected.as_slice());
        let _ = good;
    }

    /// Warm starts converge to the same optimum (within tolerance) as cold
    /// re-solves, and the refresh reports them.
    #[test]
    fn warm_start_matches_within_tolerance() {
        let (_, table) = paper_example();
        let mut cold =
            Analyst::new(table.clone(), EngineConfig::default()).unwrap();
        let mut warm = Analyst::new(
            table,
            EngineConfig::builder().warm_start(true).build(),
        )
        .unwrap();
        for analyst in [&mut cold, &mut warm] {
            let _ = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
            analyst.refresh().unwrap();
            // Second delta re-solves a component whose rows now have cached
            // duals — this is the warm-started path.
            let _ = analyst.add_knowledge(conditional_k(vec![(0, 1)], 1, 0.4)).unwrap();
            analyst.refresh().unwrap();
        }
        assert!(warm.last_refresh().warm_started > 0, "warm path not exercised");
        assert_eq!(cold.last_refresh().warm_started, 0);
        for q in 0..cold.estimate().distinct_qi() {
            for s in 0..cold.estimate().sa_cardinality() as Value {
                let c = cold.conditional(q, s);
                let w = warm.conditional(q, s);
                assert!((c - w).abs() < 1e-6, "q={q} s={s}: cold {c} vs warm {w}");
            }
        }
    }

    /// The individual layer rides on the session: set, query, clear.
    #[test]
    fn individual_layer_on_session() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        assert!(analyst.person_posterior(0).is_none());
        // "Alice (pseudonym 0, a q1 record) has breast cancer with p 0.2".
        analyst
            .set_individuals(vec![Knowledge::IndividualSa {
                pseudonym: 0,
                sa: 2,
                probability: 0.2,
            }])
            .unwrap();
        assert!(analyst.is_stale());
        let stats = analyst.refresh().unwrap();
        assert!(stats.individual_resolve);
        let posterior = analyst.person_posterior(0).expect("individual layer live");
        assert!((posterior.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((posterior[2] - 0.2).abs() < 1e-6, "pinned probability respected");
        // Conditional queries now serve the person-level estimate.
        let q1 = analyst.table().interner().lookup(&[0, 0]).unwrap();
        let row: f64 = (0..5u16).map(|s| analyst.conditional(q1, s)).sum();
        assert!((row - 1.0).abs() < 1e-6);
        // A refresh with nothing stale re-solves nothing.
        let stats = analyst.refresh().unwrap();
        assert!(!stats.individual_resolve);
        assert_eq!(stats.resolved, 0);
        // Clearing the layer restores component-level serving.
        analyst.set_individuals(Vec::new()).unwrap();
        analyst.refresh().unwrap();
        assert!(analyst.person_posterior(0).is_none());
    }

    /// An infeasible individual layer fails the refresh *after* the
    /// component layer merged; the session stays flagged stale and retries
    /// the individual layer on every refresh until it is fixed.
    #[test]
    fn infeasible_individual_layer_is_retried() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        // Alice (pseudonym 0, a q1 record in buckets 1 and 2) "has lung
        // cancer" — but lung cancer only occurs in bucket 3: infeasible.
        analyst
            .set_individuals(vec![Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![4] }])
            .unwrap();
        assert!(analyst.refresh().is_err());
        assert!(analyst.is_stale(), "failed individual solve must stay pending");
        // A second refresh retries (and fails again) instead of silently
        // reporting success with a stale person layer.
        assert!(analyst.refresh().is_err());
        // Clearing the bad layer recovers the session.
        analyst.set_individuals(Vec::new()).unwrap();
        let stats = analyst.refresh().unwrap();
        assert!(!stats.individual_resolve);
        assert!(!analyst.is_stale());
        assert!(analyst.person_posterior(0).is_none());
    }

    /// Distribution knowledge must not sneak in via the individual door,
    /// nor individuals via add_knowledge.
    #[test]
    fn knowledge_kind_doors_are_enforced() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        assert!(matches!(
            analyst.add_knowledge(Knowledge::IndividualSa { pseudonym: 0, sa: 0, probability: 0.5 }),
            Err(PmError::RequiresIndividualEngine)
        ));
        assert!(matches!(
            analyst.set_individuals(vec![conditional_k(vec![(0, 0)], 0, 0.5)]),
            Err(PmError::InvalidKnowledge { .. })
        ));
    }

    /// A session rebases onto the successor epoch: knowledge and overlay
    /// carry forward, only the delta's footprint re-solves, and the result
    /// is bit-identical to building the post-delta table from scratch and
    /// replaying the same knowledge.
    #[test]
    fn rebase_carries_session_across_epochs() {
        use crate::delta::TableDelta;

        let (_, table) = paper_example();
        let e0 = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
        let mut analyst = Analyst::open(Arc::clone(&e0));
        // Footprint {0, 1}: P(pneumonia | q3) = 0.5 fuses buckets 1 and 2.
        let k = conditional_k(vec![(0, 0), (1, 1)], 1, 0.5);
        let _ = analyst.add_knowledge(k.clone()).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.epoch(), 0);
        assert_eq!(analyst.estimate().epoch(), 0);

        // A late arrival lands in bucket 3 — disjoint from the knowledge
        // footprint, and its QI tuple (female, junior) matches no rule.
        let e1 = Arc::new(e0.apply(&TableDelta::new().insert(vec![1, 2], 4, 2)).unwrap());
        let stats = analyst.rebase(&e1).unwrap();
        assert_eq!(stats.epoch, 1);
        assert_eq!(stats.touched_buckets, 1);
        assert_eq!(stats.changed, 0, "the rule's constraint is unchanged");
        assert_eq!(stats.carried, 2, "buckets 1+2 overlay slices carried");
        assert!(analyst.is_stale());

        let refresh = analyst.refresh().unwrap();
        assert_eq!(refresh.closed_form, 1, "only bucket 3 reverts to Theorem 5");
        assert_eq!(refresh.resolved, 0, "the fused component is reused verbatim");
        assert_eq!(refresh.reused, 1);
        assert_eq!(analyst.estimate().epoch(), 1);

        // Bit-identical to a from-scratch build + replay on the new table.
        let mut scratch =
            Analyst::new(e1.table().clone(), EngineConfig::default()).unwrap();
        let _ = scratch.add_knowledge(k).unwrap();
        scratch.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), scratch.estimate().term_values());
    }

    /// A delta intersecting a rule's footprint (or matching its antecedent)
    /// recompiles the rule and re-solves its component — still bit-identical
    /// to from-scratch.
    #[test]
    fn rebase_recompiles_affected_rules() {
        use crate::delta::TableDelta;

        let (_, table) = paper_example();
        let e0 = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
        let mut analyst = Analyst::open(Arc::clone(&e0));
        // P(flu | male) = 0.3 — matches every male record.
        let k = conditional_k(vec![(0, 0)], 0, 0.3);
        let _ = analyst.add_knowledge(k.clone()).unwrap();
        analyst.refresh().unwrap();

        // Insert another (male, college) flu into bucket 1: the rule's
        // matching count and coefficient set both change.
        let e1 = Arc::new(e0.apply(&TableDelta::new().insert(vec![0, 0], 0, 0)).unwrap());
        let stats = analyst.rebase(&e1).unwrap();
        assert_eq!(stats.recompiled, 1);
        assert_eq!(stats.changed, 1);
        let refresh = analyst.refresh().unwrap();
        assert!(refresh.resolved >= 1, "the rule's component re-solves");

        let mut scratch =
            Analyst::new(e1.table().clone(), EngineConfig::default()).unwrap();
        let _ = scratch.add_knowledge(k).unwrap();
        scratch.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), scratch.estimate().term_values());
    }

    /// Rebase targets must be the direct successor epoch — wrong lineage,
    /// skipped epochs and backwards rebases all fail with
    /// [`PmError::EpochMismatch`], leaving the session untouched.
    #[test]
    fn rebase_rejects_epoch_mismatch() {
        use crate::delta::TableDelta;

        let (_, table) = paper_example();
        let e0 = Arc::new(CompiledTable::build(table.clone(), EngineConfig::default()).unwrap());
        let e1 = Arc::new(e0.apply(&TableDelta::new().insert(vec![0, 0], 0, 0)).unwrap());
        let e2 = Arc::new(e1.apply(&TableDelta::new().insert(vec![0, 0], 0, 1)).unwrap());
        let other = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());

        let mut analyst = Analyst::open(Arc::clone(&e0));
        // Skipping e1 is rejected…
        assert!(matches!(
            analyst.rebase(&e2),
            Err(PmError::EpochMismatch { session_epoch: 0, artifact_epoch: 2, .. })
        ));
        // …as is a different lineage (even at the right epoch distance)…
        let other1 = Arc::new(other.apply(&TableDelta::new()).unwrap());
        assert!(matches!(analyst.rebase(&other1), Err(PmError::EpochMismatch { .. })));
        assert_eq!(analyst.epoch(), 0, "failed rebases leave the session pinned");
        // …as is the epoch-2 child of a *sibling* branch once the session
        // sits at epoch 1 (numerically one ahead, but the wrong parent)…
        analyst.rebase(&e1).unwrap();
        let sibling = Arc::new(e0.apply(&TableDelta::new().insert(vec![0, 0], 0, 2)).unwrap());
        let nephew = Arc::new(sibling.apply(&TableDelta::new()).unwrap());
        assert_eq!(nephew.epoch(), analyst.epoch() + 1);
        assert!(matches!(analyst.rebase(&nephew), Err(PmError::EpochMismatch { .. })));
        // …while stepping through each epoch in order works, and going
        // backwards is rejected again.
        analyst.rebase(&e2).unwrap();
        assert_eq!(analyst.epoch(), 2);
        assert!(matches!(analyst.rebase(&e1), Err(PmError::EpochMismatch { .. })));
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().epoch(), 2);
    }

    /// A rebase that invalidates a rule (its last matching record was
    /// retracted) fails atomically; removing the rule recovers.
    #[test]
    fn rebase_survives_unmatchable_rules() {
        use crate::delta::TableDelta;

        let (_, table) = paper_example();
        // Pick a QI symbol that lives only in bucket 3 and pin a rule on
        // its exact tuple, then retract its every occurrence (pairing each
        // with some SA occurrence of the bucket — the multisets are all the
        // table can verify anyway).
        let only_b2 = table
            .bucket(2)
            .qi_counts()
            .iter()
            .map(|&(q, _)| q)
            .find(|&q| table.buckets_with_qi(q) == vec![2])
            .expect("some bucket-3 symbol is exclusive to it");
        let tuple = table.interner().tuple(only_b2).to_vec();
        let antecedent: Vec<(usize, Value)> =
            tuple.iter().enumerate().map(|(p, &v)| (p, v)).collect();
        let sa_pool: Vec<Value> = table
            .bucket(2)
            .sa_counts()
            .iter()
            .flat_map(|&(s, c)| std::iter::repeat_n(s, c))
            .collect();
        let count = table.bucket(2).qi_multiplicity(only_b2);
        let mut delta = TableDelta::new();
        for sa in &sa_pool[..count] {
            delta = delta.retract(tuple.clone(), *sa, 2);
        }

        let e0 = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
        let mut analyst = Analyst::open(Arc::clone(&e0));
        let h = analyst.add_knowledge(conditional_k(antecedent, sa_pool[0], 0.5)).unwrap();
        analyst.refresh().unwrap();
        let served = analyst.estimate().term_values().to_vec();

        let e1 = Arc::new(e0.apply(&delta).unwrap());
        let err = analyst.rebase(&e1).unwrap_err();
        assert!(matches!(err, PmError::InvalidKnowledge { .. }), "got {err:?}");
        // Atomic: still pinned to epoch 0, still serving the old bits.
        assert_eq!(analyst.epoch(), 0);
        assert_eq!(analyst.estimate().term_values(), served.as_slice());

        // Removing the now-unmatchable rule lets the rebase through.
        analyst.remove_knowledge(h).unwrap();
        analyst.rebase(&e1).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.epoch(), 1);
    }

    /// Pseudonym ids are count-derived, so while individual knowledge is
    /// set, rebase refuses count-shifting deltas (insert/retract) but
    /// allows pure moves, whose individual layer re-solves on refresh.
    #[test]
    fn rebase_guards_individual_pseudonyms() {
        use crate::delta::TableDelta;

        let (_, table) = paper_example();
        let e0 = Arc::new(CompiledTable::build(table, EngineConfig::default()).unwrap());
        let mut analyst = Analyst::open(Arc::clone(&e0));
        analyst
            .set_individuals(vec![Knowledge::IndividualSa {
                pseudonym: 0,
                sa: 2,
                probability: 0.2,
            }])
            .unwrap();
        analyst.refresh().unwrap();

        // Inserts shift the pseudonym ranges: refused while individuals
        // are set.
        let e1 = Arc::new(e0.apply(&TableDelta::new().insert(vec![0, 0], 0, 0)).unwrap());
        assert!(matches!(
            analyst.rebase(&e1),
            Err(PmError::InvalidKnowledge { .. })
        ));
        assert_eq!(analyst.epoch(), 0, "refused rebase leaves the session pinned");

        // A move keeps every count (and so every pseudonym) intact: the
        // rebase goes through and the individual layer re-solves.
        let e1m = Arc::new(
            e0.apply(&TableDelta::new().move_record(vec![0, 0], 0, 0, 1)).unwrap(),
        );
        analyst.rebase(&e1m).unwrap();
        let stats = analyst.refresh().unwrap();
        assert!(stats.individual_resolve, "table change re-solves the person layer");
        let posterior = analyst.person_posterior(0).expect("individual layer live");
        assert!((posterior[2] - 0.2).abs() < 1e-6, "pinned probability respected");

        // Clearing the individual set unblocks count-shifting deltas.
        analyst.set_individuals(Vec::new()).unwrap();
        analyst.refresh().unwrap();
        let e2 = Arc::new(e1m.apply(&TableDelta::new().insert(vec![0, 0], 0, 0)).unwrap());
        analyst.rebase(&e2).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.epoch(), 2);
    }

    /// Queries and reports serve without recompute, and flag staleness.
    #[test]
    fn report_reflects_session_shape() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let q2 = analyst.table().interner().lookup(&[1, 0]).unwrap();
        let _ = analyst
            .add_knowledge(conditional_k(vec![(0, 0)], 2, 0.0)) // P(bc | male) = 0
            .unwrap();
        let before = analyst.report();
        assert!(before.pending_deltas, "delta not refreshed yet");
        analyst.refresh().unwrap();
        let after = analyst.report();
        assert!(!after.pending_deltas);
        assert_eq!(after.knowledge_items, 1);
        assert!(after.max_disclosure > before.max_disclosure, "knowledge leaks");
        assert!((after.max_disclosure - 1.0).abs() < 1e-6, "Grace (q4) fully disclosed");
        // Cathy (q2) holds bucket 1's breast cancer with certainty, but she
        // also appears in bucket 3, so her marginal P(bc | q2) is 1/2.
        assert!((analyst.conditional(q2, 2) - 0.5).abs() < 1e-6, "Cathy half disclosed");
        let batch = analyst.batch(&[(q2, 2), (q2, 0)]);
        assert_eq!(batch.len(), 2);
        assert!((batch[0] - 0.5).abs() < 1e-6);
        assert!(!format!("{after}").is_empty());
    }
}
