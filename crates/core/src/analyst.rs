//! The resident [`Analyst`] session: incremental knowledge deltas with
//! component-level dirty tracking and warm-started re-solves.
//!
//! The one-shot [`crate::engine::Engine::estimate`] recompiles invariants,
//! re-partitions and re-solves every component from scratch on each call.
//! A resident deployment evolves the *adversary model* rule-by-rule over a
//! fixed published table ("what if the attacker also learns X?"), so almost
//! all of that work is identical between consecutive calls. The session API
//! amortises it:
//!
//! * [`Analyst::new`] compiles the D'-invariants, builds the term index and
//!   the QI→bucket inverted index once, and solves the knowledge-free
//!   baseline (all components irrelevant → Theorem 5 closed form).
//! * [`Analyst::add_knowledge`] / [`Analyst::remove_knowledge`] compile the
//!   delta eagerly, record its **bucket footprint** (the buckets its
//!   constraint touches), mark those buckets dirty, and return a stable
//!   [`KnowledgeHandle`]. Nothing is re-solved yet.
//! * [`Analyst::refresh`] re-partitions (cheap: union-find over buckets)
//!   and re-solves **only the components containing a dirty bucket**. Clean
//!   components keep their term values verbatim; dirty irrelevant
//!   components refill from the Theorem 5 closed form; dirty relevant
//!   components re-solve on the `pm-parallel` pool — optionally
//!   warm-started from the previous refresh's dual vectors
//!   ([`crate::engine::EngineConfig::warm_start`]).
//! * [`Analyst::conditional`], [`Analyst::batch`] and [`Analyst::report`]
//!   serve queries from the merged current [`Estimate`] without any
//!   recompute.
//!
//! # Why component-granular invalidation is sound
//!
//! Section 5.5 of the paper proves the constraint system decomposes into
//! independent subproblems along bucket connected components: a constraint
//! only couples the buckets its terms live in, so the maxent optimum of the
//! whole system restricted to one component equals the optimum of that
//! component solved alone. A knowledge delta can therefore only change the
//! optimum of components it touches — and "touches" is exactly the delta's
//! bucket footprint. Components disjoint from every footprint since the
//! last refresh see an unchanged constraint system (any rule attached to
//! them touches only their buckets, and no such rule was added or removed),
//! so their previous solution *is* their current optimum and is reused
//! bit-for-bit. Component merges and splits are covered by the same
//! argument: a merge is caused by an added rule whose footprint lies in the
//! merged component, a split by a removed rule whose footprint lies in all
//! resulting parts — either way the affected components contain dirty
//! buckets and re-solve.
//!
//! # Determinism
//!
//! With [`EngineConfig::warm_start`] off (the default), a refresh is
//! **bit-identical** to a from-scratch [`Engine::estimate`] holding the
//! same final knowledge set (in the same insertion order), for every thread
//! count: clean components are reused verbatim and dirty ones re-solve the
//! identical cold-started local system. Warm starts converge to the same
//! optimum within tolerance but along a different path, so low-order bits
//! differ — opt in when serving latency matters more than replayability.
//!
//! [`Engine::estimate`]: crate::engine::Engine::estimate
//! [`EngineConfig::warm_start`]: crate::engine::EngineConfig::warm_start

use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::published::PublishedTable;
use pm_anonymize::pseudonym::PseudonymId;
use pm_assoc::rule::AssociationRule;
use pm_microdata::qi::QiId;
use pm_microdata::schema::Schema;
use pm_microdata::value::Value;

use crate::compile::{compile_items_parallel, qi_bucket_index};
use crate::constraint::{Constraint, ConstraintOrigin};
use crate::engine::{
    fill_uniform, solve_component, ComponentSolution, EngineConfig, EngineStats, Estimate,
};
use crate::error::PmError;
use crate::individuals::{IndividualEngine, PersonEstimate};
use crate::invariants::data_invariants;
use crate::knowledge::{Knowledge, KnowledgeBase};
use crate::metrics;
use crate::partition::{connected_components, split_separable_knowledge, Component};
use crate::terms::TermIndex;

/// Stable identifier of one knowledge item inside an [`Analyst`] session.
///
/// Handles are never reused within a session, survive removals of other
/// items, and index nothing directly — they are looked up, so a stale
/// handle yields [`PmError::StaleHandle`] instead of touching the wrong
/// rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KnowledgeHandle(u64);

impl KnowledgeHandle {
    /// The raw id (for serialising sessions, e.g. the CLI's scripted mode).
    pub fn id(self) -> u64 {
        self.0
    }

    /// Reconstructs a handle from [`KnowledgeHandle::id`]. Forged ids are
    /// harmless: operations on a handle the session never issued return
    /// [`PmError::StaleHandle`].
    pub fn from_id(id: u64) -> Self {
        Self(id)
    }
}

impl fmt::Display for KnowledgeHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// What one [`Analyst::refresh`] actually did.
#[derive(Debug, Clone, Default)]
pub struct RefreshStats {
    /// Components in the current partition.
    pub components: usize,
    /// Components invalidated by the accumulated deltas.
    pub dirty: usize,
    /// Dirty components re-solved numerically.
    pub resolved: usize,
    /// Dirty irrelevant components refilled via the Theorem 5 closed form.
    pub closed_form: usize,
    /// Clean components whose previous solution was reused verbatim.
    pub reused: usize,
    /// Numeric re-solves that started from a non-zero cached dual
    /// (always 0 with [`EngineConfig::warm_start`] off).
    pub warm_started: usize,
    /// Whether the Section 6 individual layer was re-solved.
    pub individual_resolve: bool,
    /// Wall time of the whole refresh.
    pub wall: Duration,
    /// Summed solver time of the numeric re-solves.
    pub solver: Duration,
}

/// Session snapshot served by [`Analyst::report`] — privacy scores of the
/// current estimate plus the shape of the last refresh. No recompute: the
/// metrics fold over the already-merged conditional table.
#[derive(Debug, Clone)]
pub struct AnalystReport {
    /// Live distribution-knowledge items.
    pub knowledge_items: usize,
    /// Individual-knowledge items ([`Analyst::set_individuals`]).
    pub individual_items: usize,
    /// Components in the current partition.
    pub components: usize,
    /// Whether deltas are pending (queries serve the pre-delta estimate
    /// until the next [`Analyst::refresh`]).
    pub pending_deltas: bool,
    /// `max_{q,s} P*(s | q)` of the current estimate.
    pub max_disclosure: f64,
    /// `1 / max_disclosure`.
    pub effective_l_diversity: f64,
    /// `min_q H(S | Q = q)` in nats.
    pub min_conditional_entropy: f64,
    /// The last refresh's statistics.
    pub last_refresh: RefreshStats,
}

impl fmt::Display for AnalystReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "session: {} knowledge item(s){}, {} component(s){}",
            self.knowledge_items,
            if self.individual_items > 0 {
                format!(" + {} individual", self.individual_items)
            } else {
                String::new()
            },
            self.components,
            if self.pending_deltas { " [deltas pending]" } else { "" },
        )?;
        writeln!(
            f,
            "last refresh: {} re-solved, {} closed-form, {} reused in {:.3} ms",
            self.last_refresh.resolved,
            self.last_refresh.closed_form,
            self.last_refresh.reused,
            self.last_refresh.wall.as_secs_f64() * 1e3,
        )?;
        write!(
            f,
            "max disclosure {:.4} | effective l-diversity {:.3} | min H(S|q) {:.4} nats",
            self.max_disclosure, self.effective_l_diversity, self.min_conditional_entropy,
        )
    }
}

/// One live knowledge item: the compiled constraint plus its bucket
/// footprint — the session's invalidation unit.
struct KnowledgeEntry {
    handle: KnowledgeHandle,
    item: Knowledge,
    /// Compiled constraint coefficients over global term ids (origin is
    /// re-indexed per refresh, so only coefficients and target are cached).
    coeffs: Vec<(usize, f64)>,
    rhs: f64,
    /// Buckets the constraint touches, ascending and deduplicated.
    footprint: Vec<usize>,
}

/// Identity of a dual variable across refreshes, for warm starts. Invariant
/// rows are identified by their bucket-local origin, knowledge rows by the
/// stable handle (their positional index shifts as items come and go).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum DualKey {
    Qi { q: QiId, b: usize },
    Sa { s: Value, b: usize },
    Knowledge { handle: KnowledgeHandle },
}

fn dual_key(origin: &ConstraintOrigin, entries: &[KnowledgeEntry]) -> Option<DualKey> {
    match *origin {
        ConstraintOrigin::QiInvariant { q, b } => Some(DualKey::Qi { q, b }),
        ConstraintOrigin::SaInvariant { s, b } => Some(DualKey::Sa { s, b }),
        ConstraintOrigin::Knowledge { index } => {
            entries.get(index).map(|e| DualKey::Knowledge { handle: e.handle })
        }
    }
}

/// A long-lived Privacy-MaxEnt session over one published table.
///
/// See the [module docs](self) for the lifecycle and the soundness
/// argument. The one-shot [`crate::engine::Engine::estimate`] is a thin
/// wrapper over this type.
#[derive(Debug)]
pub struct Analyst {
    table: PublishedTable,
    config: EngineConfig,
    index: Arc<TermIndex>,
    /// Invariant rows (fixed for the session) followed by the current
    /// knowledge rows; [`Analyst::rebuild_rows`] rewrites only the tail.
    rows: Vec<Constraint>,
    num_invariants: usize,
    /// Per-bucket indices into the invariant prefix of `rows`.
    bucket_invariants: Vec<Vec<usize>>,
    /// QI symbol → buckets containing it, hoisted once for compilation.
    qi_buckets: Vec<Vec<usize>>,
    entries: Vec<KnowledgeEntry>,
    next_handle: u64,
    /// Buckets touched by deltas since the last successful refresh.
    dirty: BTreeSet<usize>,
    /// Whether the knowledge set changed since the last refresh.
    stale: bool,
    components: Vec<Component>,
    /// Current merged term values (probability space).
    values: Vec<f64>,
    estimate: Estimate,
    /// Dual vectors of the last refresh, by row identity (warm starts).
    dual_cache: HashMap<DualKey, f64>,
    individuals: Vec<Knowledge>,
    individuals_stale: bool,
    person: Option<PersonEstimate>,
    last_refresh: RefreshStats,
}

impl fmt::Debug for KnowledgeEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KnowledgeEntry")
            .field("handle", &self.handle)
            .field("item", &self.item)
            .field("footprint", &self.footprint)
            .finish_non_exhaustive()
    }
}

impl Analyst {
    /// Opens a session: builds the term index, compiles the D'-invariants
    /// and the QI→bucket inverted index, and solves the knowledge-free
    /// baseline (uniform within buckets, Theorem 5).
    ///
    /// The only fallible part is the baseline solve, and only when
    /// [`EngineConfig::decompose`] is off (the joint invariant system then
    /// goes through the numeric solver instead of the closed form).
    pub fn new(table: PublishedTable, config: EngineConfig) -> Result<Self, PmError> {
        let mut analyst = Self::new_deferred(table, config);
        analyst.refresh()?;
        Ok(analyst)
    }

    /// [`Analyst::new`] without the baseline refresh — every bucket starts
    /// dirty and `estimate` is a zero placeholder until the first
    /// [`Analyst::refresh`]. This is the one-shot `Engine::estimate` path:
    /// it skips the baseline solve the immediate full refresh would
    /// discard.
    pub(crate) fn new_deferred(table: PublishedTable, config: EngineConfig) -> Self {
        let index = Arc::new(TermIndex::build(&table));
        let rows = data_invariants(&table, &index, config.concise_invariants);
        let num_invariants = rows.len();
        let mut bucket_invariants: Vec<Vec<usize>> = vec![Vec::new(); table.num_buckets()];
        for (i, c) in rows.iter().enumerate() {
            match c.origin {
                ConstraintOrigin::QiInvariant { b, .. }
                | ConstraintOrigin::SaInvariant { b, .. } => bucket_invariants[b].push(i),
                ConstraintOrigin::Knowledge { .. } => {}
            }
        }
        let qi_buckets = qi_bucket_index(&table);
        let values = vec![0.0; index.len()];
        let estimate =
            Estimate::assemble(values.clone(), Arc::clone(&index), &table, EngineStats::default());
        let dirty: BTreeSet<usize> = (0..table.num_buckets()).collect();
        Self {
            table,
            config,
            index,
            rows,
            num_invariants,
            bucket_invariants,
            qi_buckets,
            entries: Vec::new(),
            next_handle: 0,
            dirty,
            stale: true,
            components: Vec::new(),
            values,
            estimate,
            dual_cache: HashMap::new(),
            individuals: Vec::new(),
            individuals_stale: false,
            person: None,
            last_refresh: RefreshStats::default(),
        }
    }

    /// The published table this session serves.
    pub fn table(&self) -> &PublishedTable {
        &self.table
    }

    /// The engine configuration the session was opened with.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Adds one piece of distribution knowledge, compiling it eagerly and
    /// dirtying the components its bucket footprint touches. Returns a
    /// stable handle for later [`Analyst::remove_knowledge`].
    ///
    /// Individual knowledge (Section 6) goes through
    /// [`Analyst::set_individuals`]; passing it here returns
    /// [`PmError::RequiresIndividualEngine`].
    pub fn add_knowledge(&mut self, item: Knowledge) -> Result<KnowledgeHandle, PmError> {
        let handles = self.add_knowledge_batch(std::slice::from_ref(&item))?;
        Ok(handles[0])
    }

    /// [`Analyst::add_knowledge`] for a whole batch: items compile in
    /// parallel on [`EngineConfig::threads`] workers against the hoisted
    /// QI→bucket index, and the batch registers atomically — on any
    /// compile error (reported for the lowest-indexed failing item) the
    /// session is unchanged.
    pub fn add_knowledge_batch(
        &mut self,
        items: &[Knowledge],
    ) -> Result<Vec<KnowledgeHandle>, PmError> {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        if items.iter().any(Knowledge::is_individual) {
            return Err(PmError::RequiresIndividualEngine);
        }
        for item in items {
            item.validate()?;
        }
        let compiled = compile_items_parallel(
            items,
            &self.table,
            &self.index,
            &self.qi_buckets,
            self.config.threads,
        )?;
        let mut handles = Vec::with_capacity(items.len());
        for (item, c) in items.iter().zip(compiled) {
            let mut footprint: Vec<usize> =
                c.coeffs.iter().map(|&(t, _)| self.index.term(t).b).collect();
            footprint.sort_unstable();
            footprint.dedup();
            self.dirty.extend(footprint.iter().copied());
            let handle = KnowledgeHandle(self.next_handle);
            self.next_handle += 1;
            self.entries.push(KnowledgeEntry {
                handle,
                item: item.clone(),
                coeffs: c.coeffs,
                rhs: c.rhs,
                footprint,
            });
            handles.push(handle);
        }
        self.stale = true;
        Ok(handles)
    }

    /// Converts association rules to knowledge ([`Knowledge::from_rule`])
    /// and adds them as one batch.
    pub fn add_rules<'a, I>(
        &mut self,
        rules: I,
        schema: &Schema,
    ) -> Result<Vec<KnowledgeHandle>, PmError>
    where
        I: IntoIterator<Item = &'a AssociationRule>,
    {
        let items: Vec<Knowledge> = rules
            .into_iter()
            .map(|r| Knowledge::from_rule(r, schema))
            .collect::<Result<_, _>>()?;
        self.add_knowledge_batch(&items)
    }

    /// Removes a previously added item, dirtying its bucket footprint.
    /// Returns the removed knowledge, or [`PmError::StaleHandle`] if the
    /// handle is not live.
    pub fn remove_knowledge(&mut self, handle: KnowledgeHandle) -> Result<Knowledge, PmError> {
        let pos = self
            .entries
            .iter()
            .position(|e| e.handle == handle)
            .ok_or(PmError::StaleHandle { handle })?;
        let entry = self.entries.remove(pos);
        self.dirty.extend(entry.footprint.iter().copied());
        self.dual_cache.remove(&DualKey::Knowledge { handle });
        self.stale = true;
        Ok(entry.item)
    }

    /// Replaces the session's Section 6 individual-knowledge set.
    ///
    /// The individual layer is solved by the pseudonym-expanded
    /// [`IndividualEngine`] as one joint system (it has no component
    /// decomposition), so its dirty tracking is a single flag: the next
    /// [`Analyst::refresh`] re-solves it iff this set or the distribution
    /// knowledge changed. While the set is non-empty,
    /// [`Analyst::conditional`] and [`Analyst::batch`] serve from the
    /// person-level estimate and [`Analyst::person_posterior`] becomes
    /// available.
    pub fn set_individuals(&mut self, items: Vec<Knowledge>) -> Result<(), PmError> {
        for item in &items {
            if !item.is_individual() {
                return Err(PmError::InvalidKnowledge {
                    detail: "set_individuals only accepts individual knowledge; \
                             use add_knowledge for distribution knowledge"
                        .into(),
                });
            }
            item.validate()?;
        }
        self.individuals = items;
        self.individuals_stale = true;
        Ok(())
    }

    /// Live knowledge items with their handles, in insertion order.
    pub fn knowledge(&self) -> impl Iterator<Item = (KnowledgeHandle, &Knowledge)> {
        self.entries.iter().map(|e| (e.handle, &e.item))
    }

    /// Number of live distribution-knowledge items.
    pub fn knowledge_len(&self) -> usize {
        self.entries.len()
    }

    /// The bucket footprint recorded for a live handle.
    pub fn footprint(&self, handle: KnowledgeHandle) -> Result<&[usize], PmError> {
        self.entries
            .iter()
            .find(|e| e.handle == handle)
            .map(|e| e.footprint.as_slice())
            .ok_or(PmError::StaleHandle { handle })
    }

    /// Whether deltas are pending (queries serve the pre-delta estimate
    /// until [`Analyst::refresh`]).
    pub fn is_stale(&self) -> bool {
        self.stale || self.individuals_stale
    }

    /// Buckets dirtied by the deltas accumulated since the last refresh.
    pub fn pending_buckets(&self) -> usize {
        self.dirty.len()
    }

    /// Components in the current partition.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Statistics of the last refresh.
    pub fn last_refresh(&self) -> &RefreshStats {
        &self.last_refresh
    }

    /// Re-solves exactly the components invalidated since the last refresh
    /// and merges them into the served estimate.
    ///
    /// On a component-solve error (infeasible or non-convergent delta,
    /// wrapped in [`PmError::Component`] with the failing component's
    /// index) the session state is untouched: the previous estimate and
    /// partition keep serving, the dirty set is retained, and removing the
    /// offending delta followed by another refresh fully recovers. A
    /// failure in the Section 6 individual layer happens *after* the
    /// component layer merged successfully: the refreshed component
    /// estimate serves, the individual layer stays flagged stale
    /// ([`Analyst::is_stale`]), and the next refresh retries it.
    pub fn refresh(&mut self) -> Result<RefreshStats, PmError> {
        let start = Instant::now();
        let was_stale = self.stale;
        if !self.stale && !self.individuals_stale {
            let stats = RefreshStats {
                components: self.components.len(),
                reused: self.components.len(),
                wall: start.elapsed(),
                ..Default::default()
            };
            self.last_refresh = stats.clone();
            return Ok(stats);
        }

        // The new partition stays local until every dirty solve succeeds,
        // so a failed refresh never changes what `report()` describes.
        let components: Vec<Component> = if self.stale {
            self.rebuild_rows();
            if self.config.decompose {
                connected_components(&self.rows, &self.index)
            } else {
                // One pseudo-component holding everything; knowledge rows
                // all attach to it (no incrementality without Section 5.5).
                let knowledge: Vec<usize> = self
                    .rows
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| matches!(c.origin, ConstraintOrigin::Knowledge { .. }))
                    .map(|(i, _)| i)
                    .collect();
                vec![Component {
                    buckets: (0..self.table.num_buckets()).collect(),
                    knowledge_rows: knowledge,
                }]
            }
        } else {
            std::mem::take(&mut self.components)
        };

        // Dirty = contains a bucket some delta touched. Everything else is
        // provably unchanged (see the module docs) and reused verbatim.
        let mut dirty_closed: Vec<usize> = Vec::new();
        let mut dirty_numeric: Vec<usize> = Vec::new();
        for (i, comp) in components.iter().enumerate() {
            if !comp.buckets.iter().any(|b| self.dirty.contains(b)) {
                continue;
            }
            if comp.is_irrelevant() && self.config.decompose {
                dirty_closed.push(i);
            } else {
                dirty_numeric.push(i);
            }
        }

        // Re-solve dirty numeric components on the worker pool (dirty-set
        // scheduling). Mirrors the historical engine: an abort flag skips
        // still-queued components once one fails, and the earliest-indexed
        // observed failure is reported.
        let config = &self.config;
        let table = &self.table;
        let index: &TermIndex = &self.index;
        let rows = &self.rows;
        let bucket_invariants = &self.bucket_invariants;
        let entries = &self.entries;
        let dual_cache = &self.dual_cache;
        let warm_fn = move |ci: usize| -> f64 {
            dual_key(&rows[ci].origin, entries)
                .and_then(|k| dual_cache.get(&k).copied())
                .unwrap_or(0.0)
        };
        let warm: Option<&(dyn Fn(usize) -> f64 + Sync)> =
            if config.warm_start { Some(&warm_fn) } else { None };

        let failed = AtomicBool::new(false);
        let solved =
            pm_parallel::map_subset(config.threads, &components, &dirty_numeric, |ci, comp| {
                if failed.load(Ordering::Relaxed) {
                    return None; // skipped: some other component already failed
                }
                let result =
                    solve_component(config, table, index, rows, bucket_invariants, comp, warm);
                if result.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                Some((ci, result))
            });
        let mut solutions: Vec<(usize, ComponentSolution)> = Vec::with_capacity(solved.len());
        for slot in solved {
            match slot {
                Some((ci, Ok(sol))) => solutions.push((ci, sol)),
                // Earliest-indexed observed failure; no state was merged,
                // so removing the offending delta and refreshing recovers.
                Some((ci, Err(e))) => {
                    return Err(PmError::Component { index: ci, source: Box::new(e) })
                }
                // Skipped slot: the error that caused it is later in the
                // scan and is returned there.
                None => {}
            }
        }
        debug_assert!(
            !failed.load(Ordering::Relaxed),
            "abort flag set but no error surfaced"
        );

        // --- Merge; only reached when every dirty solve succeeded. ---
        self.components = components;
        for &i in &dirty_closed {
            fill_uniform(&self.table, &self.index, &self.components[i].buckets, &mut self.values);
        }
        let mut estats = EngineStats {
            num_components: self.components.len(),
            num_irrelevant: if self.config.decompose {
                self.components.iter().filter(|c| c.is_irrelevant()).count()
            } else {
                0
            },
            ..Default::default()
        };
        let mut warm_started = 0usize;
        for (_, sol) in solutions {
            if sol.warm_seeded {
                warm_started += 1;
            }
            estats.num_constraints += sol.num_constraints;
            estats.num_free_terms += sol.num_free_terms;
            for (&t, &v) in sol.terms.iter().zip(&sol.values) {
                self.values[t] = v;
            }
            // No key collisions here: the only rows sharing an origin are
            // the per-bucket splits of a separable zero rule, and those
            // have rhs = 0, so preprocessing always eliminates them before
            // the solver — they never appear among surviving duals.
            for &(ci, lam) in &sol.duals {
                if let Some(key) = dual_key(&self.rows[ci].origin, &self.entries) {
                    self.dual_cache.insert(key, lam);
                }
            }
            if let Some(s) = sol.stats {
                estats.component_stats.push(s);
            }
        }

        let resolved = dirty_numeric.len();
        let closed_form = dirty_closed.len();
        let reused = self.components.len() - resolved - closed_form;
        self.dirty.clear();
        self.stale = false;

        estats.total_elapsed = start.elapsed();
        let solver = estats.solver_elapsed();
        self.estimate =
            Estimate::assemble(self.values.clone(), Arc::clone(&self.index), &self.table, estats);

        // --- Individual layer (Section 6): one joint system on top. ---
        let individual_resolve = if self.individuals.is_empty() {
            self.person = None;
            self.individuals_stale = false;
            false
        } else if self.individuals_stale || was_stale {
            // Mark pending *before* the fallible solve: the component layer
            // above already merged, so on failure the session keeps serving
            // it, stays flagged stale, and the next refresh retries this
            // layer alone.
            self.individuals_stale = true;
            let mut kb = KnowledgeBase::new();
            for e in &self.entries {
                kb.push(e.item.clone())?;
            }
            for item in &self.individuals {
                kb.push(item.clone())?;
            }
            let engine = IndividualEngine {
                tolerance: self.config.tolerance,
                max_iterations: self.config.max_iterations,
            };
            self.person = Some(engine.estimate(&self.table, &kb)?);
            self.individuals_stale = false;
            true
        } else {
            false
        };

        let stats = RefreshStats {
            components: self.components.len(),
            dirty: resolved + closed_form,
            resolved,
            closed_form,
            reused,
            warm_started,
            individual_resolve,
            wall: start.elapsed(),
            solver,
        };
        self.last_refresh = stats.clone();
        Ok(stats)
    }

    /// The current merged estimate (as of the last successful refresh).
    pub fn estimate(&self) -> &Estimate {
        &self.estimate
    }

    /// Consumes the session, returning the current estimate.
    pub fn into_estimate(self) -> Estimate {
        self.estimate
    }

    /// `P*(s | q)` from the current estimate — the person-level one when
    /// individual knowledge is set, the component-level one otherwise.
    /// No recompute; deltas pending since the last refresh are not
    /// reflected (see [`Analyst::is_stale`]).
    pub fn conditional(&self, q: QiId, s: Value) -> f64 {
        match &self.person {
            Some(p) => p.conditional(q, s),
            None => self.estimate.conditional(q, s),
        }
    }

    /// [`Analyst::conditional`] for a batch of `(q, s)` queries.
    pub fn batch(&self, queries: &[(QiId, Value)]) -> Vec<f64> {
        queries.iter().map(|&(q, s)| self.conditional(q, s)).collect()
    }

    /// The posterior SA distribution of pseudonym `i`, when individual
    /// knowledge is set (`None` otherwise).
    pub fn person_posterior(&self, i: PseudonymId) -> Option<Vec<f64>> {
        self.person.as_ref().map(|p| p.person_posterior(i))
    }

    /// Privacy scores of the current estimate plus session shape.
    pub fn report(&self) -> AnalystReport {
        AnalystReport {
            knowledge_items: self.entries.len(),
            individual_items: self.individuals.len(),
            components: self.components.len(),
            pending_deltas: self.is_stale(),
            max_disclosure: metrics::max_disclosure(&self.estimate),
            effective_l_diversity: metrics::effective_l_diversity(&self.estimate),
            min_conditional_entropy: metrics::min_conditional_entropy(&self.estimate),
            last_refresh: self.last_refresh.clone(),
        }
    }

    /// Rewrites the knowledge tail of `rows` from the live entries
    /// (invariant prefix untouched), re-indexing origins to current
    /// positions and applying the separable-zero-row split the one-shot
    /// engine applies (only under decomposition, as there).
    fn rebuild_rows(&mut self) {
        self.rows.truncate(self.num_invariants);
        let mut krows: Vec<Constraint> = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, e)| Constraint {
                coeffs: e.coeffs.clone(),
                rhs: e.rhs,
                origin: ConstraintOrigin::Knowledge { index: i },
            })
            .collect();
        if self.config.decompose {
            krows = split_separable_knowledge(krows, &self.index);
        }
        self.rows.extend(krows);
    }
}

// Compile-time contract: sessions are handed between threads in resident
// deployments; everything here must stay `Send + Sync`.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Analyst>();
    send_sync::<KnowledgeHandle>();
    send_sync::<RefreshStats>();
    send_sync::<AnalystReport>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use pm_anonymize::fixtures::paper_example;

    fn conditional_k(antecedent: Vec<(usize, Value)>, sa: Value, p: f64) -> Knowledge {
        Knowledge::Conditional { antecedent, sa, probability: p }
    }

    /// A fresh session's baseline equals the uniform estimate.
    #[test]
    fn baseline_is_uniform() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        let analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        assert_eq!(analyst.estimate().term_values(), uniform.term_values());
        assert_eq!(analyst.last_refresh().closed_form, 3);
        assert_eq!(analyst.last_refresh().resolved, 0);
        assert!(!analyst.is_stale());
    }

    /// Incremental adds arrive at the same bits as one-shot estimates with
    /// the same final knowledge set.
    #[test]
    fn incremental_matches_one_shot_bitwise() {
        let (_, table) = paper_example();
        let k1 = conditional_k(vec![(0, 0)], 0, 0.3); // P(flu | male) = 0.3
        let k2 = conditional_k(vec![(1, 0)], 3, 0.4); // P(hiv | college) = 0.4
        let mut kb = KnowledgeBase::new();
        kb.push(k1.clone()).unwrap();
        kb.push(k2.clone()).unwrap();
        let one_shot = Engine::default().estimate(&table, &kb).unwrap();

        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        analyst.add_knowledge(k1).unwrap();
        analyst.refresh().unwrap();
        analyst.add_knowledge(k2).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), one_shot.term_values());
        for q in 0..one_shot.distinct_qi() {
            assert_eq!(analyst.estimate().conditional_row(q), one_shot.conditional_row(q));
        }
    }

    /// A delta re-solves only the components its footprint touches.
    #[test]
    fn delta_dirties_only_its_footprint() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        // P(pneumonia | q3) = 0.5 touches buckets 1 and 2 (indices 0, 1);
        // bucket 3 stays clean.
        let h = analyst.add_knowledge(conditional_k(vec![(0, 0), (1, 1)], 1, 0.5)).unwrap();
        assert_eq!(analyst.footprint(h).unwrap(), &[0, 1]);
        assert!(analyst.is_stale());
        let stats = analyst.refresh().unwrap();
        assert_eq!(stats.components, 2, "buckets 1+2 fuse, bucket 3 alone");
        assert_eq!(stats.resolved, 1, "only the fused component re-solves");
        assert_eq!(stats.reused, 1, "bucket 3 is reused verbatim");

        // A second, disjoint delta: P(flu | graduate) = 0.5 lives in
        // bucket 3 only — the fused {1, 2} component must be reused.
        analyst.add_knowledge(conditional_k(vec![(1, 3)], 0, 0.5)).unwrap();
        let stats = analyst.refresh().unwrap();
        assert_eq!(stats.components, 2);
        assert_eq!(stats.resolved, 1);
        assert_eq!(stats.reused, 1, "the untouched component is not re-solved");
    }

    /// Removing a delta restores the exact previous bits.
    #[test]
    fn remove_restores_previous_bits() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let baseline = analyst.estimate().term_values().to_vec();
        let h = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.refresh().unwrap();
        assert_ne!(analyst.estimate().term_values(), baseline.as_slice());
        let removed = analyst.remove_knowledge(h).unwrap();
        assert_eq!(removed, conditional_k(vec![(0, 0)], 0, 0.3));
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), baseline.as_slice());
        assert_eq!(analyst.knowledge_len(), 0);
    }

    /// Stale handles are rejected, not silently ignored.
    #[test]
    fn stale_handles_error() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let h = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.remove_knowledge(h).unwrap();
        assert!(matches!(
            analyst.remove_knowledge(h),
            Err(PmError::StaleHandle { handle }) if handle == h
        ));
        assert!(matches!(
            analyst.remove_knowledge(KnowledgeHandle::from_id(999)),
            Err(PmError::StaleHandle { .. })
        ));
    }

    /// An infeasible delta fails the refresh with component context, leaves
    /// the session serving the previous estimate, and removing the delta
    /// fully recovers.
    #[test]
    fn infeasible_delta_is_recoverable() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let good = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
        analyst.refresh().unwrap();
        let expected = analyst.estimate().term_values().to_vec();

        // P(flu | male) = 0 contradicts bucket 1's contents.
        let components_before = analyst.num_components();
        let bad = analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.0)).unwrap();
        let err = analyst.refresh().unwrap_err();
        assert!(matches!(err, PmError::Component { .. }), "got {err:?}");
        assert!(
            matches!(
                err.root_cause(),
                PmError::SolverFailed { .. } | PmError::Infeasible { .. }
            ),
            "root cause: {:?}",
            err.root_cause()
        );
        // Queries still serve the pre-delta estimate, and the reported
        // partition is still the one that produced it.
        assert_eq!(analyst.estimate().term_values(), expected.as_slice());
        assert_eq!(analyst.num_components(), components_before);
        assert_eq!(analyst.report().components, components_before);
        assert!(analyst.is_stale());

        analyst.remove_knowledge(bad).unwrap();
        analyst.refresh().unwrap();
        assert_eq!(analyst.estimate().term_values(), expected.as_slice());
        let _ = good;
    }

    /// Warm starts converge to the same optimum (within tolerance) as cold
    /// re-solves, and the refresh reports them.
    #[test]
    fn warm_start_matches_within_tolerance() {
        let (_, table) = paper_example();
        let mut cold =
            Analyst::new(table.clone(), EngineConfig::default()).unwrap();
        let mut warm = Analyst::new(
            table,
            EngineConfig { warm_start: true, ..Default::default() },
        )
        .unwrap();
        for analyst in [&mut cold, &mut warm] {
            analyst.add_knowledge(conditional_k(vec![(0, 0)], 0, 0.3)).unwrap();
            analyst.refresh().unwrap();
            // Second delta re-solves a component whose rows now have cached
            // duals — this is the warm-started path.
            analyst.add_knowledge(conditional_k(vec![(0, 1)], 1, 0.4)).unwrap();
            analyst.refresh().unwrap();
        }
        assert!(warm.last_refresh().warm_started > 0, "warm path not exercised");
        assert_eq!(cold.last_refresh().warm_started, 0);
        for q in 0..cold.estimate().distinct_qi() {
            for s in 0..cold.estimate().sa_cardinality() as Value {
                let c = cold.conditional(q, s);
                let w = warm.conditional(q, s);
                assert!((c - w).abs() < 1e-6, "q={q} s={s}: cold {c} vs warm {w}");
            }
        }
    }

    /// The individual layer rides on the session: set, query, clear.
    #[test]
    fn individual_layer_on_session() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        assert!(analyst.person_posterior(0).is_none());
        // "Alice (pseudonym 0, a q1 record) has breast cancer with p 0.2".
        analyst
            .set_individuals(vec![Knowledge::IndividualSa {
                pseudonym: 0,
                sa: 2,
                probability: 0.2,
            }])
            .unwrap();
        assert!(analyst.is_stale());
        let stats = analyst.refresh().unwrap();
        assert!(stats.individual_resolve);
        let posterior = analyst.person_posterior(0).expect("individual layer live");
        assert!((posterior.iter().sum::<f64>() - 1.0).abs() < 1e-6);
        assert!((posterior[2] - 0.2).abs() < 1e-6, "pinned probability respected");
        // Conditional queries now serve the person-level estimate.
        let q1 = analyst.table().interner().lookup(&[0, 0]).unwrap();
        let row: f64 = (0..5u16).map(|s| analyst.conditional(q1, s)).sum();
        assert!((row - 1.0).abs() < 1e-6);
        // A refresh with nothing stale re-solves nothing.
        let stats = analyst.refresh().unwrap();
        assert!(!stats.individual_resolve);
        assert_eq!(stats.resolved, 0);
        // Clearing the layer restores component-level serving.
        analyst.set_individuals(Vec::new()).unwrap();
        analyst.refresh().unwrap();
        assert!(analyst.person_posterior(0).is_none());
    }

    /// An infeasible individual layer fails the refresh *after* the
    /// component layer merged; the session stays flagged stale and retries
    /// the individual layer on every refresh until it is fixed.
    #[test]
    fn infeasible_individual_layer_is_retried() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        // Alice (pseudonym 0, a q1 record in buckets 1 and 2) "has lung
        // cancer" — but lung cancer only occurs in bucket 3: infeasible.
        analyst
            .set_individuals(vec![Knowledge::IndividualOneOf { pseudonym: 0, sas: vec![4] }])
            .unwrap();
        assert!(analyst.refresh().is_err());
        assert!(analyst.is_stale(), "failed individual solve must stay pending");
        // A second refresh retries (and fails again) instead of silently
        // reporting success with a stale person layer.
        assert!(analyst.refresh().is_err());
        // Clearing the bad layer recovers the session.
        analyst.set_individuals(Vec::new()).unwrap();
        let stats = analyst.refresh().unwrap();
        assert!(!stats.individual_resolve);
        assert!(!analyst.is_stale());
        assert!(analyst.person_posterior(0).is_none());
    }

    /// Distribution knowledge must not sneak in via the individual door,
    /// nor individuals via add_knowledge.
    #[test]
    fn knowledge_kind_doors_are_enforced() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        assert!(matches!(
            analyst.add_knowledge(Knowledge::IndividualSa { pseudonym: 0, sa: 0, probability: 0.5 }),
            Err(PmError::RequiresIndividualEngine)
        ));
        assert!(matches!(
            analyst.set_individuals(vec![conditional_k(vec![(0, 0)], 0, 0.5)]),
            Err(PmError::InvalidKnowledge { .. })
        ));
    }

    /// Queries and reports serve without recompute, and flag staleness.
    #[test]
    fn report_reflects_session_shape() {
        let (_, table) = paper_example();
        let mut analyst = Analyst::new(table, EngineConfig::default()).unwrap();
        let q2 = analyst.table().interner().lookup(&[1, 0]).unwrap();
        analyst
            .add_knowledge(conditional_k(vec![(0, 0)], 2, 0.0)) // P(bc | male) = 0
            .unwrap();
        let before = analyst.report();
        assert!(before.pending_deltas, "delta not refreshed yet");
        analyst.refresh().unwrap();
        let after = analyst.report();
        assert!(!after.pending_deltas);
        assert_eq!(after.knowledge_items, 1);
        assert!(after.max_disclosure > before.max_disclosure, "knowledge leaks");
        assert!((after.max_disclosure - 1.0).abs() < 1e-6, "Grace (q4) fully disclosed");
        // Cathy (q2) holds bucket 1's breast cancer with certainty, but she
        // also appears in bucket 3, so her marginal P(bc | q2) is 1/2.
        assert!((analyst.conditional(q2, 2) - 0.5).abs() < 1e-6, "Cathy half disclosed");
        let batch = analyst.batch(&[(q2, 2), (q2, 0)]);
        assert_eq!(batch.len(), 2);
        assert!((batch[0] - 0.5).abs() < 1e-6);
        assert!(!format!("{after}").is_empty());
    }
}
