//! The probability-term index.
//!
//! A *probability term* `P(q, s, b)` (Definition 5.1) is a variable of the
//! maxent program. Only **admissible** terms — `q ∈ QI(b)` and `s ∈ SA(b)` —
//! are indexed; all others are pinned to zero by the Zero-invariant
//! equations (Eq. 6), which this representation enforces structurally
//! instead of materialising `|QI|·|SA|·m` rows.
//!
//! # Epoch sharing
//!
//! The index is two-level: per-bucket term lists (`BucketTerms`, each
//! behind an [`Arc`]) plus a global prefix-offset table. Global term ids
//! stay bucket-major (all of bucket 0, then bucket 1, …) so per-bucket and
//! per-component slicing is free — but because a bucket's local layout is
//! self-contained, advancing a [`crate::compiled::CompiledTable`] to a new
//! epoch rebuilds only the *touched* buckets' `BucketTerms` and the
//! `O(m)` offset table; untouched buckets share their term lists (and local
//! lookup maps) with the previous epoch by reference.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::{Arc, OnceLock};

use pm_anonymize::published::{BucketView, PublishedTable};
use pm_microdata::qi::QiId;
use pm_microdata::value::Value;

/// One admissible probability term `P(q, s, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Term {
    /// QI symbol.
    pub q: QiId,
    /// SA value.
    pub s: Value,
    /// Bucket index.
    pub b: usize,
}

/// The admissible terms of one bucket: the `(q, s)` pairs in local (bucket-
/// relative) order plus the local lookup map. Epoch-shareable — nothing
/// here depends on other buckets or on global offsets.
#[derive(Debug)]
pub(crate) struct BucketTerms {
    /// `(q, s)` pairs, QI-major in the bucket's ascending count order.
    pairs: Vec<(QiId, Value)>,
    /// `(q, s)` → local offset; derived from `pairs` on first lookup, so an
    /// index loaded from a snapshot never pays for hashing buckets it only
    /// ever slices by range.
    lookup: OnceLock<HashMap<(QiId, Value), usize>>,
}

impl BucketTerms {
    pub(crate) fn build(bucket: &BucketView) -> Self {
        let mut pairs = Vec::with_capacity(bucket.distinct_qi() * bucket.distinct_sa());
        for &(q, _) in bucket.qi_counts() {
            for &(s, _) in bucket.sa_counts() {
                pairs.push((q, s));
            }
        }
        Self::from_pairs(pairs)
    }

    /// Wraps a persisted (or freshly generated) pair list; the lookup map
    /// is derived lazily.
    pub(crate) fn from_pairs(pairs: Vec<(QiId, Value)>) -> Self {
        Self { pairs, lookup: OnceLock::new() }
    }

    /// The `(q, s)` pairs in local term order — the ground truth the
    /// persisted encoding stores.
    pub(crate) fn pairs(&self) -> &[(QiId, Value)] {
        &self.pairs
    }

    /// The local lookup map, built on first use.
    fn lookup(&self) -> &HashMap<(QiId, Value), usize> {
        self.lookup
            .get_or_init(|| self.pairs.iter().enumerate().map(|(i, &p)| (p, i)).collect())
    }

    /// Number of admissible terms in this bucket.
    pub(crate) fn len(&self) -> usize {
        self.pairs.len()
    }
}

/// Dense index of all admissible terms of a published table.
///
/// Terms are laid out bucket-major (all of bucket 0, then bucket 1, …),
/// which makes per-bucket and per-component slicing free. See the
/// [module docs](self) for the epoch-sharing layout.
#[derive(Debug, Clone)]
pub struct TermIndex {
    buckets: Vec<Arc<BucketTerms>>,
    /// Prefix sums of per-bucket term counts; `offsets[m]` = total terms.
    offsets: Vec<usize>,
}

impl TermIndex {
    /// Builds the index for a published table.
    pub fn build(table: &PublishedTable) -> Self {
        let buckets: Vec<Arc<BucketTerms>> = (0..table.num_buckets())
            .map(|b| Arc::new(BucketTerms::build(table.bucket(b))))
            .collect();
        Self::from_buckets(buckets)
    }

    /// Assembles an index from per-bucket term lists (shared or rebuilt) —
    /// the epoch-advance entry point.
    pub(crate) fn from_buckets(buckets: Vec<Arc<BucketTerms>>) -> Self {
        let mut offsets = Vec::with_capacity(buckets.len() + 1);
        let mut total = 0usize;
        offsets.push(0);
        for b in &buckets {
            total += b.len();
            offsets.push(total);
        }
        Self { buckets, offsets }
    }

    /// The shared per-bucket term lists (for epoch advances).
    pub(crate) fn bucket_terms(&self) -> &[Arc<BucketTerms>] {
        &self.buckets
    }

    /// Number of admissible terms (the maxent problem's primal dimension).
    pub fn len(&self) -> usize {
        *self.offsets.last().expect("offsets always holds the leading 0")
    }

    /// Whether there are no terms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The term at `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn term(&self, idx: usize) -> Term {
        let b = self.bucket_of(idx);
        let (q, s) = self.buckets[b].pairs[idx - self.offsets[b]];
        Term { q, s, b }
    }

    /// The bucket whose range contains global term id `idx`.
    pub(crate) fn bucket_of(&self, idx: usize) -> usize {
        debug_assert!(idx < self.len(), "term id {idx} out of range");
        // partition_point returns the first offset *greater* than idx; the
        // bucket is the one before it.
        self.offsets.partition_point(|&o| o <= idx) - 1
    }

    /// Index of `P(q, s, b)`, or `None` if the term is inadmissible (i.e.
    /// pinned to zero by a Zero-invariant).
    pub fn get(&self, q: QiId, s: Value, b: usize) -> Option<usize> {
        self.buckets
            .get(b)?
            .lookup()
            .get(&(q, s))
            .map(|&local| self.offsets[b] + local)
    }

    /// The contiguous index range of bucket `b`'s terms.
    pub fn bucket_range(&self, b: usize) -> Range<usize> {
        self.offsets[b]..self.offsets[b + 1]
    }

    /// Number of buckets covered.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates `(index, term)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Term)> + '_ {
        self.buckets.iter().enumerate().flat_map(move |(b, bt)| {
            let start = self.offsets[b];
            bt.pairs
                .iter()
                .enumerate()
                .map(move |(i, &(q, s))| (start + i, Term { q, s, b }))
        })
    }

    /// Whether bucket `b`'s term list is shared (pointer-equal) with the
    /// same bucket of `other` — the structural-sharing observability hook
    /// the epoch tests use.
    pub fn bucket_shared_with(&self, other: &Self, b: usize) -> bool {
        Arc::ptr_eq(&self.buckets[b], &other.buckets[b])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_anonymize::fixtures::paper_example;

    #[test]
    fn paper_example_term_count() {
        let (_, table) = paper_example();
        let idx = TermIndex::build(&table);
        // Bucket 1: 3 distinct QI × 3 distinct SA = 9 terms; bucket 2: 3×3 =
        // 9; bucket 3: 3×3 = 9.
        assert_eq!(idx.len(), 27);
        assert_eq!(idx.bucket_range(0), 0..9);
        assert_eq!(idx.bucket_range(1), 9..18);
        assert_eq!(idx.bucket_range(2), 18..27);
    }

    #[test]
    fn zero_invariants_are_structural() {
        let (_, table) = paper_example();
        let idx = TermIndex::build(&table);
        let q1 = table.interner().lookup(&[0, 0]).unwrap();
        // Section 5.2: q1 does not appear in the 3rd bucket → P(q1, s, 3)
        // inadmissible for every s.
        for s in 0..5u16 {
            assert_eq!(idx.get(q1, s, 2), None);
        }
        // Breast cancer (s1, code 2) does not appear in the 3rd bucket.
        for q in 0..6 {
            assert_eq!(idx.get(q, 2, 2), None);
        }
        // But admissible terms resolve.
        assert!(idx.get(q1, 0, 0).is_some());
    }

    #[test]
    fn roundtrip_lookup() {
        let (_, table) = paper_example();
        let idx = TermIndex::build(&table);
        for (i, t) in idx.iter() {
            assert_eq!(idx.get(t.q, t.s, t.b), Some(i));
            assert_eq!(idx.term(i), t);
            let r = idx.bucket_range(t.b);
            assert!(r.contains(&i));
        }
    }

    /// `from_pairs` (the snapshot-load path) is observably identical to
    /// `build`: the lazily derived lookup map agrees with the eager one.
    #[test]
    fn from_pairs_matches_build() {
        let (_, table) = paper_example();
        let built = TermIndex::build(&table);
        let rebuilt = TermIndex::from_buckets(
            built
                .bucket_terms()
                .iter()
                .map(|bt| Arc::new(BucketTerms::from_pairs(bt.pairs().to_vec())))
                .collect(),
        );
        assert_eq!(rebuilt.len(), built.len());
        for (i, t) in built.iter() {
            assert_eq!(rebuilt.term(i), t);
            assert_eq!(rebuilt.get(t.q, t.s, t.b), Some(i));
        }
        assert_eq!(rebuilt.get(0, 99, 0), None);
    }

    /// Untouched buckets of a delta-advanced table share their term lists
    /// by reference; only the touched bucket's list is rebuilt.
    #[test]
    fn epoch_advance_shares_untouched_buckets() {
        let (_, table) = paper_example();
        let old = TermIndex::build(&table);
        let mut buckets = old.bucket_terms().to_vec();
        let mut mutated = table.clone();
        mutated.insert_record(&[0, 0], 0, 1).unwrap();
        buckets[1] = Arc::new(BucketTerms::build(mutated.bucket(1)));
        let new = TermIndex::from_buckets(buckets);
        assert!(new.bucket_shared_with(&old, 0));
        assert!(!new.bucket_shared_with(&old, 1));
        assert!(new.bucket_shared_with(&old, 2));
        // Offsets shifted; identities are preserved per bucket.
        for (i, t) in new.iter() {
            assert_eq!(new.get(t.q, t.s, t.b), Some(i));
        }
    }
}
