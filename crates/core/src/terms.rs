//! The probability-term index.
//!
//! A *probability term* `P(q, s, b)` (Definition 5.1) is a variable of the
//! maxent program. Only **admissible** terms — `q ∈ QI(b)` and `s ∈ SA(b)` —
//! are indexed; all others are pinned to zero by the Zero-invariant
//! equations (Eq. 6), which this representation enforces structurally
//! instead of materialising `|QI|·|SA|·m` rows.

use std::collections::HashMap;
use std::ops::Range;

use pm_anonymize::published::PublishedTable;
use pm_microdata::qi::QiId;
use pm_microdata::value::Value;

/// One admissible probability term `P(q, s, b)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Term {
    /// QI symbol.
    pub q: QiId,
    /// SA value.
    pub s: Value,
    /// Bucket index.
    pub b: usize,
}

/// Dense index of all admissible terms of a published table.
///
/// Terms are laid out bucket-major (all of bucket 0, then bucket 1, …),
/// which makes per-bucket and per-component slicing free.
#[derive(Debug, Clone)]
pub struct TermIndex {
    terms: Vec<Term>,
    lookup: HashMap<(QiId, Value, usize), usize>,
    bucket_ranges: Vec<Range<usize>>,
}

impl TermIndex {
    /// Builds the index for a published table.
    pub fn build(table: &PublishedTable) -> Self {
        let mut terms = Vec::new();
        let mut lookup = HashMap::new();
        let mut bucket_ranges = Vec::with_capacity(table.num_buckets());
        for b in 0..table.num_buckets() {
            let start = terms.len();
            let bucket = table.bucket(b);
            for &(q, _) in bucket.qi_counts() {
                for &(s, _) in bucket.sa_counts() {
                    lookup.insert((q, s, b), terms.len());
                    terms.push(Term { q, s, b });
                }
            }
            bucket_ranges.push(start..terms.len());
        }
        Self { terms, lookup, bucket_ranges }
    }

    /// Number of admissible terms (the maxent problem's primal dimension).
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// Whether there are no terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term at `idx`.
    pub fn term(&self, idx: usize) -> Term {
        self.terms[idx]
    }

    /// Index of `P(q, s, b)`, or `None` if the term is inadmissible (i.e.
    /// pinned to zero by a Zero-invariant).
    pub fn get(&self, q: QiId, s: Value, b: usize) -> Option<usize> {
        self.lookup.get(&(q, s, b)).copied()
    }

    /// The contiguous index range of bucket `b`'s terms.
    pub fn bucket_range(&self, b: usize) -> Range<usize> {
        self.bucket_ranges[b].clone()
    }

    /// Number of buckets covered.
    pub fn num_buckets(&self) -> usize {
        self.bucket_ranges.len()
    }

    /// Iterates `(index, term)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, Term)> + '_ {
        self.terms.iter().copied().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_anonymize::fixtures::paper_example;

    #[test]
    fn paper_example_term_count() {
        let (_, table) = paper_example();
        let idx = TermIndex::build(&table);
        // Bucket 1: 3 distinct QI × 3 distinct SA = 9 terms; bucket 2: 3×3 =
        // 9; bucket 3: 3×3 = 9.
        assert_eq!(idx.len(), 27);
        assert_eq!(idx.bucket_range(0), 0..9);
        assert_eq!(idx.bucket_range(1), 9..18);
        assert_eq!(idx.bucket_range(2), 18..27);
    }

    #[test]
    fn zero_invariants_are_structural() {
        let (_, table) = paper_example();
        let idx = TermIndex::build(&table);
        let q1 = table.interner().lookup(&[0, 0]).unwrap();
        // Section 5.2: q1 does not appear in the 3rd bucket → P(q1, s, 3)
        // inadmissible for every s.
        for s in 0..5u16 {
            assert_eq!(idx.get(q1, s, 2), None);
        }
        // Breast cancer (s1, code 2) does not appear in the 3rd bucket.
        for q in 0..6 {
            assert_eq!(idx.get(q, 2, 2), None);
        }
        // But admissible terms resolve.
        assert!(idx.get(q1, 0, 0).is_some());
    }

    #[test]
    fn roundtrip_lookup() {
        let (_, table) = paper_example();
        let idx = TermIndex::build(&table);
        for (i, t) in idx.iter() {
            assert_eq!(idx.get(t.q, t.s, t.b), Some(i));
            let r = idx.bucket_range(t.b);
            assert!(r.contains(&i));
        }
    }
}
