//! # privacy-maxent
//!
//! A from-scratch reproduction of **"Privacy-MaxEnt: Integrating Background
//! Knowledge in Privacy Quantification"** (Du, Teng & Zhu, SIGMOD 2008).
//!
//! Privacy-MaxEnt derives the adversary's least-biased estimate of
//! `P(SA | QI)` for a bucketized publication `D'` under arbitrary linear
//! background knowledge, by maximising the entropy of the joint distribution
//! `P(Q, S, B)` subject to two constraint sources:
//!
//! 1. **Invariants of `D'`** ([`invariants`]) — the QI-, SA- and
//!    Zero-invariant equations of Section 5, proved sound (Thm. 1), complete
//!    (Thm. 2) and concise (Thm. 3). Zero-invariants are enforced
//!    structurally by excluding inadmissible `(q, s, b)` terms from the
//!    [`terms::TermIndex`].
//! 2. **Background knowledge** ([`knowledge`]) — conditional probabilities
//!    `P(s | Qv) = c` (typically Top-(K+, K−) association rules), compiled
//!    into ME constraints by [`compile`]; knowledge about individuals
//!    (Section 6) is handled by the pseudonym-expanded [`individuals`]
//!    engine.
//!
//! The resident [`analyst::Analyst`] session owns the pipeline: it
//! preprocesses the system (eliminating zero-forced and pinned terms — the
//! exponential dual cannot represent exact zeros), splits it into bucket
//! connected components ([`partition`]; irrelevant buckets get the
//! closed-form uniform solution of Theorem 5), solves each component's
//! maxent dual with `pm-solver`, and exposes `P(S | Q)` plus the paper's
//! evaluation metric ([`metrics::estimation_accuracy`]). Background
//! knowledge evolves as deltas: `add_knowledge` / `remove_knowledge` dirty
//! only the components their bucket footprints touch, and `refresh`
//! re-solves exactly those. The one-shot [`engine::Engine::estimate`] is a
//! thin wrapper that feeds a throwaway session. Every fallible operation
//! returns the single [`error::PmError`].

pub mod analyst;
pub mod compile;
pub mod constraint;
pub mod engine;
pub mod error;
pub mod individuals;
pub mod inequality;
pub mod invariants;
pub mod knowledge;
pub mod metrics;
pub mod partition;
pub mod preprocess;
pub mod ranges;
pub mod report;
pub mod terms;
pub mod validate;

pub use analyst::{Analyst, AnalystReport, KnowledgeHandle, RefreshStats};
pub use engine::{Engine, EngineConfig, EngineStats, Estimate, SolverKind};
pub use error::{CoreError, PmError};
pub use knowledge::{Knowledge, KnowledgeBase};
