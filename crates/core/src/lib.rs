//! # privacy-maxent
//!
//! A from-scratch reproduction of **"Privacy-MaxEnt: Integrating Background
//! Knowledge in Privacy Quantification"** (Du, Teng & Zhu, SIGMOD 2008).
//!
//! Privacy-MaxEnt derives the adversary's least-biased estimate of
//! `P(SA | QI)` for a bucketized publication `D'` under arbitrary linear
//! background knowledge, by maximising the entropy of the joint distribution
//! `P(Q, S, B)` subject to two constraint sources:
//!
//! 1. **Invariants of `D'`** ([`invariants`]) — the QI-, SA- and
//!    Zero-invariant equations of Section 5, proved sound (Thm. 1), complete
//!    (Thm. 2) and concise (Thm. 3). Zero-invariants are enforced
//!    structurally by excluding inadmissible `(q, s, b)` terms from the
//!    [`terms::TermIndex`].
//! 2. **Background knowledge** ([`knowledge`]) — conditional probabilities
//!    `P(s | Qv) = c` (typically Top-(K+, K−) association rules), compiled
//!    into ME constraints by [`compile`]; knowledge about individuals
//!    (Section 6) is handled by the pseudonym-expanded [`individuals`]
//!    engine.
//!
//! The pipeline is split **compile-once / serve-many**: everything
//! knowledge-independent — the term index, the invariants, the QI→bucket
//! inverted index, the knowledge-free partition and its Theorem 5 baseline
//! — freezes into an immutable, `Send + Sync`
//! [`compiled::CompiledTable`] artifact, built exactly once per published
//! table. Any number of resident [`analyst::Analyst`] sessions open over
//! one `Arc` of it in O(1); each holds only per-adversary state (knowledge
//! set, dirty tracking, a copy-on-write overlay on the baseline), supports
//! cheap what-if [`analyst::Analyst::fork`]s, and serves `P(S | Q)` plus
//! the paper's evaluation metric ([`metrics::estimation_accuracy`]) from
//! `Arc`-backed [`analyst::Analyst::snapshot`]s. Background knowledge
//! evolves as deltas: `add_knowledge` / `remove_knowledge` dirty only the
//! components their bucket footprints touch ([`partition`]), and `refresh`
//! preprocesses (eliminating zero-forced and pinned terms — the
//! exponential dual cannot represent exact zeros) and re-solves exactly
//! those with `pm-solver`. The one-shot [`engine::Engine::estimate`] is a
//! thin wrapper that feeds a throwaway session. Every fallible operation
//! returns the single [`error::PmError`].
//!
//! The published table itself is **live**: a record-level
//! [`delta::TableDelta`] advances the compiled artifact to a new *epoch*
//! ([`compiled::CompiledTable::apply`]) recompiling only the touched
//! buckets, and resident sessions carry their adversary model across
//! epochs with [`analyst::Analyst::rebase`] — still bit-identical to
//! compiling the post-delta table from scratch.
//!
//! The artifact is also **durable** ([`persist`]): a versioned,
//! checksummed snapshot ([`compiled::CompiledTable::save`] /
//! [`compiled::CompiledTable::load`]) plus an append-only epoch WAL
//! ([`persist::EpochWal`]) let a restarted server [`persist::recover`] to
//! the last fully-committed epoch — bit-identical to the in-memory chain —
//! and [`persist::compact`] folds the log back into a fresh snapshot:
//!
//! ```
//! use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE};
//! use privacy_maxent::{CompiledTable, EngineConfig, TableDelta};
//! # fn main() -> Result<(), privacy_maxent::PmError> {
//! # let dir = std::env::temp_dir().join(format!("pmx-lib-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir).unwrap();
//! let (_, table) = pm_anonymize::fixtures::paper_example();
//! let artifact = CompiledTable::build(table, EngineConfig::default())?;
//! artifact.save(dir.join(SNAPSHOT_FILE))?;
//! let mut wal = EpochWal::create(&dir, artifact.epoch())?;
//!
//! // Advance an epoch and log it; a crash may tear the last append…
//! let delta = TableDelta::new().insert(vec![0, 0], 0, 1);
//! let next = artifact.apply(&delta)?;
//! wal.append(next.epoch(), &delta, next.applied_delta().unwrap())?;
//!
//! // …and a restarted server replays snapshot + committed WAL tail.
//! let recovered = recover(&dir)?;
//! assert_eq!(recovered.artifact.epoch(), next.epoch());
//! assert_eq!(
//!     recovered.artifact.baseline_estimate().term_values(),
//!     next.baseline_estimate().term_values(),
//! );
//! # std::fs::remove_dir_all(&dir).unwrap();
//! # Ok(()) }
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the crate map and the
//! compile → open → delta → refresh → query data-flow.

#![warn(missing_docs)]

pub mod analyst;
mod batch;
pub mod compile;
pub mod compiled;
pub mod constraint;
pub mod delta;
pub mod engine;
pub mod error;
pub mod individuals;
pub mod inequality;
pub mod invariants;
pub mod knowledge;
pub mod metrics;
mod overlay;
pub mod partition;
pub mod persist;
pub mod preprocess;
pub mod ranges;
pub mod report;
pub mod terms;
pub mod validate;
pub mod wire;

pub use analyst::{Analyst, AnalystReport, KnowledgeHandle, RebaseStats, RefreshStats};
pub use compiled::{CompileStats, CompiledTable};
pub use delta::{AppliedDelta, DeltaOp, TableDelta};
pub use engine::{
    Engine, EngineConfig, EngineConfigBuilder, EngineStats, Estimate, SolverKind,
};
pub use error::{CoreError, PmError};
pub use knowledge::{Knowledge, KnowledgeBase};
pub use persist::{
    compact, recover, CompactStats, EpochWal, Recovered, FORMAT_VERSION, SNAPSHOT_FILE, WAL_FILE,
};
