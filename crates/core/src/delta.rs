//! Live tables: record-level deltas and table **epochs**.
//!
//! The paper treats the published table `D'` as static — invariants are a
//! pure function of `D'` (Theorems 1–3), which the
//! [`crate::compiled::CompiledTable`] artifact exploits by compiling them
//! once. A production service must additionally survive `D'` itself
//! changing: late-arriving records, retractions, bucket re-assignments.
//! This module is the data-plane half of that story:
//!
//! * A [`TableDelta`] is an ordered batch of record-level operations
//!   (insert / retract / move).
//! * [`crate::compiled::CompiledTable::apply`] advances an artifact to a
//!   new **epoch**: only the touched buckets' invariant rows, term lists,
//!   QI→bucket index entries and Theorem-5 baselines are recomputed;
//!   everything else is structurally shared (`Arc`) with the previous
//!   epoch. The [`AppliedDelta`] summary travels on the new artifact so
//!   resident sessions can [`crate::analyst::Analyst::rebase`] onto it.
//!
//! # Why per-bucket recompilation is sound
//!
//! Every invariant row of Section 5 is a statement about one bucket's
//! multisets (Eq. 4/5), and the Theorem-5 closed form is a function of one
//! bucket's multisets — so a delta's effect on the knowledge-independent
//! compile is confined to its touched buckets. Knowledge constraints can
//! reach further (a rule's matching-record count is global), which is why
//! the *session* rebase recompiles exactly the rules a delta could have
//! changed; see [`crate::analyst::Analyst::rebase`].

use pm_microdata::qi::QiId;
use pm_microdata::value::Value;

/// One record-level operation on the published table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaOp {
    /// A late-arriving record `(qi tuple, sa)` lands in bucket `bucket`.
    Insert {
        /// The record's full QI tuple (projection order of the schema's
        /// QI attributes).
        qi: Vec<Value>,
        /// The record's SA value.
        sa: Value,
        /// Destination bucket.
        bucket: usize,
    },
    /// A record `(qi tuple, sa)` is retracted from bucket `bucket`.
    Retract {
        /// The record's full QI tuple.
        qi: Vec<Value>,
        /// The record's SA value.
        sa: Value,
        /// Source bucket.
        bucket: usize,
    },
    /// A record `(qi tuple, sa)` moves from bucket `from` to bucket `to`
    /// (a bucket re-assignment; global counts are unchanged).
    Move {
        /// The record's full QI tuple.
        qi: Vec<Value>,
        /// The record's SA value.
        sa: Value,
        /// Source bucket.
        from: usize,
        /// Destination bucket.
        to: usize,
    },
}

impl DeltaOp {
    /// The buckets this operation touches.
    pub(crate) fn buckets(&self) -> impl Iterator<Item = usize> + '_ {
        let (a, b) = match *self {
            Self::Insert { bucket, .. } | Self::Retract { bucket, .. } => (bucket, None),
            Self::Move { from, to, .. } => (from, Some(to)),
        };
        std::iter::once(a).chain(b)
    }
}

/// An ordered batch of record-level operations, applied atomically by
/// [`crate::compiled::CompiledTable::apply`] to advance the table one
/// epoch.
///
/// ```
/// use privacy_maxent::delta::TableDelta;
/// let delta = TableDelta::new()
///     .insert(vec![0, 0], 1, 2)        // late arrival into bucket 2
///     .retract(vec![1, 0], 3, 0)       // retraction from bucket 0
///     .move_record(vec![0, 1], 1, 0, 1); // re-assignment 0 → 1
/// assert_eq!(delta.len(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TableDelta {
    ops: Vec<DeltaOp>,
}

impl TableDelta {
    /// An empty delta (applying it is a no-op fast path: zero buckets
    /// recompiled, sessions rebase without dirtying anything).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an insert.
    #[must_use]
    pub fn insert(mut self, qi: Vec<Value>, sa: Value, bucket: usize) -> Self {
        self.ops.push(DeltaOp::Insert { qi, sa, bucket });
        self
    }

    /// Appends a retraction.
    #[must_use]
    pub fn retract(mut self, qi: Vec<Value>, sa: Value, bucket: usize) -> Self {
        self.ops.push(DeltaOp::Retract { qi, sa, bucket });
        self
    }

    /// Appends a bucket re-assignment.
    #[must_use]
    pub fn move_record(mut self, qi: Vec<Value>, sa: Value, from: usize, to: usize) -> Self {
        self.ops.push(DeltaOp::Move { qi, sa, from, to });
        self
    }

    /// Appends an already-built operation.
    #[must_use]
    pub fn push(mut self, op: DeltaOp) -> Self {
        self.ops.push(op);
        self
    }

    /// The operations, in application order.
    #[must_use]
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of operations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the delta holds no operations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The distinct buckets this delta touches, ascending.
    #[must_use]
    pub fn touched_buckets(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self.ops.iter().flat_map(DeltaOp::buckets).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Summary of the delta that produced a [`crate::compiled::CompiledTable`]
/// epoch, carried on the artifact so sessions can
/// [`crate::analyst::Analyst::rebase`] onto it: which buckets changed, and
/// which QI symbols the delta records used (the rebase uses both to decide
/// which knowledge rules could have changed).
#[derive(Debug, Clone)]
pub struct AppliedDelta {
    /// Buckets whose multisets changed (or could have), ascending.
    pub(crate) touched: Vec<usize>,
    /// QI symbols of the delta's records, ascending and deduplicated.
    pub(crate) qs: Vec<QiId>,
    /// Number of operations applied.
    pub(crate) ops: usize,
}

impl AppliedDelta {
    /// Buckets whose multisets changed, ascending.
    #[must_use]
    pub fn touched_buckets(&self) -> &[usize] {
        &self.touched
    }

    /// QI symbols of the delta's records, ascending and deduplicated.
    #[must_use]
    pub fn qi_symbols(&self) -> &[QiId] {
        &self.qs
    }

    /// Number of operations the delta held.
    #[must_use]
    pub fn num_ops(&self) -> usize {
        self.ops
    }

    /// Whether the delta changed nothing.
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.ops == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_ops_in_order() {
        let d = TableDelta::new()
            .insert(vec![0], 1, 2)
            .retract(vec![1], 0, 2)
            .move_record(vec![2], 3, 0, 4)
            .push(DeltaOp::Insert { qi: vec![5], sa: 0, bucket: 1 });
        assert_eq!(d.len(), 4);
        assert!(!d.is_empty());
        assert!(matches!(d.ops()[0], DeltaOp::Insert { bucket: 2, .. }));
        assert!(matches!(d.ops()[2], DeltaOp::Move { from: 0, to: 4, .. }));
        assert_eq!(d.touched_buckets(), vec![0, 1, 2, 4]);
        assert!(TableDelta::new().is_empty());
        assert!(TableDelta::new().touched_buckets().is_empty());
    }
}
