//! The Privacy-MaxEnt engine: assemble, preprocess, decompose, solve.
//!
//! Pipeline (Sections 3–5 of the paper):
//!
//! 1. Index admissible terms ([`crate::terms::TermIndex`]).
//! 2. Generate data invariants ([`crate::invariants`]) and compile
//!    background knowledge ([`crate::compile`]).
//! 3. Split buckets into connected components ([`crate::partition`]);
//!    irrelevant components take the closed-form uniform solution (Thm. 5),
//!    the rest are preprocessed ([`crate::preprocess`]) and solved via the
//!    maxent dual (`pm_solver::MaxEntDual`).
//! 4. Read out `P(S | Q) = Σ_B P(Q, S, B) / P(Q)` (Section 3.1).
//!
//! The solve happens in **count space** (targets and values are record
//! counts; estimates divide by `N` at assembly): the dual is better
//! conditioned when right-hand sides are `O(1)` record counts rather than
//! `O(1/N)` probabilities, the maxent optimum simply rescales — and counts
//! are *exact integers*, so a bucket untouched by a table delta poses a
//! bit-identical local system in every epoch, the foundation of the
//! live-table reuse guarantee ([`crate::delta`]).
//!
//! # One-shot vs. resident
//!
//! Since the artifact redesign, the knowledge-independent stages live in
//! the shared [`crate::compiled::CompiledTable`] and the long-lived
//! [`crate::analyst::Analyst`] sessions over it own the serving: they track
//! background knowledge as deltas and re-solve only invalidated
//! components. [`Engine::estimate`] remains the one-shot facade — it spins
//! up a throwaway session over an internal artifact shell, feeds it the
//! whole knowledge base and refreshes once, which reproduces the
//! historical behaviour (and bit pattern) exactly. The shared
//! component-solving machinery lives in this module (`solve_component`)
//! so every entry point runs the identical numeric path.
//!
//! # Parallelism
//!
//! The per-component systems are independent maxent problems (that is the
//! whole point of Section 5.5), so relevant components are solved on a
//! [`pm_parallel`] worker pool of [`EngineConfig::threads`] threads.
//! Irrelevant components never reach a worker: they short-circuit to the
//! Theorem 5 closed form on the calling thread. Each component's solve is
//! internally sequential and results are merged in component order into
//! disjoint term ranges, so the output is **bit-identical** for every
//! thread count (only [`EngineStats`] wall times vary).

use std::sync::Arc;
use std::time::Duration;

use pm_anonymize::published::PublishedTable;
use pm_linalg::CsrMatrix;
use pm_microdata::qi::QiId;
use pm_microdata::value::Value;
use pm_solver::gradient::{gradient_descent, GradientDescentConfig};
use pm_solver::scaling::{gis_with_primal_from, iis_from, ScalingConfig};
use pm_solver::stats::SolveStats;
use pm_solver::{Lbfgs, LbfgsConfig, MaxEntDual};

use crate::analyst::Analyst;
use crate::constraint::Constraint;
use crate::error::PmError;
use crate::knowledge::KnowledgeBase;
use crate::partition::Component;
use crate::preprocess::{preprocess_flat, FlatRows};
use crate::terms::TermIndex;

/// Result of one constraint-system solve (count space).
struct SolvedSystem {
    /// Expanded local term values.
    values: Vec<f64>,
    /// Solver stats (`None` when preprocessing fully determined the system).
    stats: Option<SolveStats>,
    /// Final constraint residual.
    residual: f64,
    /// Constraints passed to the solver after preprocessing.
    num_constraints: usize,
    /// Free variables passed to the solver after preprocessing.
    num_free_terms: usize,
    /// `(local constraint index, dual value)` for every surviving reduced
    /// row — the warm-start feed for the next re-solve of this system.
    duals: Vec<(usize, f64)>,
}

/// The constraint rows a component solve addresses, as one virtual list
/// `[invariants..., knowledge...]` without materialising it.
///
/// The invariant prefix lives in the shared
/// [`crate::compiled::CompiledTable`] artifact as **per-bucket row lists in
/// bucket-local coordinates** (so untouched buckets share them across
/// table epochs); `row_offsets` are the prefix sums mapping a bucket to its
/// global row range. The knowledge tail — global term coordinates — is the
/// session's private, per-refresh state. Global constraint indices — in
/// [`Component::knowledge_rows`], warm-start callbacks and
/// [`ComponentSolution::duals`] — address this virtual list: `ci <
/// num_invariants` is an invariant row, anything above is
/// `knowledge[ci - num_invariants]`. All right-hand sides are count-space.
#[derive(Clone, Copy)]
pub(crate) struct RowSet<'a> {
    /// Per-bucket invariant rows (bucket-local coefficients, count rhs).
    pub(crate) bucket_rows: &'a [Arc<Vec<Constraint>>],
    /// Prefix sums of per-bucket invariant row counts (`len = m + 1`).
    pub(crate) row_offsets: &'a [usize],
    /// The session's knowledge rows (tail of the virtual list, global term
    /// coordinates).
    pub(crate) knowledge: &'a [Constraint],
}

impl RowSet<'_> {
    /// Rows in the invariant prefix.
    pub(crate) fn num_invariants(&self) -> usize {
        *self.row_offsets.last().expect("offsets hold the leading 0")
    }

    /// The constraint behind global row index `ci`.
    ///
    /// Invariant rows come back in **bucket-local** coefficients; callers
    /// needing term ids resolve them against the bucket's term range
    /// ([`RowSet::invariant_bucket`] names the bucket). Origins are always
    /// valid as-is — the warm-start path only reads those.
    pub(crate) fn get(&self, ci: usize) -> &Constraint {
        if ci < self.num_invariants() {
            let b = self.invariant_bucket(ci);
            &self.bucket_rows[b][ci - self.row_offsets[b]]
        } else {
            &self.knowledge[ci - self.num_invariants()]
        }
    }

    /// The bucket owning invariant row `ci` (`ci < num_invariants`).
    pub(crate) fn invariant_bucket(&self, ci: usize) -> usize {
        debug_assert!(ci < self.num_invariants());
        self.row_offsets.partition_point(|&o| o <= ci) - 1
    }
}

/// Outcome of one component solve, produced on a worker thread and merged
/// on the calling thread in component order (deterministic regardless of
/// which worker finished first).
pub(crate) struct ComponentSolution {
    /// Solved term values (count space), aligned with the concatenation of
    /// the component buckets' term ranges — callers scatter by walking
    /// `comp.buckets` and each bucket's `TermIndex::bucket_range` length
    /// (pure offset arithmetic; no per-term id list is materialised).
    pub(crate) values: Vec<f64>,
    /// Solver stats (`None` when preprocessing fully determined the system).
    pub(crate) stats: Option<SolveStats>,
    /// Constraints passed to the solver after preprocessing.
    pub(crate) num_constraints: usize,
    /// Free variables passed to the solver after preprocessing.
    pub(crate) num_free_terms: usize,
    /// `(global constraint index, dual value)` for the surviving rows of
    /// the accepted solve — fed back into the session's dual cache.
    pub(crate) duals: Vec<(usize, f64)>,
    /// Whether any warm-start seed was non-zero (refresh statistics).
    pub(crate) warm_seeded: bool,
}

/// Which numerical solver minimises the dual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverKind {
    /// LBFGS — the paper's choice, and the fastest (Malouf \[18\]).
    #[default]
    Lbfgs,
    /// Generalized Iterative Scaling (Darroch–Ratcliff).
    Gis,
    /// Improved Iterative Scaling (Della Pietra et al.).
    Iis,
    /// Steepest descent baseline.
    GradientDescent,
}

/// Engine configuration.
///
/// Construct via [`EngineConfig::default`] or, to change knobs, the
/// [`EngineConfig::builder`]:
///
/// ```
/// use privacy_maxent::engine::EngineConfig;
/// let config = EngineConfig::builder().threads(2).warm_start(true).build();
/// assert_eq!(config.threads, 2);
/// ```
///
/// The struct is `#[non_exhaustive]`: fields stay readable (and assignable
/// on an existing value) everywhere, but downstream crates cannot use
/// struct-literal construction — so future knobs are not breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct EngineConfig {
    /// Dual solver.
    pub solver: SolverKind,
    /// Apply the Section 5.5 optimisation: closed-form irrelevant buckets
    /// plus independent connected-component solves. Disable to reproduce
    /// the paper's performance experiments ("we have not applied the
    /// optimization techniques discussed in Section 5.5"). Note that
    /// disabling it also disables the session engine's component-granular
    /// invalidation: every delta dirties the single joint system.
    pub decompose: bool,
    /// Drop one redundant SA-invariant per bucket (Theorem 3).
    pub concise_invariants: bool,
    /// Convergence tolerance on the count-space constraint residual.
    pub tolerance: f64,
    /// Iteration budget per solve.
    pub max_iterations: usize,
    /// Residual (count space) above which the engine reports
    /// [`PmError::SolverFailed`] instead of returning a bad estimate.
    pub residual_limit: f64,
    /// Worker threads for per-component solves. `0` (the default) means
    /// every available core (`std::thread::available_parallelism`); `1`
    /// forces the sequential path. Any value yields bit-identical
    /// estimates — threads only change wall time.
    pub threads: usize,
    /// Minimum summed solve cost (local terms + constraint rows, see
    /// `component_cost`) per parallel task: a session refresh greedily
    /// fuses consecutive dirty components — in canonical component order —
    /// into batches reaching this floor, and each batch dispatches as one
    /// worker task solving its components sequentially over a shared
    /// scratch arena. Realistic workloads fragment into hundreds of tiny
    /// components whose per-task dispatch overhead rivals the solve
    /// itself; batching amortizes it. `0` disables fusion (one component
    /// per task, the historical dispatch). Like `threads`, any value is
    /// **bit-identical**: batching only changes which worker runs a
    /// component, never its local system or the merge order.
    pub batch_min_cost: u64,
    /// Warm-start dirty component re-solves in the
    /// [`crate::analyst::Analyst`] session from the previous refresh's dual
    /// vectors (`pm-solver`'s `*_from` entry points).
    ///
    /// `false` (the default) keeps every re-solve cold-started and therefore
    /// **bit-identical** to a from-scratch [`Engine::estimate`] with the
    /// same final knowledge set. `true` trades that for speed: the warm
    /// solve converges to the same optimum within
    /// [`EngineConfig::tolerance`], but along a different path, so low-order
    /// bits differ. One-shot `Engine::estimate` calls are unaffected either
    /// way (a fresh session has no duals to warm from).
    pub warm_start: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            solver: SolverKind::Lbfgs,
            decompose: true,
            concise_invariants: true,
            tolerance: 1e-9,
            max_iterations: 2000,
            // Count-space residual: 1e-2 of a record ≈ 1e-6 in probability
            // at Adult scale — far below anything visible in the KL metric.
            // Boundary instances (confidence-1 rules interacting with
            // invariants) approach their optimum only asymptotically, so an
            // exact-zero tolerance would mis-report them as failures.
            residual_limit: 1e-2,
            threads: 0,
            // Roughly 20–30 Adult-scale tiny components per task: large
            // enough that dispatch stops dominating, small enough to keep
            // hundreds of batches for the pool to balance.
            batch_min_cost: 1024,
            warm_start: false,
        }
    }
}

impl EngineConfig {
    /// Starts a builder seeded with [`EngineConfig::default`].
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder { config: Self::default() }
    }
}

/// Builder for [`EngineConfig`] — the only way (besides `Default`) for
/// downstream crates to construct one, since the config is
/// `#[non_exhaustive]`. Every setter mirrors the field it names.
#[derive(Debug, Clone)]
#[must_use = "builders do nothing until .build() is called"]
pub struct EngineConfigBuilder {
    config: EngineConfig,
}

impl EngineConfigBuilder {
    /// Sets [`EngineConfig::solver`].
    pub fn solver(mut self, solver: SolverKind) -> Self {
        self.config.solver = solver;
        self
    }

    /// Sets [`EngineConfig::decompose`].
    pub fn decompose(mut self, decompose: bool) -> Self {
        self.config.decompose = decompose;
        self
    }

    /// Sets [`EngineConfig::concise_invariants`].
    pub fn concise_invariants(mut self, concise: bool) -> Self {
        self.config.concise_invariants = concise;
        self
    }

    /// Sets [`EngineConfig::tolerance`].
    pub fn tolerance(mut self, tolerance: f64) -> Self {
        self.config.tolerance = tolerance;
        self
    }

    /// Sets [`EngineConfig::max_iterations`].
    pub fn max_iterations(mut self, max_iterations: usize) -> Self {
        self.config.max_iterations = max_iterations;
        self
    }

    /// Sets [`EngineConfig::residual_limit`].
    pub fn residual_limit(mut self, residual_limit: f64) -> Self {
        self.config.residual_limit = residual_limit;
        self
    }

    /// Sets [`EngineConfig::threads`].
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets [`EngineConfig::batch_min_cost`].
    pub fn batch_min_cost(mut self, batch_min_cost: u64) -> Self {
        self.config.batch_min_cost = batch_min_cost;
        self
    }

    /// Sets [`EngineConfig::warm_start`].
    pub fn warm_start(mut self, warm_start: bool) -> Self {
        self.config.warm_start = warm_start;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> EngineConfig {
        self.config
    }
}

/// Aggregated solve statistics — Figure 7 plots `iterations` and `elapsed`.
///
/// On an [`crate::analyst::Analyst`] session these describe the **last
/// refresh**: `num_components` / `num_irrelevant` snapshot the whole current
/// partition, while `component_stats`, `num_constraints` and
/// `num_free_terms` cover only the components that refresh actually solved
/// (a one-shot [`Engine::estimate`] solves everything in one refresh, so
/// there the historical meaning is unchanged).
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Per-solved-component statistics (irrelevant components don't solve).
    pub component_stats: Vec<SolveStats>,
    /// Wall time of the full estimate call (assembly + solves + read-out).
    pub total_elapsed: Duration,
    /// Number of independent components.
    pub num_components: usize,
    /// How many components were irrelevant (closed-form).
    pub num_irrelevant: usize,
    /// Constraints passed to solvers (after preprocessing).
    pub num_constraints: usize,
    /// Free variables passed to solvers (after preprocessing).
    pub num_free_terms: usize,
}

impl EngineStats {
    /// Total solver iterations across components.
    #[must_use]
    pub fn total_iterations(&self) -> usize {
        self.component_stats.iter().map(|s| s.iterations).sum()
    }

    /// Largest per-component iteration count (the paper's single-solve
    /// iteration metric when `decompose = false`).
    #[must_use]
    pub fn max_iterations(&self) -> usize {
        self.component_stats.iter().map(|s| s.iterations).max().unwrap_or(0)
    }

    /// Summed solver wall time (excludes assembly).
    #[must_use]
    pub fn solver_elapsed(&self) -> Duration {
        self.component_stats.iter().map(|s| s.elapsed).sum()
    }
}

/// The MaxEnt estimate: term values plus the derived `P(S | Q)`.
///
/// An estimate is pinned to the **table epoch** it was assembled against
/// ([`Estimate::epoch`]): in live-table deployments the published table
/// evolves through [`crate::delta::TableDelta`]s, and bucket/QI indices
/// from one epoch are not meaningful against another — the bounds-check
/// panics below name the epoch so a stale-handle mix-up is diagnosable.
#[derive(Debug, Clone)]
pub struct Estimate {
    term_values: Vec<f64>,
    index: Arc<TermIndex>,
    /// Dense `P(s | q)`: row `q`, column `s`.
    conditional: Vec<f64>,
    distinct_qi: usize,
    sa_cardinality: usize,
    qi_marginal: Vec<f64>,
    /// Epoch of the table this estimate describes (0 for a freshly built
    /// or delta-free table).
    epoch: u64,
    /// Solve statistics.
    pub stats: EngineStats,
}

impl Estimate {
    pub(crate) fn assemble(
        term_values: Vec<f64>,
        index: Arc<TermIndex>,
        table: &PublishedTable,
        epoch: u64,
        stats: EngineStats,
    ) -> Self {
        let distinct_qi = table.interner().distinct();
        let sa_cardinality = table.sa_cardinality();
        let mut joint = vec![0.0; distinct_qi * sa_cardinality];
        for (i, t) in index.iter() {
            joint[t.q * sa_cardinality + t.s as usize] += term_values[i];
        }
        let qi_marginal: Vec<f64> =
            (0..distinct_qi).map(|q| table.p_qi(q)).collect();
        let mut conditional = joint;
        for q in 0..distinct_qi {
            let pq = qi_marginal[q];
            for s in 0..sa_cardinality {
                let v = &mut conditional[q * sa_cardinality + s];
                *v = if pq > 0.0 { (*v / pq).clamp(0.0, 1.0) } else { 0.0 };
            }
        }
        Self {
            term_values,
            index,
            conditional,
            distinct_qi,
            sa_cardinality,
            qi_marginal,
            epoch,
            stats,
        }
    }

    /// The table epoch this estimate was assembled against (0 for a table
    /// that never saw a [`crate::delta::TableDelta`]).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Panics with a descriptive message when `(q, s)` lies outside the
    /// published domains — the raw slice arithmetic below would otherwise
    /// read a neighbouring row (for an oversized `s`) or panic opaquely.
    #[track_caller]
    fn check_query(&self, q: QiId, s: Value) {
        self.check_qi(q);
        assert!(
            (s as usize) < self.sa_cardinality,
            "SA value {s} out of range: the published table at epoch {} has {} sensitive values",
            self.epoch,
            self.sa_cardinality
        );
    }

    #[track_caller]
    fn check_qi(&self, q: QiId) {
        assert!(
            q < self.distinct_qi,
            "QI symbol {q} out of range: the published table at epoch {} has {} distinct QI tuples",
            self.epoch,
            self.distinct_qi
        );
    }

    /// The estimated joint `P(q, s, b)` (0 for admissible-domain terms that
    /// are excluded by a Zero-invariant).
    ///
    /// # Panics
    /// Panics (with a descriptive message) if `q`, `s` or `b` lies outside
    /// the published table's domains.
    #[must_use]
    #[track_caller]
    pub fn p_qsb(&self, q: QiId, s: Value, b: usize) -> f64 {
        self.check_query(q, s);
        assert!(
            b < self.index.num_buckets(),
            "bucket {b} out of range: the published table at epoch {} has {} buckets",
            self.epoch,
            self.index.num_buckets()
        );
        self.index
            .get(q, s, b)
            .map(|i| self.term_values[i])
            .unwrap_or(0.0)
    }

    /// The estimated conditional `P*(s | q)` — the paper's target quantity.
    ///
    /// # Panics
    /// Panics (with a descriptive message) if `q` or `s` lies outside the
    /// published table's domains.
    #[must_use]
    #[track_caller]
    pub fn conditional(&self, q: QiId, s: Value) -> f64 {
        self.check_query(q, s);
        self.conditional[q * self.sa_cardinality + s as usize]
    }

    /// The full conditional row `P*(· | q)`.
    ///
    /// # Panics
    /// Panics (with a descriptive message) if `q` is not a QI symbol of the
    /// published table.
    #[must_use]
    #[track_caller]
    pub fn conditional_row(&self, q: QiId) -> &[f64] {
        self.check_qi(q);
        &self.conditional[q * self.sa_cardinality..(q + 1) * self.sa_cardinality]
    }

    /// Number of distinct QI symbols.
    #[must_use]
    pub fn distinct_qi(&self) -> usize {
        self.distinct_qi
    }

    /// SA domain cardinality.
    #[must_use]
    pub fn sa_cardinality(&self) -> usize {
        self.sa_cardinality
    }

    /// `P(q)` marginals aligned with the table's interner.
    ///
    /// # Panics
    /// Panics (with a descriptive message) if `q` is not a QI symbol of the
    /// published table.
    #[must_use]
    #[track_caller]
    pub fn qi_marginal(&self, q: QiId) -> f64 {
        self.check_qi(q);
        self.qi_marginal[q]
    }

    /// All raw term values (aligned with the internal term index).
    #[must_use]
    pub fn term_values(&self) -> &[f64] {
        &self.term_values
    }

    /// The term index underlying this estimate.
    #[must_use]
    pub fn term_index(&self) -> &TermIndex {
        &self.index
    }
}

/// The Privacy-MaxEnt engine — the **one-shot** facade.
///
/// [`Engine::estimate`] runs the whole pipeline from scratch on every call.
/// Callers issuing repeated estimates over one published table (an evolving
/// adversary model) should hold a [`crate::analyst::Analyst`] session
/// instead, which this method is a thin wrapper over.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    /// Configuration for [`Engine::estimate`].
    pub config: EngineConfig,
}

impl Engine {
    /// Creates an engine.
    pub fn new(config: EngineConfig) -> Self {
        Self { config }
    }

    /// The uniform within-bucket baseline (Eq. 1 / Eq. 9) — what every
    /// pre-existing privacy metric implicitly computes, and provably the
    /// maxent solution when no background knowledge exists (Theorem 5).
    pub fn uniform_estimate(table: &PublishedTable) -> Estimate {
        let index = Arc::new(TermIndex::build(table));
        let mut values = vec![0.0; index.len()];
        fill_uniform(table, &index, (0..table.num_buckets()).collect::<Vec<_>>().as_slice(), &mut values);
        counts_to_probabilities(&mut values, table);
        Estimate::assemble(values, index, table, 0, EngineStats::default())
    }

    /// Computes the maxent estimate of `P(Q, S, B)` under `kb`.
    ///
    /// Implemented as a one-shot [`Analyst`] session: compile, partition,
    /// refresh once, discard. The numeric path (constraint ordering,
    /// preprocessing, cold-started solves, merge order) is identical to the
    /// pre-session engine, so results are bit-for-bit unchanged — and
    /// bit-identical to an incremental session arriving at the same
    /// knowledge set with [`EngineConfig::warm_start`] off.
    pub fn estimate(
        &self,
        table: &PublishedTable,
        kb: &KnowledgeBase,
    ) -> Result<Estimate, PmError> {
        if kb.has_individual_knowledge() {
            return Err(PmError::RequiresIndividualEngine);
        }
        let start = std::time::Instant::now(); // pm-audit: allow(determinism, reason = "wall-clock telemetry only: feeds solve/build duration stats, never the estimate bytes")
        let mut analyst = Analyst::new_deferred(table.clone(), self.config.clone());
        analyst
            .add_knowledge_batch(kb.items())
            .map_err(PmError::into_root_cause)?;
        analyst.refresh().map_err(PmError::into_root_cause)?;
        let mut estimate = analyst.into_estimate();
        // Keep the historical meaning of `total_elapsed` for the one-shot
        // facade (index build + compilation + solves + read-out); a session
        // refresh alone would under-report it by the whole assembly stage,
        // skewing the Figure 5-7 solve-time series in `pm-bench`.
        estimate.stats.total_elapsed = start.elapsed();
        Ok(estimate)
    }
}

/// Reusable per-worker scratch for [`solve_component`]: every buffer the
/// localisation stage needs, cleared (not freed) between solves, so a
/// worker that processes a whole batch of components performs the
/// localisation with **zero steady-state allocations** — capacities warm
/// up to the batch's largest component and stay. Constraint rows are
/// assembled **contiguously per component** ([`FlatRows`] CSR-style
/// storage: one coefficient buffer + prefix-sum bounds), replacing the
/// per-row `Vec` clones and the per-term `HashMap` the historical path
/// paid for on every solve.
#[derive(Debug, Default)]
pub(crate) struct SolveScratch {
    /// Local start offset of each component bucket's term range.
    concat_start: Vec<usize>,
    /// Global constraint index of each local row.
    row_ids: Vec<usize>,
    /// Flat local rows: concatenated coefficients…
    coeffs: Vec<(usize, f64)>,
    /// …prefix-sum row bounds (`len = rows + 1`)…
    bounds: Vec<usize>,
    /// …and count-space targets.
    rhs: Vec<f64>,
    /// Dual seeds aligned with the local rows (warm starts).
    seed: Vec<f64>,
    /// Crossover (stage 2) pinned-system buffers.
    pin_coeffs: Vec<(usize, f64)>,
    pin_bounds: Vec<usize>,
    pin_rhs: Vec<f64>,
}

/// Solves one component's maxent subproblem. Pure with respect to shared
/// state (runs on a worker thread); the caller merges the returned
/// [`ComponentSolution`] in component order.
///
/// The whole solve happens in **count space** (targets and values are
/// record counts): counts are integers, so a component whose buckets and
/// knowledge rows are untouched by a table delta sees a bit-identical
/// local system in every epoch — the foundation of the session engine's
/// reuse guarantee. The caller divides by `N` when assembling an estimate.
///
/// `warm` maps a global constraint index to a dual seed (the session's dual
/// cache); `None` cold-starts from the origin, which is the bit-stable
/// path. `scratch` is cleared before use, so a reused (batch) scratch and
/// a fresh one produce identical results — only allocation traffic
/// differs.
pub(crate) fn solve_component(
    config: &EngineConfig,
    table: &PublishedTable,
    index: &TermIndex,
    rows: RowSet<'_>,
    comp: &Component,
    warm: Option<&(dyn Fn(usize) -> f64 + Sync)>,
    scratch: &mut SolveScratch,
) -> Result<ComponentSolution, PmError> {
    let SolveScratch {
        concat_start,
        row_ids,
        coeffs,
        bounds,
        rhs,
        seed,
        pin_coeffs,
        pin_bounds,
        pin_rhs,
    } = scratch;
    concat_start.clear();
    row_ids.clear();
    coeffs.clear();
    bounds.clear();
    rhs.clear();
    seed.clear();

    // Local term space: concatenation of the component buckets' ranges.
    // `concat_start[i]` is where comp.buckets[i]'s range begins locally.
    let mut n_local = 0usize;
    for &b in &comp.buckets {
        concat_start.push(n_local);
        n_local += index.bucket_range(b).len();
    }
    // A global term localises by pure offset arithmetic: find its bucket,
    // find the bucket's position in the component, add the in-bucket
    // offset — no per-term map to build or hash.
    let local_of = |t: usize| -> usize {
        let b = index.bucket_of(t);
        let pos = comp
            .buckets
            .binary_search(&b)
            .expect("knowledge row terms lie in the component's buckets");
        concat_start[pos] + (t - index.bucket_range(b).start)
    };

    // Localised constraints, assembled contiguously (CSR-style rows).
    // Invariant rows arrive in bucket-local coordinates (count-space rhs)
    // from the shared artifact and localise by offset arithmetic;
    // knowledge rows carry global term ids through `local_of`.
    bounds.push(0);
    for (i, &b) in comp.buckets.iter().enumerate() {
        let start = concat_start[i];
        for (k, c) in rows.bucket_rows[b].iter().enumerate() {
            row_ids.push(rows.row_offsets[b] + k);
            coeffs.extend(c.coeffs.iter().map(|&(t, v)| (start + t, v)));
            bounds.push(coeffs.len());
            rhs.push(c.rhs);
        }
    }
    for &ci in &comp.knowledge_rows {
        let c = rows.get(ci);
        row_ids.push(ci);
        coeffs.extend(c.coeffs.iter().map(|&(t, v)| (local_of(t), v)));
        bounds.push(coeffs.len());
        rhs.push(c.rhs);
    }
    let num_rows = rhs.len();
    let local = FlatRows { coeffs, bounds, rhs };

    // Dual seeds aligned with the local rows (zeros when cold).
    let seed: Option<&[f64]> = match warm {
        Some(w) => {
            seed.extend(row_ids.iter().map(|&ci| w(ci)));
            Some(seed.as_slice())
        }
        None => None,
    };
    let warm_seeded = seed.is_some_and(|s| s.iter().any(|&v| v != 0.0));

    // Component record mass in counts (for GIS's slack target).
    let comp_mass: f64 =
        comp.buckets.iter().map(|&b| table.bucket(b).size() as f64).sum();

    // Stage 1: direct solve.
    let attempt = solve_constraints(config, local, n_local, comp_mass, seed)?;
    let SolvedSystem {
        values: mut best_values,
        stats: mut best_stats,
        residual: mut best_residual,
        num_constraints: nc,
        num_free_terms: nf,
        duals: mut best_duals,
    } = attempt;

    // Stage 2 (active-set crossover): boundary optima — terms forced to
    // zero only by *combinations* of constraints — make the exponential
    // dual converge asymptotically. After the first solve, pin every
    // numerically dead term to exact zero and re-solve the interior
    // problem, which is then well-conditioned.
    if best_residual > config.residual_limit && config.solver == SolverKind::Lbfgs {
        const DEAD: f64 = 1e-6; // counts; genuine mass is ≥ O(1e-2)
        const MAX_ROUNDS: usize = 5;
        pin_coeffs.clear();
        pin_bounds.clear();
        pin_rhs.clear();
        pin_coeffs.extend_from_slice(local.coeffs);
        pin_bounds.extend_from_slice(local.bounds);
        pin_rhs.extend_from_slice(local.rhs);
        let mut dead: Vec<bool> = vec![false; n_local];
        for _round in 0..MAX_ROUNDS {
            let mut any = false;
            for (t, &v) in best_values.iter().enumerate() {
                if !dead[t] && v > 0.0 && v < DEAD {
                    dead[t] = true;
                    pin_coeffs.push((t, 1.0));
                    pin_bounds.push(pin_coeffs.len());
                    pin_rhs.push(0.0);
                    any = true;
                }
            }
            if !any {
                break;
            }
            let pinned = FlatRows { coeffs: pin_coeffs, bounds: pin_bounds, rhs: pin_rhs };
            let r2 = solve_constraints(config, pinned, n_local, comp_mass, seed);
            if std::env::var("PM_DEBUG").is_ok() {
                match &r2 {
                    Ok(s) => eprintln!(
                        "crossover round: residual {:.3e} nc={} nf={} (best {best_residual:.3e})",
                        s.residual, s.num_constraints, s.num_free_terms
                    ),
                    Err(e) => eprintln!("crossover round failed: {e}"),
                }
            }
            let Ok(sys2) = r2 else {
                break; // over-pinned: keep the best solution so far
            };
            if sys2.residual < best_residual {
                best_values = sys2.values;
                best_residual = sys2.residual;
                best_duals = sys2.duals;
                if let Some(b) = sys2.stats {
                    match &mut best_stats {
                        Some(a) => {
                            a.iterations += b.iterations;
                            a.fn_evals += b.fn_evals;
                            a.elapsed += b.elapsed;
                            a.final_residual = b.final_residual;
                            a.stop = b.stop;
                        }
                        None => best_stats = Some(b),
                    }
                }
                if best_residual <= config.residual_limit {
                    break;
                }
            } else {
                break; // pinning stopped helping
            }
        }
    }

    if best_residual > config.residual_limit {
        return Err(PmError::SolverFailed { residual: best_residual });
    }

    // Values stay in count space — the epoch-stable currency; estimates
    // divide by `N` at assembly.
    // Crossover rows (appended past the local list) are pinning artefacts,
    // not cacheable duals.
    let duals: Vec<(usize, f64)> = best_duals
        .into_iter()
        .filter(|&(local, _)| local < num_rows)
        .map(|(local, lam)| (row_ids[local], lam))
        .collect();
    Ok(ComponentSolution {
        values: best_values,
        stats: best_stats,
        num_constraints: nc,
        num_free_terms: nf,
        duals,
        warm_seeded,
    })
}

/// Preprocesses and solves one constraint system (count space).
fn solve_constraints(
    config: &EngineConfig,
    rows: FlatRows<'_>,
    n_local: usize,
    comp_mass: f64,
    seed: Option<&[f64]>,
) -> Result<SolvedSystem, PmError> {
    let reduced = preprocess_flat(rows, n_local)?;
    let nc = reduced.rows.len();
    let nf = reduced.num_free();
    if nf == 0 {
        return Ok(SolvedSystem {
            values: reduced.expand(&[]),
            stats: None,
            residual: 0.0,
            num_constraints: nc,
            num_free_terms: 0,
            duals: Vec::new(),
        });
    }
    let a = CsrMatrix::from_rows(nf, &reduced.rows);
    let dual = MaxEntDual::new(a, reduced.rhs.clone());
    // Warm seeds travel by *row identity* (the surviving original
    // constraint), so a system whose preprocessing outcome changed between
    // refreshes still seeds each surviving row with its own prior dual.
    let lambda0: Vec<f64> = match seed {
        Some(s) => reduced
            .row_origin
            .iter()
            .map(|&o| if o < s.len() { s[o] } else { 0.0 })
            .collect(),
        None => vec![0.0; dual.num_constraints()],
    };
    let (solution, primal) = match config.solver {
        SolverKind::Lbfgs => {
            let cfg = LbfgsConfig {
                tolerance: config.tolerance,
                max_iterations: config.max_iterations,
                ..Default::default()
            };
            let solver = Lbfgs::new(cfg);
            let mut sol = solver.minimize(&dual, &lambda0);
            // One warm restart (fresh curvature history) often recovers
            // remaining digits cheaply before the crossover kicks in.
            let mut p = dual.primal(&sol.x);
            if dual.residual(&p) > config.residual_limit {
                let restart = solver.minimize(&dual, &sol.x);
                let iterations = sol.stats.iterations + restart.stats.iterations;
                let fn_evals = sol.stats.fn_evals + restart.stats.fn_evals;
                let elapsed = sol.stats.elapsed + restart.stats.elapsed;
                sol = restart;
                sol.stats.iterations = iterations;
                sol.stats.fn_evals = fn_evals;
                sol.stats.elapsed = elapsed;
                p = dual.primal(&sol.x);
            }
            (sol, p)
        }
        SolverKind::Iis => {
            let cfg = ScalingConfig {
                tolerance: config.tolerance,
                max_iterations: config.max_iterations,
            };
            let sol = iis_from(&dual, &cfg, &lambda0);
            let p = dual.primal(&sol.x);
            (sol, p)
        }
        SolverKind::Gis => {
            let cfg = ScalingConfig {
                tolerance: config.tolerance,
                max_iterations: config.max_iterations,
            };
            // Free mass = component record count − already-fixed mass.
            let fixed_mass: f64 = reduced.fixed.iter().map(|&(_, v)| v).sum();
            let (sol, p) =
                gis_with_primal_from(&dual, comp_mass - fixed_mass, &cfg, &lambda0);
            (sol, p)
        }
        SolverKind::GradientDescent => {
            let cfg = GradientDescentConfig {
                tolerance: config.tolerance,
                max_iterations: config.max_iterations,
                ..Default::default()
            };
            let sol = gradient_descent(&dual, &lambda0, &cfg);
            let p = dual.primal(&sol.x);
            (sol, p)
        }
    };
    let residual = dual.residual(&primal);
    let duals = reduced
        .row_origin
        .iter()
        .copied()
        .zip(solution.x.iter().copied())
        .collect();
    Ok(SolvedSystem {
        values: reduced.expand(&primal),
        stats: Some(solution.stats),
        residual,
        num_constraints: nc,
        num_free_terms: nf,
        duals,
    })
}

// Compile-time contract: everything a worker thread borrows (engine,
// published table, term index, constraints) or returns must be
// `Send + Sync` for the scoped pool driving [`solve_component`].
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Engine>();
    send_sync::<EngineConfig>();
    send_sync::<Estimate>();
    send_sync::<Constraint>();
    send_sync::<Component>();
    send_sync::<ComponentSolution>();
    send_sync::<PmError>();
    send_sync::<TermIndex>();
    send_sync::<PublishedTable>();
};

/// Fills `values` with the Theorem-5 closed form (count space) for the
/// given buckets (one [`uniform_bucket_values`] copy per bucket range).
pub(crate) fn fill_uniform(
    table: &PublishedTable,
    index: &TermIndex,
    buckets: &[usize],
    values: &mut [f64],
) {
    for &b in buckets {
        values[index.bucket_range(b)].copy_from_slice(&uniform_bucket_values(table, index, b));
    }
}

/// The Theorem-5 closed form for one bucket, aligned with the bucket's term
/// range, in **count space**: `qc · sc / N_b` (divide by `N` for the
/// paper's `P(q, s, b) = P(q, b) · (#s in b) / N_b`). Count space makes the
/// value a function of the bucket's own multiset alone — bit-identical
/// across table epochs that leave the bucket untouched. This is the single
/// home of the formula, and the session engine's copy-on-write overlay unit
/// (a one-shot session has no shared baseline to revert to, so a dirty
/// irrelevant bucket materialises its closed form directly).
pub(crate) fn uniform_bucket_values(
    table: &PublishedTable,
    index: &TermIndex,
    b: usize,
) -> Vec<f64> {
    let range = index.bucket_range(b);
    let start = range.start;
    let mut values = vec![0.0; range.len()];
    let bucket = table.bucket(b);
    let nb = bucket.size() as f64;
    for &(q, qc) in bucket.qi_counts() {
        for &(s, sc) in bucket.sa_counts() {
            let t = index.get(q, s, b).expect("admissible by construction");
            values[t - start] = qc as f64 * (sc as f64 / nb);
        }
    }
    values
}

/// Converts a count-space term vector into probability space in place —
/// the one `÷ N` every estimate assembly applies, kept in a single home so
/// all paths round identically (bit-identity across epochs and sessions
/// depends on it).
pub(crate) fn counts_to_probabilities(values: &mut [f64], table: &PublishedTable) {
    let n = table.total_records() as f64;
    for v in values {
        *v /= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::CoreError;
    use crate::knowledge::Knowledge;
    use pm_anonymize::fixtures::paper_example;

    fn kb(items: Vec<Knowledge>) -> KnowledgeBase {
        let mut kb = KnowledgeBase::new();
        for i in items {
            kb.push(i).unwrap();
        }
        kb
    }

    /// Theorem 5 (consistency): with no knowledge, the maxent solve equals
    /// the uniform closed form.
    #[test]
    fn no_knowledge_matches_uniform() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        for decompose in [true, false] {
            let engine = Engine::new(EngineConfig { decompose, ..Default::default() });
            let est = engine.estimate(&table, &KnowledgeBase::new()).unwrap();
            for q in 0..est.distinct_qi() {
                for s in 0..est.sa_cardinality() as u16 {
                    assert!(
                        (est.conditional(q, s) - uniform.conditional(q, s)).abs() < 1e-6,
                        "decompose={decompose} q={q} s={s}: {} vs {}",
                        est.conditional(q, s),
                        uniform.conditional(q, s)
                    );
                }
            }
        }
    }

    /// Section 3.1's worked inference: knowing P(s1|q2) = 0 and
    /// P(s1 or s2 | q3) = 0 pins bucket 1 completely: q3 → s3, q2 → s2, and
    /// the two q1 records split over {s1, s2}.
    ///
    /// Paper symbols → codes: s1 = breast cancer (2), s2 = flu (0),
    /// s3 = pneumonia (1); q2 = {female, college}, q3 = {male, high school}.
    #[test]
    fn section31_zero_knowledge_inference() {
        let (_, table) = paper_example();
        let q1 = table.interner().lookup(&[0, 0]).unwrap();
        let q2 = table.interner().lookup(&[1, 0]).unwrap();
        let q3 = table.interner().lookup(&[0, 1]).unwrap();
        let knowledge = kb(vec![
            // P(s1 | q2) = 0: female-college never has breast cancer.
            Knowledge::Conditional { antecedent: vec![(0, 1), (1, 0)], sa: 2, probability: 0.0 },
            // P(s1 | q3) = 0 and P(s2 | q3) = 0.
            Knowledge::Conditional { antecedent: vec![(0, 0), (1, 1)], sa: 2, probability: 0.0 },
            Knowledge::Conditional { antecedent: vec![(0, 0), (1, 1)], sa: 0, probability: 0.0 },
        ]);
        let est = Engine::default().estimate(&table, &knowledge).unwrap();
        // In bucket 1 (index 0): q3 must map to s3 = pneumonia (code 1).
        // P(q3, pneumonia, b=0) = 1/10.
        assert!((est.p_qsb(q3, 1, 0) - 0.1).abs() < 1e-6);
        // q2 (Cathy) must map to s1 = breast cancer in bucket 1: the
        // pneumonia is taken by q3 and flu×2 ... wait: bucket 1 SA multiset
        // is {bc, flu, flu, pneu}; q2 cannot have bc? No: the knowledge says
        // q2 (female college) has no *breast cancer* → q2 ∈ {flu, pneu};
        // q3 has neither bc nor flu → q3 = pneu; so q2 = flu, and the two
        // q1 records share {bc, flu}.
        assert!(est.conditional(q2, 2) < 1e-6, "q2 cannot have breast cancer");
        assert!((est.p_qsb(q2, 0, 0) - 0.1).abs() < 1e-6, "q2 → flu in bucket 1");
        // The two q1 records hold {breast cancer, flu}: P(q1, bc, b0) = 1/10.
        assert!((est.p_qsb(q1, 2, 0) - 0.1).abs() < 1e-6);
    }

    /// All solvers agree on the paper example with mid-strength knowledge.
    #[test]
    fn solvers_agree() {
        let (_, table) = paper_example();
        // P(flu | male) = 1/3 keeps the optimum strictly interior (1/2
        // would hand all three flus to male records and force boundary
        // zeros, which the iterative-scaling solvers cannot represent).
        let knowledge = kb(vec![Knowledge::Conditional {
            antecedent: vec![(0, 0)], // male
            sa: 0,                    // flu
            probability: 1.0 / 3.0,
        }]);
        let reference = Engine::default().estimate(&table, &knowledge).unwrap();
        for solver in [SolverKind::Gis, SolverKind::Iis, SolverKind::GradientDescent] {
            let engine = Engine::new(EngineConfig {
                solver,
                max_iterations: 200_000,
                ..Default::default()
            });
            let est = engine.estimate(&table, &knowledge).unwrap();
            for q in 0..est.distinct_qi() {
                for s in 0..5u16 {
                    assert!(
                        (est.conditional(q, s) - reference.conditional(q, s)).abs() < 1e-4,
                        "{solver:?} disagrees at q={q} s={s}: {} vs {}",
                        est.conditional(q, s),
                        reference.conditional(q, s),
                    );
                }
            }
        }
    }

    /// Decomposed and joint solves agree in the presence of cross-bucket
    /// knowledge (the Section 5.5 generalisation is exact).
    #[test]
    fn decomposition_is_exact() {
        let (_, table) = paper_example();
        let knowledge = kb(vec![Knowledge::Conditional {
            antecedent: vec![(0, 0), (1, 1)], // q3
            sa: 1,                            // pneumonia
            probability: 0.5,
        }]);
        let joint = Engine::new(EngineConfig { decompose: false, ..Default::default() })
            .estimate(&table, &knowledge)
            .unwrap();
        let split = Engine::new(EngineConfig { decompose: true, ..Default::default() })
            .estimate(&table, &knowledge)
            .unwrap();
        assert_eq!(split.stats.num_irrelevant, 1, "bucket 3 is irrelevant");
        for q in 0..joint.distinct_qi() {
            for s in 0..5u16 {
                assert!(
                    (joint.conditional(q, s) - split.conditional(q, s)).abs() < 1e-6,
                    "q={q} s={s}"
                );
            }
        }
    }

    /// Knowledge constraints are actually satisfied by the estimate.
    #[test]
    fn knowledge_is_respected() {
        let (_, table) = paper_example();
        let knowledge = kb(vec![Knowledge::Conditional {
            antecedent: vec![(0, 0)], // male
            sa: 0,                    // flu
            probability: 0.3,
        }]);
        let est = Engine::default().estimate(&table, &knowledge).unwrap();
        // Σ_q∈male P(q)·P*(flu|q) should equal 0.3·P(male) = 0.18.
        let mut total = 0.0;
        for (q, tuple, _) in table.interner().iter() {
            if tuple[0] == 0 {
                total += est.qi_marginal(q) * est.conditional(q, 0);
            }
        }
        assert!((total - 0.18).abs() < 1e-6, "P(flu, male) = {total}");
    }

    /// Estimates are proper conditional distributions.
    #[test]
    fn conditionals_are_distributions() {
        let (_, table) = paper_example();
        let knowledge = kb(vec![Knowledge::Conditional {
            antecedent: vec![(1, 0)], // degree = college
            sa: 3,                    // hiv
            probability: 0.4,
        }]);
        let est = Engine::default().estimate(&table, &knowledge).unwrap();
        for q in 0..est.distinct_qi() {
            let sum: f64 = est.conditional_row(q).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {q} sums to {sum}");
            assert!(est.conditional_row(q).iter().all(|&v| (0.0..=1.0 + 1e-9).contains(&v)));
        }
    }

    /// Infeasible knowledge still surfaces an error from the worker pool
    /// (the abort flag skips doomed components, it must not swallow the
    /// failure).
    #[test]
    fn infeasible_knowledge_errors_on_any_thread_count() {
        let (_, table) = paper_example();
        // P(flu | male) = 0 is infeasible: bucket 1 holds two flus but
        // only one non-male record.
        let knowledge = kb(vec![Knowledge::Conditional {
            antecedent: vec![(0, 0)],
            sa: 0,
            probability: 0.0,
        }]);
        for threads in [1usize, 4] {
            let r = Engine::new(EngineConfig { threads, ..Default::default() })
                .estimate(&table, &knowledge);
            assert!(r.is_err(), "threads={threads}: expected failure, got Ok");
        }
    }

    #[test]
    fn individual_knowledge_rejected() {
        let (_, table) = paper_example();
        let knowledge = kb(vec![Knowledge::IndividualSa {
            pseudonym: 0,
            sa: 0,
            probability: 0.2,
        }]);
        assert!(matches!(
            Engine::default().estimate(&table, &knowledge),
            Err(CoreError::RequiresIndividualEngine)
        ));
    }

    /// Confidence-1 negative rules pin terms bucket-locally, so they must
    /// not fuse buckets into one component — and the split decomposition
    /// still matches the joint solve exactly.
    #[test]
    fn zero_rules_do_not_fuse_components() {
        let (_, table) = paper_example();
        // P(hiv | male) = 0 touches buckets 1 and 2.
        let knowledge = kb(vec![Knowledge::Conditional {
            antecedent: vec![(0, 0)],
            sa: 3,
            probability: 0.0,
        }]);
        let split = Engine::default().estimate(&table, &knowledge).unwrap();
        assert_eq!(split.stats.num_components, 3, "buckets 1 and 2 stay separate");
        assert_eq!(split.stats.num_irrelevant, 1, "bucket 0 is untouched");
        let joint = Engine::new(EngineConfig { decompose: false, ..Default::default() })
            .estimate(&table, &knowledge)
            .unwrap();
        for q in 0..joint.distinct_qi() {
            for s in 0..5u16 {
                assert!(
                    (joint.conditional(q, s) - split.conditional(q, s)).abs() < 1e-6,
                    "q={q} s={s}"
                );
            }
        }
    }

    /// The worker-pool size never changes the estimate: per-component
    /// solves are internally sequential and merged in component order.
    #[test]
    fn thread_count_is_bit_identical() {
        let (_, table) = paper_example();
        let knowledge = kb(vec![
            Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 0, probability: 0.3 },
            Knowledge::Conditional { antecedent: vec![(1, 0)], sa: 3, probability: 0.4 },
        ]);
        let reference = Engine::new(EngineConfig { threads: 1, ..Default::default() })
            .estimate(&table, &knowledge)
            .unwrap();
        for threads in [0, 2, 4, 8] {
            let est = Engine::new(EngineConfig { threads, ..Default::default() })
                .estimate(&table, &knowledge)
                .unwrap();
            assert_eq!(est.term_values(), reference.term_values(), "threads={threads}");
            for q in 0..est.distinct_qi() {
                assert_eq!(est.conditional_row(q), reference.conditional_row(q));
            }
            assert_eq!(
                est.stats.component_stats.len(),
                reference.stats.component_stats.len()
            );
            assert_eq!(est.stats.num_free_terms, reference.stats.num_free_terms);
        }
    }

    #[test]
    fn stats_reflect_structure() {
        let (_, table) = paper_example();
        let est = Engine::default().estimate(&table, &KnowledgeBase::new()).unwrap();
        assert_eq!(est.stats.num_components, 3);
        assert_eq!(est.stats.num_irrelevant, 3);
        assert!(est.stats.component_stats.is_empty(), "nothing to solve");
        assert_eq!(est.stats.total_iterations(), 0);
    }

    #[test]
    #[should_panic(expected = "QI symbol 99 out of range")]
    fn conditional_row_checks_qi_bounds() {
        let (_, table) = paper_example();
        let est = Engine::uniform_estimate(&table);
        let _ = est.conditional_row(99);
    }

    #[test]
    #[should_panic(expected = "SA value 200 out of range")]
    fn conditional_checks_sa_bounds() {
        let (_, table) = paper_example();
        let est = Engine::uniform_estimate(&table);
        let _ = est.conditional(0, 200);
    }

    #[test]
    #[should_panic(expected = "bucket 77 out of range")]
    fn p_qsb_checks_bucket_bounds() {
        let (_, table) = paper_example();
        let est = Engine::uniform_estimate(&table);
        let _ = est.p_qsb(0, 0, 77);
    }

    #[test]
    #[should_panic(expected = "QI symbol 42 out of range")]
    fn p_qsb_checks_qi_bounds() {
        let (_, table) = paper_example();
        let est = Engine::uniform_estimate(&table);
        let _ = est.p_qsb(42, 0, 0);
    }

    /// Bounds-check panics name the estimate's table epoch, so a handle
    /// from one epoch misused against another is diagnosable (a uniform
    /// estimate is always epoch 0 — the session path is covered by the
    /// rebase tests, which assert `Estimate::epoch` advances).
    #[test]
    #[should_panic(expected = "the published table at epoch 0 has 3 buckets")]
    fn bounds_panics_name_the_epoch() {
        let (_, table) = paper_example();
        let est = Engine::uniform_estimate(&table);
        assert_eq!(est.epoch(), 0);
        let _ = est.p_qsb(0, 0, 77);
    }

    /// In-range lookups still behave exactly as before the bounds checks:
    /// inadmissible (Zero-invariant) terms read as probability zero.
    #[test]
    fn p_qsb_inadmissible_term_is_zero() {
        let (_, table) = paper_example();
        let est = Engine::uniform_estimate(&table);
        let q1 = table.interner().lookup(&[0, 0]).unwrap();
        // q1 does not appear in bucket 3 → inadmissible, not a panic.
        assert_eq!(est.p_qsb(q1, 0, 2), 0.0);
    }
}
