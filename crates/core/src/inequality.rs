//! Inequality background knowledge (Section 4.5 — the paper's future work,
//! implemented here as an extension).
//!
//! Vague knowledge like `0.3 − ε ≤ P(s | Qv) ≤ 0.3 + ε` becomes a *box*
//! constraint `lo ≤ Σ terms ≤ hi`. Following Kazama & Tsujii's inequality
//! maxent, the Lagrangian gains two non-negative multipliers per box:
//!
//! ```text
//! p_i(λ, μ⁺, μ⁻) = exp( aᵢᵀλ + gᵢᵀ(μ⁻ − μ⁺) − 1 )
//! dual(λ, μ)     = Σ p_i − cᵀλ − loᵀμ⁻ + hiᵀμ⁺,   μ⁺, μ⁻ ≥ 0
//! ```
//!
//! which we minimise by projected gradient descent with backtracking (the
//! equality multipliers stay free; the inequality multipliers are clamped
//! at zero, encoding complementary slackness).

use pm_linalg::CsrMatrix;

use crate::error::CoreError;

/// A box constraint `lo ≤ Σ coef·p ≤ hi` over term indices.
#[derive(Debug, Clone)]
pub struct BoxConstraint {
    /// `(term, coefficient)` pairs (non-negative coefficients).
    pub coeffs: Vec<(usize, f64)>,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

/// Configuration of the projected solver.
#[derive(Debug, Clone)]
pub struct InequalityConfig {
    /// Step size for projected gradient descent.
    pub step: f64,
    /// Convergence tolerance on the projected-gradient norm.
    pub tolerance: f64,
    /// Iteration budget.
    pub max_iterations: usize,
}

impl Default for InequalityConfig {
    fn default() -> Self {
        Self { step: 0.5, tolerance: 1e-8, max_iterations: 200_000 }
    }
}

/// Result of an inequality-constrained maxent solve.
#[derive(Debug, Clone)]
pub struct InequalitySolution {
    /// Primal term values.
    pub p: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final max violation of equality constraints and boxes.
    pub violation: f64,
}

/// Solves `max H(p)` s.t. `A p = c` and the given boxes, over `n` terms.
pub fn solve_with_boxes(
    equalities: &CsrMatrix,
    targets: &[f64],
    boxes: &[BoxConstraint],
    n_terms: usize,
    cfg: &InequalityConfig,
) -> Result<InequalitySolution, CoreError> {
    for b in boxes {
        if b.lo > b.hi {
            return Err(CoreError::InvalidKnowledge {
                detail: format!("empty box [{}, {}]", b.lo, b.hi),
            });
        }
    }
    let w = equalities.nrows();
    let k = boxes.len();
    let g = CsrMatrix::from_rows(
        n_terms,
        &boxes
            .iter()
            .map(|b| b.coeffs.clone())
            .collect::<Vec<_>>(),
    );

    // Dual variables: equality multipliers free; box multipliers ≥ 0.
    let mut lambda = vec![0.0; w];
    let mut mu_plus = vec![0.0; k];
    let mut mu_minus = vec![0.0; k];

    let mut exponent = vec![0.0; n_terms];
    let mut scratch = vec![0.0; n_terms];

    // Dual value and primal at a dual point.
    let eval = |lambda: &[f64],
                mu_plus: &[f64],
                mu_minus: &[f64],
                exponent: &mut Vec<f64>,
                scratch: &mut Vec<f64>|
     -> (f64, Vec<f64>, Vec<f64>, Vec<f64>) {
        equalities.matvec_transpose(lambda, exponent);
        let diff: Vec<f64> = mu_minus.iter().zip(mu_plus).map(|(a, b)| a - b).collect();
        g.matvec_transpose(&diff, scratch);
        let p: Vec<f64> = (0..n_terms)
            .map(|i| (exponent[i] + scratch[i] - 1.0).exp())
            .collect();
        let mut ap = vec![0.0; w];
        equalities.matvec(&p, &mut ap);
        let mut gp = vec![0.0; k];
        g.matvec(&p, &mut gp);
        let mut value: f64 = p.iter().sum();
        for j in 0..w {
            value -= targets[j] * lambda[j];
        }
        for j in 0..k {
            value -= boxes[j].lo * mu_minus[j];
            value += boxes[j].hi * mu_plus[j];
        }
        (value, p, ap, gp)
    };

    let kkt_violation = |mu_plus: &[f64], mu_minus: &[f64], ap: &[f64], gp: &[f64]| -> f64 {
        let mut v = 0.0f64;
        for j in 0..w {
            v = v.max((ap[j] - targets[j]).abs());
        }
        for j in 0..k {
            v = v.max((gp[j] - boxes[j].hi).max(0.0));
            v = v.max((boxes[j].lo - gp[j]).max(0.0));
            if mu_minus[j] > 0.0 {
                v = v.max((gp[j] - boxes[j].lo).abs());
            }
            if mu_plus[j] > 0.0 {
                v = v.max((boxes[j].hi - gp[j]).abs());
            }
        }
        v
    };

    let (mut value, mut _p, mut ap, mut gp) =
        eval(&lambda, &mu_plus, &mu_minus, &mut exponent, &mut scratch);
    let mut iterations = 0;
    let mut step = cfg.step;

    for iter in 0..cfg.max_iterations {
        iterations = iter + 1;
        let violation = kkt_violation(&mu_plus, &mu_minus, &ap, &gp);
        if violation <= cfg.tolerance {
            return Ok(InequalitySolution { p: _p, iterations, violation });
        }

        // Projected-gradient trial with Armijo backtracking on the dual,
        // Jacobi-preconditioned: the dual Hessian's diagonal entry for a
        // multiplier is Σ coef²·pᵢ over its row ≈ the row's current mass,
        // so dividing each gradient coordinate by that mass equalises the
        // landscape across constraints of very different magnitudes.
        // Gradients: ∂λ = Ap − c; ∂μ⁻ = Gp − lo; ∂μ⁺ = hi − Gp.
        let precond = |mass: f64| 1.0 / mass.abs().max(1e-3);
        let grad_lambda: Vec<f64> = (0..w)
            .map(|j| (ap[j] - targets[j]) * precond(targets[j].max(ap[j])))
            .collect();
        let grad_minus: Vec<f64> = (0..k)
            .map(|j| (gp[j] - boxes[j].lo) * precond(gp[j]))
            .collect();
        let grad_plus: Vec<f64> = (0..k)
            .map(|j| (boxes[j].hi - gp[j]) * precond(gp[j]))
            .collect();
        let mut accepted = false;
        for _ in 0..40 {
            let trial_lambda: Vec<f64> =
                (0..w).map(|j| lambda[j] - step * grad_lambda[j]).collect();
            let trial_minus: Vec<f64> =
                (0..k).map(|j| (mu_minus[j] - step * grad_minus[j]).max(0.0)).collect();
            let trial_plus: Vec<f64> =
                (0..k).map(|j| (mu_plus[j] - step * grad_plus[j]).max(0.0)).collect();
            let (tv, tp, tap, tgp) =
                eval(&trial_lambda, &trial_plus, &trial_minus, &mut exponent, &mut scratch);
            if tv.is_finite() && tv < value {
                lambda = trial_lambda;
                mu_minus = trial_minus;
                mu_plus = trial_plus;
                value = tv;
                _p = tp;
                ap = tap;
                gp = tgp;
                accepted = true;
                // Gentle step growth after success keeps progress fast.
                step = (step * 1.25).min(cfg.step.max(1.0));
                break;
            }
            step *= 0.5;
        }
        if !accepted {
            break; // step collapsed: at numerical precision
        }
    }
    let violation = kkt_violation(&mu_plus, &mu_minus, &ap, &gp);
    Ok(InequalitySolution { p: _p, iterations, violation })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three terms summing to 1, with p0 boxed into [0.5, 0.6]: the box
    /// binds at 0.5 (uniform pull) and the rest splits evenly.
    #[test]
    fn binding_lower_box() {
        let a = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (1, 1.0), (2, 1.0)]]);
        let boxes = vec![BoxConstraint { coeffs: vec![(0, 1.0)], lo: 0.5, hi: 0.6 }];
        let sol = solve_with_boxes(&a, &[1.0], &boxes, 3, &InequalityConfig::default()).unwrap();
        assert!(sol.violation < 1e-6, "violation {}", sol.violation);
        assert!((sol.p[0] - 0.5).abs() < 1e-4, "{:?}", sol.p);
        assert!((sol.p[1] - 0.25).abs() < 1e-4);
        assert!((sol.p[2] - 0.25).abs() < 1e-4);
    }

    /// A box that already contains the unconstrained optimum is inactive.
    #[test]
    fn slack_box_is_inactive() {
        let a = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (1, 1.0), (2, 1.0)]]);
        let boxes = vec![BoxConstraint { coeffs: vec![(0, 1.0)], lo: 0.1, hi: 0.9 }];
        let sol = solve_with_boxes(&a, &[1.0], &boxes, 3, &InequalityConfig::default()).unwrap();
        for v in &sol.p {
            assert!((v - 1.0 / 3.0).abs() < 1e-4, "{:?}", sol.p);
        }
    }

    /// Binding upper box.
    #[test]
    fn binding_upper_box() {
        let a = CsrMatrix::from_rows(4, &[vec![(0, 1.0), (1, 1.0), (2, 1.0), (3, 1.0)]]);
        // p0 + p1 ≤ 0.2 forces the pair down from the uniform 0.5.
        let boxes =
            vec![BoxConstraint { coeffs: vec![(0, 1.0), (1, 1.0)], lo: 0.0, hi: 0.2 }];
        let sol = solve_with_boxes(&a, &[1.0], &boxes, 4, &InequalityConfig::default()).unwrap();
        assert!(sol.p[0] + sol.p[1] <= 0.2 + 1e-4);
        assert!((sol.p[0] - 0.1).abs() < 1e-4);
        assert!((sol.p[2] - 0.4).abs() < 1e-4);
    }

    #[test]
    fn empty_box_rejected() {
        let a = CsrMatrix::from_rows(1, &[vec![(0, 1.0)]]);
        let boxes = vec![BoxConstraint { coeffs: vec![(0, 1.0)], lo: 0.9, hi: 0.1 }];
        assert!(matches!(
            solve_with_boxes(&a, &[1.0], &boxes, 1, &InequalityConfig::default()),
            Err(CoreError::InvalidKnowledge { .. })
        ));
    }

    /// Vagueness (ε-box around a point) reproduces the equality solution as
    /// ε → 0.
    #[test]
    fn epsilon_box_approximates_equality() {
        let a = CsrMatrix::from_rows(3, &[vec![(0, 1.0), (1, 1.0), (2, 1.0)]]);
        let eps = 1e-4;
        let boxes =
            vec![BoxConstraint { coeffs: vec![(0, 1.0)], lo: 0.5 - eps, hi: 0.5 + eps }];
        let sol = solve_with_boxes(&a, &[1.0], &boxes, 3, &InequalityConfig::default()).unwrap();
        assert!((sol.p[0] - 0.5).abs() < 1e-3);
    }
}
