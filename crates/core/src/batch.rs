//! Component batching: fuse small per-component solves into batched
//! solver tasks sized to amortize dispatch.
//!
//! The Section 5.5 decomposition fragments realistic workloads into many
//! *tiny* independent systems (Adult: ~950 relevant components, the
//! largest ≈48 buckets). Dispatching each as its own parallel task makes
//! the per-task fixed costs — result slot, closure call, scratch
//! cold-start, cache migration between workers — rival the actual solver
//! work, which is how `BENCH_parallel` ended up with multi-thread runs
//! slower than one thread. The fix is a **cost model plus a deterministic
//! batch plan**: estimate each dirty component's solve cost, then greedily
//! fuse consecutive components (in canonical component order) until a
//! batch reaches [`crate::engine::EngineConfig::batch_min_cost`]; each
//! batch becomes one worker task that solves its components sequentially,
//! reusing one warm scratch arena.
//!
//! **Bit-identity is preserved by construction**: batching changes which
//! worker runs a component and nothing else. Every component still solves
//! the identical local system in isolation (cold scratch state is
//! cleared, not trusted), and the caller merges solutions in component
//! order exactly as before — so every `batch_min_cost`, like every thread
//! count, produces byte-identical estimates
//! (`tests/test_batching_equivalence.rs` pins this against the unbatched
//! sequential solve).

use crate::engine::RowSet;
use crate::partition::Component;
use crate::terms::TermIndex;

/// Estimated cost of solving `comp`: local terms plus constraint rows.
/// Both assembly and per-iteration solver work scale with these, the
/// numbers are already on hand (no workload probing), and the estimate is
/// a pure function of the component — deterministic across processes.
pub(crate) fn component_cost(index: &TermIndex, rows: RowSet<'_>, comp: &Component) -> u64 {
    let terms: usize =
        comp.buckets.iter().map(|&b| index.bucket_range(b).len()).sum();
    let invariants: usize = comp
        .buckets
        .iter()
        .map(|&b| rows.row_offsets[b + 1] - rows.row_offsets[b])
        .sum();
    (terms + invariants + comp.knowledge_rows.len()) as u64
}

/// Greedily fuses the dirty components (given in canonical solve order,
/// with `costs[i]` the cost of `dirty[i]`) into batches whose summed cost
/// reaches `min_cost`. Order is preserved: concatenating the returned
/// batches yields `dirty` verbatim, so the caller's in-order merge — the
/// bit-identity anchor — is untouched. `min_cost = 0` puts every
/// component in its own batch (the historical one-task-per-component
/// dispatch).
pub(crate) fn plan_batches(dirty: &[usize], costs: &[u64], min_cost: u64) -> Vec<Vec<usize>> {
    debug_assert_eq!(dirty.len(), costs.len());
    let mut batches = Vec::new();
    let mut current = Vec::new();
    let mut acc = 0u64;
    for (i, &ci) in dirty.iter().enumerate() {
        current.push(ci);
        acc = acc.saturating_add(costs[i]);
        if acc >= min_cost {
            batches.push(std::mem::take(&mut current));
            acc = 0;
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_min_cost_is_one_component_per_batch() {
        let dirty = [3usize, 7, 9];
        let costs = [5u64, 1, 100];
        let batches = plan_batches(&dirty, &costs, 0);
        assert_eq!(batches, vec![vec![3], vec![7], vec![9]]);
    }

    #[test]
    fn batches_concatenate_to_the_input_order() {
        let dirty: Vec<usize> = (0..17).map(|i| i * 2).collect();
        let costs: Vec<u64> = (0..17).map(|i| (i % 5) as u64 + 1).collect();
        for min_cost in [0u64, 1, 3, 7, 100, u64::MAX] {
            let batches = plan_batches(&dirty, &costs, min_cost);
            let flat: Vec<usize> = batches.iter().flatten().copied().collect();
            assert_eq!(flat, dirty, "min_cost={min_cost} must preserve order");
            assert!(batches.iter().all(|b| !b.is_empty()));
        }
    }

    #[test]
    fn batches_fill_to_the_cost_floor() {
        let dirty = [0usize, 1, 2, 3, 4];
        let costs = [4u64, 4, 4, 4, 4];
        let batches = plan_batches(&dirty, &costs, 8);
        assert_eq!(batches, vec![vec![0, 1], vec![2, 3], vec![4]]);
        // Every batch except possibly the last reaches the floor.
        let sums: Vec<u64> = batches
            .iter()
            .map(|b| b.iter().map(|&ci| costs[ci]).sum())
            .collect();
        for &s in &sums[..sums.len() - 1] {
            assert!(s >= 8);
        }
    }

    #[test]
    fn huge_min_cost_yields_one_batch() {
        let dirty = [1usize, 2, 3];
        let costs = [10u64, 10, 10];
        assert_eq!(plan_batches(&dirty, &costs, u64::MAX), vec![vec![1, 2, 3]]);
    }

    #[test]
    fn empty_dirty_set_yields_no_batches() {
        assert!(plan_batches(&[], &[], 0).is_empty());
        assert!(plan_batches(&[], &[], 1000).is_empty());
    }

    #[test]
    fn one_oversized_component_is_its_own_batch() {
        let dirty = [0usize, 1, 2];
        let costs = [1000u64, 1, 1];
        let batches = plan_batches(&dirty, &costs, 10);
        assert_eq!(batches[0], vec![0], "the big component fills a batch alone");
        assert_eq!(batches[1], vec![1, 2]);
    }
}
