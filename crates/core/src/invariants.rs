//! Constraint generation from the published data (Section 5).
//!
//! Three invariant families exist; Zero-invariants are structural (absent
//! terms), so this module materialises the QI- and SA-invariant equations:
//!
//! * **QI-invariant** (Eq. 4): `Σ_s P(q, s, b) = P(q, b)` — one per distinct
//!   `q` of each bucket.
//! * **SA-invariant** (Eq. 5): `Σ_q P(q, s, b) = P(s, b)` — one per distinct
//!   `s` of each bucket.
//!
//! Theorem 3 (conciseness) shows each bucket's `g + h` invariants contain
//! exactly one linear dependency (`ΣQI − ΣSA = 0`), so
//! [`data_invariants`] with `concise = true` drops one SA-invariant per
//! bucket, keeping a minimal complete system — fewer dual variables, same
//! optimum.

use pm_anonymize::published::{BucketView, PublishedTable};

use crate::constraint::{Constraint, ConstraintOrigin};
use crate::terms::TermIndex;

/// Generates the invariant equations of one bucket in **bucket-local,
/// count-space** form: coefficients index the bucket's own term range
/// (offset 0 = the bucket's first admissible term) and right-hand sides are
/// integer record counts — `qc` for a QI-invariant, `sc` for an
/// SA-invariant.
///
/// This is the epoch-shareable unit the [`crate::compiled::CompiledTable`]
/// artifact stores per bucket: nothing here depends on the total record
/// count `N` or on any other bucket, so a table delta leaves untouched
/// buckets' rows **bit-identical** — which is what lets a rebased session
/// reuse their solutions verbatim. (Exact integer counts matter:
/// `(qc / N) · N` re-scaled per epoch would drift in the low bits whenever
/// `N` changes.) The solver consumes counts directly; probabilities appear
/// only when an estimate is assembled (`÷ N`).
pub(crate) fn bucket_invariant_rows(bucket: &BucketView, b: usize, concise: bool) -> Vec<Constraint> {
    let h = bucket.distinct_sa();
    let mut out = Vec::with_capacity(bucket.distinct_qi() + h.saturating_sub(usize::from(concise)));
    for (qi, &(q, qc)) in bucket.qi_counts().iter().enumerate() {
        // QI-major local layout: the terms of symbol q are the contiguous
        // block [qi·h, (qi+1)·h).
        let coeffs: Vec<(usize, f64)> = (qi * h..(qi + 1) * h).map(|t| (t, 1.0)).collect();
        out.push(Constraint {
            coeffs,
            rhs: qc as f64,
            origin: ConstraintOrigin::QiInvariant { q, b },
        });
    }
    for (k, &(s, sc)) in bucket.sa_counts().iter().enumerate() {
        if concise && k == 0 {
            continue;
        }
        let coeffs: Vec<(usize, f64)> =
            (0..bucket.distinct_qi()).map(|qi| (qi * h + k, 1.0)).collect();
        out.push(Constraint {
            coeffs,
            rhs: sc as f64,
            origin: ConstraintOrigin::SaInvariant { s, b },
        });
    }
    out
}

/// Generates the invariant equations of `table`, in global term
/// coordinates and probability space (`rhs = count / N`) — the public,
/// paper-notation view. The engine itself consumes the per-bucket
/// count-space rows (`bucket_invariant_rows`) via the compiled artifact;
/// this wrapper globalises those same rows, so the two can never drift.
///
/// With `concise = true`, the first SA-invariant of every bucket is omitted
/// (justified by Theorem 3: removing any single invariant from a bucket's
/// set leaves a minimal, still-complete basis).
pub fn data_invariants(
    table: &PublishedTable,
    index: &TermIndex,
    concise: bool,
) -> Vec<Constraint> {
    let n = table.total_records() as f64;
    let mut out = Vec::new();
    for b in 0..table.num_buckets() {
        let start = index.bucket_range(b).start;
        for mut c in bucket_invariant_rows(table.bucket(b), b, concise) {
            for (t, _) in &mut c.coeffs {
                *t += start;
            }
            c.rhs /= n;
            out.push(c);
        }
    }
    out
}

/// The total probability mass implied by the invariants of a set of buckets
/// (`Σ_b Σ_q P(q, b)`); used to parameterise GIS and sanity checks.
pub fn bucket_mass(table: &PublishedTable, buckets: &[usize]) -> f64 {
    let n = table.total_records() as f64;
    buckets
        .iter()
        .map(|&b| table.bucket(b).size() as f64 / n)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_anonymize::assignment::{enumerate_assignments, evaluate_expression};
    use pm_anonymize::fixtures::paper_example;
    use pm_linalg::CsrMatrix;
    use pm_microdata::value::Value;

    #[test]
    fn paper_qi_invariant_example() {
        // Section 5.2: P(q1,s1,1)+P(q1,s2,1)+P(q1,s3,1) = P(q1,1) = 2/10.
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let inv = data_invariants(&table, &index, false);
        let q1 = table.interner().lookup(&[0, 0]).unwrap();
        let c = inv
            .iter()
            .find(|c| c.origin == ConstraintOrigin::QiInvariant { q: q1, b: 0 })
            .unwrap();
        assert_eq!(c.coeffs.len(), 3, "bucket 1 has three distinct SA values");
        assert!((c.rhs - 0.2).abs() < 1e-12);
    }

    #[test]
    fn paper_sa_invariant_example() {
        // Section 5.2: Σ_q P(q, s4, 2) = P(s4, 2) = 1/10 (s4 = HIV, code 3;
        // paper bucket 2 = index 1).
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let inv = data_invariants(&table, &index, false);
        let c = inv
            .iter()
            .find(|c| c.origin == ConstraintOrigin::SaInvariant { s: 3, b: 1 })
            .unwrap();
        assert_eq!(c.coeffs.len(), 3);
        assert!((c.rhs - 0.1).abs() < 1e-12);
    }

    #[test]
    fn counts_match_g_plus_h() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let full = data_invariants(&table, &index, false);
        let concise = data_invariants(&table, &index, true);
        let expected_full: usize = table
            .buckets()
            .map(|b| b.distinct_qi() + b.distinct_sa())
            .sum();
        assert_eq!(full.len(), expected_full);
        assert_eq!(concise.len(), expected_full - table.num_buckets());
    }

    /// Theorem 1 (soundness): every generated invariant holds under every
    /// assignment of its bucket.
    #[test]
    fn soundness_by_enumeration() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let inv = data_invariants(&table, &index, false);
        for b in 0..table.num_buckets() {
            let assignments = enumerate_assignments(table.bucket(b));
            for c in inv.iter().filter(|c| match c.origin {
                ConstraintOrigin::QiInvariant { b: cb, .. }
                | ConstraintOrigin::SaInvariant { b: cb, .. } => cb == b,
                _ => false,
            }) {
                let terms: Vec<((usize, Value), f64)> = c
                    .coeffs
                    .iter()
                    .map(|&(t, coef)| {
                        let term = index.term(t);
                        ((term.q, term.s), coef)
                    })
                    .collect();
                for a in &assignments {
                    let v = evaluate_expression(a, &terms, table.total_records());
                    assert!(
                        (v - c.rhs).abs() < 1e-12,
                        "invariant {:?} violated: {v} ≠ {}",
                        c.origin,
                        c.rhs
                    );
                }
            }
        }
    }

    /// Theorem 3 (conciseness): per bucket, the full invariant matrix has
    /// rank g + h − 1; dropping one SA-invariant makes it full-rank.
    #[test]
    fn conciseness_rank_structure() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        for b in 0..table.num_buckets() {
            let range = index.bucket_range(b);
            let offset = range.start;
            let ncols = range.len();
            let to_rows = |constraints: &[Constraint]| -> Vec<Vec<(usize, f64)>> {
                constraints
                    .iter()
                    .filter(|c| match c.origin {
                        ConstraintOrigin::QiInvariant { b: cb, .. }
                        | ConstraintOrigin::SaInvariant { b: cb, .. } => cb == b,
                        _ => false,
                    })
                    .map(|c| {
                        c.coeffs
                            .iter()
                            .map(|&(t, v)| (t - offset, v))
                            .collect()
                    })
                    .collect()
            };
            let full_rows = to_rows(&data_invariants(&table, &index, false));
            let g_plus_h = full_rows.len();
            let full = CsrMatrix::from_rows(ncols, &full_rows);
            assert_eq!(full.rank(1e-9), g_plus_h - 1, "bucket {b}: one redundancy");
            let concise_rows = to_rows(&data_invariants(&table, &index, true));
            let concise = CsrMatrix::from_rows(ncols, &concise_rows);
            assert_eq!(concise.rank(1e-9), concise_rows.len(), "bucket {b}: minimal");
        }
    }

    /// Theorem 2 (completeness), checked computationally: an arbitrary
    /// expression is invariant across assignments **iff** it lies in the row
    /// space of the bucket's QI/SA-invariants. We test the forward direction
    /// on a family of random expressions.
    #[test]
    fn completeness_on_random_expressions() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let b = 0usize;
        let range = index.bucket_range(b);
        let assignments = enumerate_assignments(table.bucket(b));
        // Deterministic pseudo-random coefficients.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 7) as f64 - 3.0
        };
        let inv = data_invariants(&table, &index, false);
        let bucket_rows: Vec<Vec<(usize, f64)>> = inv
            .iter()
            .filter(|c| match c.origin {
                ConstraintOrigin::QiInvariant { b: cb, .. }
                | ConstraintOrigin::SaInvariant { b: cb, .. } => cb == b,
                _ => false,
            })
            .map(|c| c.coeffs.iter().map(|&(t, v)| (t - range.start, v)).collect())
            .collect();
        let base = CsrMatrix::from_rows(range.len(), &bucket_rows);
        let base_rank = base.rank(1e-9);

        for _trial in 0..50 {
            let coefs: Vec<f64> = (0..range.len()).map(|_| next()).collect();
            // Is the expression invariant (constant across assignments)?
            let terms: Vec<((usize, Value), f64)> = coefs
                .iter()
                .enumerate()
                .map(|(i, &cf)| {
                    let t = index.term(range.start + i);
                    ((t.q, t.s), cf)
                })
                .collect();
            let vals: Vec<f64> = assignments
                .iter()
                .map(|a| evaluate_expression(a, &terms, table.total_records()))
                .collect();
            let spread = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
                - vals.iter().cloned().fold(f64::INFINITY, f64::min);
            let is_invariant = spread < 1e-12;
            // Is it in the row space? rank(base ∪ expr) == rank(base)?
            let mut rows = bucket_rows.clone();
            rows.push(coefs.iter().enumerate().map(|(i, &v)| (i, v)).collect());
            let aug = CsrMatrix::from_rows(range.len(), &rows);
            let in_rowspace = aug.rank(1e-9) == base_rank;
            assert_eq!(
                is_invariant, in_rowspace,
                "Theorem 2 violated: invariant={is_invariant} in_rowspace={in_rowspace}"
            );
        }
    }

    #[test]
    fn bucket_mass_sums_to_one() {
        let (_, table) = paper_example();
        let all: Vec<usize> = (0..table.num_buckets()).collect();
        assert!((bucket_mass(&table, &all) - 1.0).abs() < 1e-12);
        assert!((bucket_mass(&table, &[0]) - 0.4).abs() < 1e-12);
    }
}
