//! The session's flat, epoch-indexed solution overlay.
//!
//! An [`crate::analyst::Analyst`] session's current solution used to live
//! in a `HashMap<bucket, Arc<[f64]>>` — one heap allocation and one
//! pointer chase per overlaid bucket, re-hashed on every merge and every
//! estimate assembly. At Adult scale a refresh touches ~950 tiny
//! components, so the map dominated the actual solver work. This module
//! replaces it with a [`FlatOverlay`]: **one** shared flat `f64` buffer of
//! count-space values plus a dense per-bucket slot table of
//! `(offset, len)` entries into it (the two-level
//! [`crate::terms::TermIndex`] already owns the term-range offsets; the
//! slot table mirrors that layout for the overlay's own storage).
//!
//! Semantics are unchanged:
//!
//! * A bucket without a slot serves the artifact's baseline — exactly the
//!   old "absent key" case.
//! * [`Analyst::fork`] clones the overlay: the value buffer is an `Arc`,
//!   so a fork is a reference bump plus a memcpy of the slot table —
//!   **copy-on-write**: the first merge on either side clones (and
//!   compacts) its own buffer, leaving the other side's bytes untouched.
//! * Steady-state refreshes write **in place**: a re-solved bucket whose
//!   slot already has the right length is overwritten inside the uniquely
//!   owned buffer — zero allocations, the foundation of the
//!   allocation-honesty contract in `tests/test_alloc_honesty.rs`.
//! * The overlay is **epoch-indexed**: it records the table epoch its slot
//!   layout was built against, and [`FlatOverlay::rebase`] advances it
//!   (the values themselves are count-space and epoch-stable; the tag
//!   exists so a layout/epoch mismatch is an assert, not silent garbage).
//!
//! Determinism: slots are addressed by bucket id and compaction walks the
//! slot table in bucket order — no hash-ordered iteration anywhere
//! (enforced by pm-audit's `determinism` rule, which covers this module).
//!
//! [`Analyst::fork`]: crate::analyst::Analyst::fork

use std::sync::Arc;

/// Slot sentinel: the bucket has no overlay values (serve the baseline).
const ABSENT: usize = usize::MAX;

/// Flat copy-on-write solution overlay (see the [module docs](self)).
#[derive(Debug, Clone)]
pub(crate) struct FlatOverlay {
    /// The shared flat value buffer (count space). `Arc` so forks are
    /// reference bumps; uniquely owned buffers mutate in place.
    values: Arc<Vec<f64>>,
    /// Per-bucket `(offset, len)` into `values`; `offset == ABSENT` means
    /// the bucket serves the artifact's baseline.
    slots: Vec<(usize, usize)>,
    /// Number of buckets with a live slot.
    present: usize,
    /// Values no longer referenced by any slot (removed or resized
    /// buckets); reclaimed by the compaction a copy-on-write clone runs.
    dead: usize,
    /// Table epoch the slot layout was built against.
    epoch: u64,
}

impl FlatOverlay {
    /// An empty overlay over `num_buckets` buckets at `epoch` — every
    /// bucket serves the baseline.
    pub(crate) fn new(num_buckets: usize, epoch: u64) -> Self {
        Self {
            values: Arc::new(Vec::new()),
            slots: vec![(ABSENT, 0); num_buckets],
            present: 0,
            dead: 0,
            epoch,
        }
    }

    /// The bucket's overlay values, or `None` to serve the baseline.
    pub(crate) fn get(&self, b: usize) -> Option<&[f64]> {
        let (offset, len) = self.slots[b];
        if offset == ABSENT {
            None
        } else {
            Some(&self.values[offset..offset + len])
        }
    }

    /// Stores `src` as bucket `b`'s overlay values.
    ///
    /// Steady state (same length, uniquely owned buffer) writes in place
    /// with zero allocations. A shared buffer (live fork) is cloned and
    /// compacted first — copy-on-write — so the other holders never see
    /// the write. A length change (the bucket's term range resized across
    /// a rebase) appends and retires the old slot.
    pub(crate) fn insert(&mut self, b: usize, src: &[f64]) {
        let (offset, len) = self.slots[b];
        if offset != ABSENT && len == src.len() {
            self.make_unique();
            let (offset, _) = self.slots[b]; // compaction may have moved it
            Arc::get_mut(&mut self.values).expect("buffer unique after make_unique")
                [offset..offset + len]
                .copy_from_slice(src);
            return;
        }
        if offset != ABSENT {
            self.dead += len;
        } else {
            self.present += 1;
        }
        self.make_unique();
        let values = Arc::get_mut(&mut self.values).expect("buffer unique after make_unique");
        self.slots[b] = (values.len(), src.len());
        values.extend_from_slice(src);
    }

    /// Drops bucket `b`'s overlay values (it serves the baseline again).
    /// The bytes become dead until the next copy-on-write compaction.
    /// Out-of-range buckets (a rebase delta can mint buckets beyond the
    /// session's current count) are a no-op, like the absent-key case.
    pub(crate) fn remove(&mut self, b: usize) {
        let Some(&(offset, len)) = self.slots.get(b) else {
            return;
        };
        if offset != ABSENT {
            self.slots[b] = (ABSENT, 0);
            self.present -= 1;
            self.dead += len;
        }
    }

    /// Number of buckets with overlay values.
    pub(crate) fn len(&self) -> usize {
        self.present
    }

    /// The epoch the slot layout was built against.
    pub(crate) fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Carries the overlay onto a new table epoch: the caller has already
    /// removed every touched bucket; untouched slots keep their values
    /// verbatim (count space is epoch-stable). Only the bucket count and
    /// the epoch tag change.
    pub(crate) fn rebase(&mut self, num_buckets: usize, epoch: u64) {
        for b in num_buckets..self.slots.len() {
            self.remove(b);
        }
        self.slots.resize(num_buckets, (ABSENT, 0));
        self.epoch = epoch;
    }

    /// Ensures the value buffer is uniquely owned, cloning **and
    /// compacting** it when shared (the copy-on-write break after a fork):
    /// live slots are rewritten contiguously in bucket order — a
    /// deterministic layout — and dead bytes are reclaimed.
    fn make_unique(&mut self) {
        if Arc::get_mut(&mut self.values).is_some() {
            return;
        }
        let mut compact = Vec::with_capacity(self.values.len() - self.dead);
        for slot in &mut self.slots {
            let (offset, len) = *slot;
            if offset == ABSENT {
                continue;
            }
            let new_offset = compact.len();
            compact.extend_from_slice(&self.values[offset..offset + len]);
            *slot = (new_offset, len);
        }
        self.dead = 0;
        self.values = Arc::new(compact);
    }

    // ---- Observability hooks (structural-sharing tests). ----

    /// Whether this overlay still shares its value buffer with `other`
    /// (true between a fork and the first copy-on-write break).
    pub(crate) fn shares_buffer_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.values, &other.values)
    }

    /// The raw buffer address — pointer identity across operations proves
    /// in-place reuse (or, when it changes, a copy-on-write break).
    pub(crate) fn buffer_ptr(&self) -> *const f64 {
        self.values.as_ptr()
    }

    /// Bucket `b`'s `(offset, len)` slot, `None` when it serves the
    /// baseline — offset identity across refreshes proves slot reuse.
    pub(crate) fn slot(&self, b: usize) -> Option<(usize, usize)> {
        let (offset, len) = self.slots[b];
        (offset != ABSENT).then_some((offset, len))
    }

    /// Dead values awaiting compaction (observability for tests).
    #[cfg(test)]
    pub(crate) fn dead_values(&self) -> usize {
        self.dead
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_buckets_serve_baseline() {
        let o = FlatOverlay::new(4, 0);
        assert_eq!(o.len(), 0);
        for b in 0..4 {
            assert!(o.get(b).is_none());
            assert!(o.slot(b).is_none());
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut o = FlatOverlay::new(3, 0);
        o.insert(1, &[1.0, 2.0]);
        o.insert(0, &[3.0]);
        assert_eq!(o.len(), 2);
        assert_eq!(o.get(0), Some(&[3.0][..]));
        assert_eq!(o.get(1), Some(&[1.0, 2.0][..]));
        assert!(o.get(2).is_none());
        o.remove(1);
        assert_eq!(o.len(), 1);
        assert!(o.get(1).is_none());
        assert_eq!(o.dead_values(), 2);
        // Double remove is a no-op.
        o.remove(1);
        assert_eq!(o.len(), 1);
        assert_eq!(o.dead_values(), 2);
    }

    #[test]
    fn same_length_insert_reuses_slot_and_buffer_in_place() {
        let mut o = FlatOverlay::new(2, 0);
        o.insert(0, &[1.0, 2.0]);
        o.insert(1, &[3.0]);
        let ptr = o.buffer_ptr();
        let slot0 = o.slot(0);
        o.insert(0, &[9.0, 8.0]);
        assert_eq!(o.buffer_ptr(), ptr, "in-place write must not reallocate");
        assert_eq!(o.slot(0), slot0, "in-place write must not move the slot");
        assert_eq!(o.get(0), Some(&[9.0, 8.0][..]));
        assert_eq!(o.get(1), Some(&[3.0][..]));
    }

    #[test]
    fn resized_insert_retires_the_old_slot() {
        let mut o = FlatOverlay::new(2, 0);
        o.insert(0, &[1.0, 2.0]);
        o.insert(0, &[5.0, 6.0, 7.0]);
        assert_eq!(o.len(), 1);
        assert_eq!(o.get(0), Some(&[5.0, 6.0, 7.0][..]));
        assert_eq!(o.dead_values(), 2);
    }

    #[test]
    fn clone_shares_until_first_write_then_cow_breaks() {
        let mut parent = FlatOverlay::new(3, 0);
        parent.insert(0, &[1.0]);
        parent.insert(2, &[2.0, 3.0]);
        let fork = parent.clone();
        assert!(parent.shares_buffer_with(&fork));

        // Parent writes: its buffer breaks away, the fork's is untouched.
        let fork_ptr = fork.buffer_ptr();
        parent.insert(0, &[9.0]);
        assert!(!parent.shares_buffer_with(&fork));
        assert_eq!(fork.buffer_ptr(), fork_ptr);
        assert_eq!(fork.get(0), Some(&[1.0][..]));
        assert_eq!(parent.get(0), Some(&[9.0][..]));
        assert_eq!(parent.get(2), Some(&[2.0, 3.0][..]), "unwritten slots carry over");
    }

    #[test]
    fn cow_break_compacts_dead_values() {
        let mut o = FlatOverlay::new(3, 0);
        o.insert(0, &[1.0, 2.0]);
        o.insert(1, &[3.0]);
        o.remove(0);
        assert_eq!(o.dead_values(), 2);
        let fork = o.clone();
        o.insert(2, &[4.0]); // shared → clone + compact
        assert_eq!(o.dead_values(), 0);
        assert_eq!(o.slot(1), Some((0, 1)), "compaction packs live slots in bucket order");
        assert_eq!(o.get(1), Some(&[3.0][..]));
        assert_eq!(fork.get(1), Some(&[3.0][..]));
    }

    #[test]
    fn rebase_resizes_and_advances_epoch() {
        let mut o = FlatOverlay::new(3, 0);
        o.insert(0, &[1.0]);
        o.insert(2, &[2.0]);
        o.rebase(2, 1);
        assert_eq!(o.epoch(), 1);
        assert_eq!(o.len(), 1, "slot beyond the new bucket count is dropped");
        assert_eq!(o.get(0), Some(&[1.0][..]));
        o.rebase(5, 2);
        assert_eq!(o.epoch(), 2);
        assert!(o.get(4).is_none());
    }
}
