//! Runtime verification of the paper's theorems on concrete instances.
//!
//! These checks back the property-test suites and give users a cheap way to
//! audit an estimate: [`verify_estimate`] confirms that a returned
//! [`Estimate`] satisfies every invariant and every
//! knowledge constraint to a tolerance, and [`verify_conciseness`] checks
//! the Theorem 3 rank structure of a table's invariant system.

use pm_anonymize::published::PublishedTable;
use pm_linalg::CsrMatrix;

use crate::compile::compile_knowledge;
use crate::constraint::{Constraint, ConstraintOrigin};
use crate::engine::Estimate;
use crate::error::CoreError;
use crate::invariants::data_invariants;
use crate::knowledge::KnowledgeBase;
use crate::terms::TermIndex;

/// Outcome of [`verify_estimate`].
#[derive(Debug, Clone)]
pub struct Verification {
    /// Largest invariant residual.
    pub max_invariant_residual: f64,
    /// Largest knowledge residual.
    pub max_knowledge_residual: f64,
    /// Number of constraints checked.
    pub checked: usize,
}

impl Verification {
    /// Whether both residuals are within `tol`.
    pub fn passes(&self, tol: f64) -> bool {
        self.max_invariant_residual <= tol && self.max_knowledge_residual <= tol
    }
}

/// Re-derives the full (non-concise) constraint system and evaluates the
/// estimate against it.
pub fn verify_estimate(
    table: &PublishedTable,
    kb: &KnowledgeBase,
    estimate: &Estimate,
) -> Result<Verification, CoreError> {
    let index = TermIndex::build(table);
    let invariants = data_invariants(table, &index, false);
    let knowledge = compile_knowledge(kb, table, &index)?;
    let p = estimate.term_values();
    assert_eq!(
        p.len(),
        index.len(),
        "estimate must come from the same published table"
    );
    let max_res = |cs: &[Constraint]| {
        cs.iter()
            .map(|c| c.residual(p))
            .fold(0.0f64, f64::max)
    };
    Ok(Verification {
        max_invariant_residual: max_res(&invariants),
        max_knowledge_residual: max_res(&knowledge),
        checked: invariants.len() + knowledge.len(),
    })
}

/// Checks Theorem 3 on every bucket of a table: the full invariant matrix
/// has rank `g + h − 1`, i.e. exactly one redundancy. Returns the offending
/// bucket on failure.
pub fn verify_conciseness(table: &PublishedTable) -> Result<(), usize> {
    let index = TermIndex::build(table);
    let invariants = data_invariants(table, &index, false);
    for b in 0..table.num_buckets() {
        let range = index.bucket_range(b);
        let rows: Vec<Vec<(usize, f64)>> = invariants
            .iter()
            .filter(|c| match c.origin {
                ConstraintOrigin::QiInvariant { b: cb, .. }
                | ConstraintOrigin::SaInvariant { b: cb, .. } => cb == b,
                _ => false,
            })
            .map(|c| c.coeffs.iter().map(|&(t, v)| (t - range.start, v)).collect())
            .collect();
        let m = CsrMatrix::from_rows(range.len(), &rows);
        if m.rank(1e-9) != rows.len() - 1 {
            return Err(b);
        }
    }
    Ok(())
}

/// Checks that the estimate's conditional rows are probability
/// distributions over each symbol's admissible support.
pub fn verify_distributions(estimate: &Estimate, tol: f64) -> bool {
    (0..estimate.distinct_qi()).all(|q| {
        let row = estimate.conditional_row(q);
        let sum: f64 = row.iter().sum();
        (sum - 1.0).abs() <= tol && row.iter().all(|&v| (-tol..=1.0 + tol).contains(&v))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::knowledge::Knowledge;
    use pm_anonymize::fixtures::paper_example;

    #[test]
    fn engine_output_verifies() {
        let (_, table) = paper_example();
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 0, probability: 0.4 })
            .unwrap();
        let est = Engine::default().estimate(&table, &kb).unwrap();
        let v = verify_estimate(&table, &kb, &est).unwrap();
        assert!(v.passes(1e-6), "{v:?}");
        assert!(v.checked > 10);
        assert!(verify_distributions(&est, 1e-6));
    }

    #[test]
    fn tampered_estimate_fails() {
        let (_, table) = paper_example();
        let kb = KnowledgeBase::new();
        let est = Engine::uniform_estimate(&table);
        let v = verify_estimate(&table, &kb, &est).unwrap();
        assert!(v.passes(1e-9), "uniform closed form is exact");
        // A uniform estimate checked against *incompatible* knowledge fails.
        let mut wrong = KnowledgeBase::new();
        wrong
            .push(Knowledge::Conditional {
                antecedent: vec![(0, 0)],
                sa: 0,
                probability: 0.9,
            })
            .unwrap();
        let v = verify_estimate(&table, &wrong, &est).unwrap();
        assert!(!v.passes(1e-6));
        assert!(v.max_invariant_residual <= 1e-9, "invariants still hold");
        assert!(v.max_knowledge_residual > 1e-3);
    }

    #[test]
    fn conciseness_verifies_on_paper_example() {
        let (_, table) = paper_example();
        assert_eq!(verify_conciseness(&table), Ok(()));
    }
}
