//! Privacy reports: the paper's proposed publication artefact.
//!
//! Section 4.3: "the outcome of privacy quantification should be a tuple
//! consisting of the assumptions about background knowledge and the privacy
//! score. Users can understand the risk of their data publishing under
//! various assumptions." [`PrivacyReport::sweep`] produces exactly that —
//! one row per Top-(K+, K−) bound, with the privacy scores derived from the
//! maxent `P(SA | QI)`.

use std::fmt;

use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::MinedRules;
use pm_microdata::distribution::QiSaDistribution;
use pm_microdata::schema::Schema;

use crate::engine::{Engine, EngineConfig};
use crate::error::CoreError;
use crate::knowledge::KnowledgeBase;
use crate::metrics;

/// Privacy scores under one knowledge bound.
#[derive(Debug, Clone)]
pub struct ReportRow {
    /// The bound: number of positive rules assumed known.
    pub k_positive: usize,
    /// The bound: number of negative rules assumed known.
    pub k_negative: usize,
    /// Worst-case linking confidence `max P*(s|q)`.
    pub max_disclosure: f64,
    /// `1 / max_disclosure`.
    pub effective_l_diversity: f64,
    /// `min_q H(S | q)` in nats.
    pub min_conditional_entropy: f64,
    /// Estimation accuracy vs. the original data (lower = worse privacy);
    /// only available when the publisher supplies the original data.
    pub estimation_accuracy: Option<f64>,
}

/// A sweep of privacy scores over increasing knowledge bounds.
#[derive(Debug, Clone)]
pub struct PrivacyReport {
    /// One row per bound, ascending.
    pub rows: Vec<ReportRow>,
}

impl PrivacyReport {
    /// Quantifies the published table under each `(K+, K−)` bound.
    ///
    /// `truth` is optional: data publishers hold the original data and get
    /// the estimation-accuracy column; third parties auditing only the
    /// publication still get the disclosure scores.
    pub fn sweep(
        table: &PublishedTable,
        schema: &Schema,
        rules: &MinedRules,
        bounds: &[(usize, usize)],
        truth: Option<&QiSaDistribution>,
        config: &EngineConfig,
    ) -> Result<Self, CoreError> {
        let engine = Engine::new(config.clone());
        let mut rows = Vec::with_capacity(bounds.len());
        for &(kp, kn) in bounds {
            let picked = rules.top_k(kp, kn);
            let kb = KnowledgeBase::from_rules(picked.iter().copied(), schema)?;
            let est = engine.estimate(table, &kb)?;
            rows.push(ReportRow {
                k_positive: kp,
                k_negative: kn,
                max_disclosure: metrics::max_disclosure(&est),
                effective_l_diversity: metrics::effective_l_diversity(&est),
                min_conditional_entropy: metrics::min_conditional_entropy(&est),
                estimation_accuracy: truth.map(|t| metrics::estimation_accuracy(t, &est)),
            });
        }
        Ok(Self { rows })
    }

    /// The first bound (row index) at which `max_disclosure` crosses
    /// `threshold`, if any — "how much knowledge can my publication
    /// tolerate before someone is exposed beyond θ?".
    pub fn disclosure_budget(&self, threshold: f64) -> Option<usize> {
        self.rows.iter().position(|r| r.max_disclosure >= threshold)
    }
}

impl fmt::Display for PrivacyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>6} {:>6} {:>12} {:>10} {:>12} {:>10}",
            "K+", "K-", "disclosure", "eff-l-div", "min-entropy", "accuracy"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:>6} {:>6} {:>12.4} {:>10.2} {:>12.4} {:>10}",
                r.k_positive,
                r.k_negative,
                r.max_disclosure,
                r.effective_l_diversity,
                r.min_conditional_entropy,
                r.estimation_accuracy
                    .map(|a| format!("{a:.4}"))
                    .unwrap_or_else(|| "-".into()),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_anonymize::fixtures::paper_example;
    use pm_assoc::miner::{MinerConfig, RuleMiner};

    fn setup() -> (PublishedTable, Schema, MinedRules, QiSaDistribution) {
        let (data, table) = paper_example();
        let rules = RuleMiner::new(MinerConfig { min_support: 1, arities: vec![1, 2] })
            .mine(&data);
        let truth = QiSaDistribution::from_dataset(&data).unwrap();
        (table, data.schema().clone(), rules, truth)
    }

    #[test]
    fn sweep_produces_monotone_disclosure() {
        let (table, schema, rules, truth) = setup();
        let bounds = [(0, 0), (2, 2), (5, 5), (10, 10)];
        let report = PrivacyReport::sweep(
            &table,
            &schema,
            &rules,
            &bounds,
            Some(&truth),
            &EngineConfig { residual_limit: f64::INFINITY, ..Default::default() },
        )
        .unwrap();
        assert_eq!(report.rows.len(), 4);
        for w in report.rows.windows(2) {
            assert!(w[1].max_disclosure >= w[0].max_disclosure - 1e-9);
            let (a0, a1) = (
                w[0].estimation_accuracy.unwrap(),
                w[1].estimation_accuracy.unwrap(),
            );
            assert!(a1 <= a0 + 1e-9, "accuracy must not rise: {a1} vs {a0}");
        }
    }

    #[test]
    fn disclosure_budget_finds_crossing() {
        let (table, schema, rules, _) = setup();
        let bounds = [(0, 0), (4, 4), (12, 12)];
        let report = PrivacyReport::sweep(
            &table,
            &schema,
            &rules,
            &bounds,
            None,
            &EngineConfig { residual_limit: f64::INFINITY, ..Default::default() },
        )
        .unwrap();
        // Accuracy column absent without truth.
        assert!(report.rows.iter().all(|r| r.estimation_accuracy.is_none()));
        // Some bound eventually exposes someone fully (tiny table).
        if let Some(i) = report.disclosure_budget(0.99) {
            assert!(report.rows[i].max_disclosure >= 0.99);
        }
        // Threshold 0 crosses immediately.
        assert_eq!(report.disclosure_budget(0.0), Some(0));
    }

    #[test]
    fn display_renders_all_rows() {
        let (table, schema, rules, truth) = setup();
        let report = PrivacyReport::sweep(
            &table,
            &schema,
            &rules,
            &[(0, 0), (3, 3)],
            Some(&truth),
            &EngineConfig { residual_limit: f64::INFINITY, ..Default::default() },
        )
        .unwrap();
        let text = report.to_string();
        assert_eq!(text.lines().count(), 3, "header + 2 rows");
        assert!(text.contains("disclosure"));
    }
}
