//! Compilation of background knowledge into ME constraints (Section 4.1).
//!
//! A conditional-probability statement `P(s | Qv) = p` over a QI subset `Qv`
//! becomes, after multiplying by the sample `P(Qv)` and summing out the
//! remaining QI attributes `Q⁻` and the bucket index `B`:
//!
//! ```text
//! Σ_B Σ_{Q⁻} P(Qv, Q⁻, s, B) = p · P(Qv)
//! ```
//!
//! In term space the double sum is simply "every admissible term `(q, s, b)`
//! whose full QI tuple `q` matches `Qv`": the interner enumerates full
//! tuples, so marginalising `Q⁻` is a matching scan and marginalising `B`
//! walks the buckets containing `q`.

use std::sync::Arc;

use pm_anonymize::published::PublishedTable;

use crate::constraint::{Constraint, ConstraintOrigin};
use crate::error::CoreError;
use crate::knowledge::{Knowledge, KnowledgeBase};
use crate::terms::TermIndex;

/// Inverted index `QI symbol → buckets containing it`, built once per
/// compilation pass. `PublishedTable::buckets_with_qi` is an `O(m)` scan;
/// per-rule that made knowledge compilation `O(rules · tuples · m)` — the
/// dominant cost of assembly at Adult scale. Callers compiling several
/// statements should hoist one index and use
/// [`compile_conditional_indexed`].
///
/// Each symbol's bucket list sits behind its own [`Arc`] so a table-delta
/// epoch advance clones the outer vector with reference bumps and rebuilds
/// only the lists of symbols whose bucket membership actually changed.
pub(crate) fn qi_bucket_index(table: &PublishedTable) -> Vec<Arc<[usize]>> {
    let mut buckets_of: Vec<Vec<usize>> = vec![Vec::new(); table.interner().distinct()];
    for b in 0..table.num_buckets() {
        for &(q, _) in table.bucket(b).qi_counts() {
            buckets_of[q].push(b);
        }
    }
    buckets_of.into_iter().map(Arc::from).collect()
}

/// Compiles every *distribution* knowledge item of `kb` into a constraint.
///
/// Returns [`CoreError::RequiresIndividualEngine`] if `kb` contains
/// individual knowledge — that lives in [`crate::individuals`].
pub fn compile_knowledge(
    kb: &KnowledgeBase,
    table: &PublishedTable,
    index: &TermIndex,
) -> Result<Vec<Constraint>, CoreError> {
    compile_knowledge_parallel(kb, table, index, 1)
}

/// [`compile_knowledge`] on a `pm-parallel` worker pool (`threads` follows
/// the `0 = auto` convention). Rules compile independently and the map
/// preserves input order, so the output — and any error, reported for the
/// lowest-indexed failing rule — is identical for every thread count.
pub fn compile_knowledge_parallel(
    kb: &KnowledgeBase,
    table: &PublishedTable,
    index: &TermIndex,
    threads: usize,
) -> Result<Vec<Constraint>, CoreError> {
    if kb
        .items()
        .iter()
        .any(|item| !matches!(item, Knowledge::Conditional { .. }))
    {
        return Err(CoreError::RequiresIndividualEngine);
    }
    if kb.items().is_empty() {
        // Don't tax the no-knowledge (Theorem 5 uniform) path with the
        // inverted-index build.
        return Ok(Vec::new());
    }
    let buckets_of = qi_bucket_index(table);
    let n = table.total_records() as f64;
    let mut rows = compile_items_parallel(kb.items(), table, index, &buckets_of, threads)?;
    // The internal compiler emits count-space targets (epoch-stable); the
    // public surface keeps the paper's probability-space notation.
    for c in &mut rows {
        c.rhs /= n;
    }
    Ok(rows)
}

/// Compiles a slice of distribution-knowledge items against a prebuilt
/// [`qi_bucket_index`] on a `pm-parallel` pool — the session engine's entry
/// point ([`crate::analyst::Analyst`] hoists the inverted index once per
/// session and compiles each delta batch through here). The emitted
/// [`ConstraintOrigin::Knowledge`] indices are positions **within `items`**;
/// callers that splice batches into a larger knowledge list re-index.
///
/// Emitted targets are **count-space** (`rhs = probability · matching
/// record count`): independent of the total record count `N`, so a rule
/// untouched by a table delta compiles to bit-identical rows in every
/// epoch. Public wrappers divide by `N` for the paper's probability view.
///
/// Callers must have rejected individual knowledge beforehand.
pub(crate) fn compile_items_parallel(
    items: &[Knowledge],
    table: &PublishedTable,
    index: &TermIndex,
    buckets_of: &[Arc<[usize]>],
    threads: usize,
) -> Result<Vec<Constraint>, CoreError> {
    pm_parallel::map(threads, items, |ki, item| {
        let Knowledge::Conditional { antecedent, sa, probability } = item else {
            unreachable!("individual knowledge rejected by callers");
        };
        compile_conditional_indexed(
            antecedent,
            *sa,
            *probability,
            ki,
            table,
            index,
            buckets_of,
        )
    })
    .into_iter()
    .collect()
}

/// Compiles one `P(sa | Qv) = p` statement (probability-space target,
/// `rhs = p · P(Qv)`).
pub fn compile_conditional(
    antecedent: &[(usize, pm_microdata::value::Value)],
    sa: pm_microdata::value::Value,
    probability: f64,
    knowledge_index: usize,
    table: &PublishedTable,
    index: &TermIndex,
) -> Result<Constraint, CoreError> {
    let mut c = compile_conditional_indexed(
        antecedent,
        sa,
        probability,
        knowledge_index,
        table,
        index,
        &qi_bucket_index(table),
    )?;
    c.rhs /= table.total_records() as f64;
    Ok(c)
}

/// [`compile_conditional`] against a prebuilt [`qi_bucket_index`], with a
/// **count-space** target (see [`compile_items_parallel`]).
pub(crate) fn compile_conditional_indexed(
    antecedent: &[(usize, pm_microdata::value::Value)],
    sa: pm_microdata::value::Value,
    probability: f64,
    knowledge_index: usize,
    table: &PublishedTable,
    index: &TermIndex,
    buckets_of: &[Arc<[usize]>],
) -> Result<Constraint, CoreError> {
    if !(0.0..=1.0).contains(&probability) {
        return Err(CoreError::InvalidProbability(probability));
    }
    let interner = table.interner();
    if sa as usize >= table.sa_cardinality() {
        return Err(CoreError::InvalidKnowledge {
            detail: format!("SA value {sa} outside domain"),
        });
    }
    for &(pos, _) in antecedent {
        if interner.distinct() > 0 && pos >= interner.tuple(0).len() {
            return Err(CoreError::InvalidKnowledge {
                detail: format!("QI tuple position {pos} out of range"),
            });
        }
    }

    let mut coeffs = Vec::new();
    let mut matching_count = 0usize;
    for (q, tuple, count) in interner.iter() {
        let matches = antecedent.iter().all(|&(pos, v)| tuple[pos] == v);
        if !matches {
            continue;
        }
        matching_count += count;
        for &b in buckets_of[q].iter() {
            if let Some(t) = index.get(q, sa, b) {
                coeffs.push((t, 1.0));
            }
        }
    }
    if matching_count == 0 {
        return Err(CoreError::InvalidKnowledge {
            detail: "antecedent matches no record in the published data".into(),
        });
    }
    Ok(Constraint {
        coeffs,
        // Count space: `p · |{records matching Qv}|` — exact in the integer
        // count, independent of `N`, hence stable across table epochs that
        // leave the matching records alone.
        rhs: probability * matching_count as f64,
        origin: ConstraintOrigin::Knowledge { index: knowledge_index },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_anonymize::fixtures::paper_example;
    use pm_microdata::value::Value;

    fn setup() -> (PublishedTable, TermIndex) {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        (table, index)
    }

    #[test]
    fn section41_flu_male_example() {
        // "P(Flu | male) = 0.3 → constraint rhs = 0.3 · 6/10 = 0.18" with
        // terms over all (male-*) tuples × flu × buckets containing them.
        let (table, index) = setup();
        // Antecedent: gender (tuple position 0) = male (0). flu = code 0.
        let c = compile_conditional(&[(0, 0)], 0, 0.3, 7, &table, &index).unwrap();
        assert!((c.rhs - 0.18).abs() < 1e-12);
        assert_eq!(c.origin, ConstraintOrigin::Knowledge { index: 7 });
        // Admissible expansion on the Figure 1(c) partition: flu (code 0)
        // occurs only in buckets 1 and 3, so the male tuples q1 = male-
        // college (buckets 1, 2), q3 = male-high-school (buckets 1, 2) and
        // q6 = male-graduate (bucket 3) contribute three terms — the
        // bucket-2 combinations are Zero-invariants and excluded.
        let q1 = table.interner().lookup(&[0, 0]).unwrap();
        let q3 = table.interner().lookup(&[0, 1]).unwrap();
        let q6 = table.interner().lookup(&[0, 3]).unwrap();
        let mut expected: Vec<usize> = vec![
            index.get(q1, 0, 0).unwrap(),
            index.get(q3, 0, 0).unwrap(),
            index.get(q6, 0, 2).unwrap(),
        ];
        expected.sort_unstable();
        let mut got: Vec<usize> = c.coeffs.iter().map(|&(t, _)| t).collect();
        got.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn zero_probability_constraint() {
        // P(breast cancer | male) = 0 — the motivating example. s1 = code 2.
        let (table, index) = setup();
        let c = compile_conditional(&[(0, 0)], 2, 0.0, 0, &table, &index).unwrap();
        assert_eq!(c.rhs, 0.0);
        assert!(!c.coeffs.is_empty(), "male tuples co-occur with breast cancer in buckets");
    }

    #[test]
    fn full_qi_antecedent() {
        // P(s3=pneumonia | q3={male, high school}) = 0.5 — the Section 5.5
        // example: spans buckets 1 and 2, rhs = 0.5 · 2/10 = 0.1.
        let (table, index) = setup();
        let c = compile_conditional(&[(0, 0), (1, 1)], 1, 0.5, 0, &table, &index).unwrap();
        assert!((c.rhs - 0.1).abs() < 1e-12);
        assert_eq!(c.coeffs.len(), 2, "q3 × pneumonia admissible in buckets 1 and 2");
    }

    #[test]
    fn rejects_unmatched_antecedent() {
        let (table, index) = setup();
        // degree (pos 1) = junior (2) AND gender male (0): no such record.
        let r = compile_conditional(&[(0, 0), (1, 2)], 0, 0.5, 0, &table, &index);
        assert!(matches!(r, Err(CoreError::InvalidKnowledge { .. })));
    }

    #[test]
    fn rejects_bad_probability_and_sa() {
        let (table, index) = setup();
        assert!(matches!(
            compile_conditional(&[(0, 0)], 0, 1.2, 0, &table, &index),
            Err(CoreError::InvalidProbability(_))
        ));
        assert!(matches!(
            compile_conditional(&[(0, 0)], 99, 0.5, 0, &table, &index),
            Err(CoreError::InvalidKnowledge { .. })
        ));
    }

    #[test]
    fn knowledge_base_compilation_and_individual_rejection() {
        let (table, index) = setup();
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::Conditional {
            antecedent: vec![(0, 1 as Value)],
            sa: 2,
            probability: 0.5,
        })
        .unwrap();
        let rows = compile_knowledge(&kb, &table, &index).unwrap();
        assert_eq!(rows.len(), 1);
        kb.push(Knowledge::IndividualSa { pseudonym: 0, sa: 0, probability: 0.1 })
            .unwrap();
        assert!(matches!(
            compile_knowledge(&kb, &table, &index),
            Err(CoreError::RequiresIndividualEngine)
        ));
    }
}
