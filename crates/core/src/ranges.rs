//! Vague (inequality) background knowledge — Section 4.5.
//!
//! "Equations cannot express the fact that `P(s1 | q1)` is *about* 0.3" —
//! the paper proposes `0.3 − ε ≤ P(s1 | q1) ≤ 0.3 + ε` and defers the
//! extended (Kazama–Tsujii) maxent model to future work. This module
//! implements it: range statements compile to box constraints and
//! [`estimate_with_ranges`] solves the box-constrained maxent program with
//! the projected dual solver from [`crate::inequality`].

use pm_anonymize::published::PublishedTable;
use pm_linalg::CsrMatrix;
use pm_microdata::value::Value;

use crate::compile::{compile_conditional_indexed, compile_knowledge, qi_bucket_index};
use crate::engine::{EngineStats, Estimate};
use crate::error::CoreError;
use crate::inequality::{solve_with_boxes, BoxConstraint, InequalityConfig};
use crate::invariants::data_invariants;
use crate::knowledge::KnowledgeBase;
use crate::terms::TermIndex;

/// A vague conditional statement `lo ≤ P(sa | Qv) ≤ hi`.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeKnowledge {
    /// `(position within QI tuple, value)` pairs, as in
    /// [`crate::knowledge::Knowledge::Conditional`].
    pub antecedent: Vec<(usize, Value)>,
    /// The SA value.
    pub sa: Value,
    /// Lower bound on the conditional probability.
    pub lo: f64,
    /// Upper bound on the conditional probability.
    pub hi: f64,
}

impl RangeKnowledge {
    /// A symmetric ε-box around a point estimate — the paper's vagueness
    /// notation `P(s|Qv) ≈ p ± ε`.
    pub fn about(antecedent: Vec<(usize, Value)>, sa: Value, p: f64, epsilon: f64) -> Self {
        Self {
            antecedent,
            sa,
            lo: (p - epsilon).max(0.0),
            hi: (p + epsilon).min(1.0),
        }
    }

    /// Validates the box.
    pub fn validate(&self) -> Result<(), CoreError> {
        if !(0.0..=1.0).contains(&self.lo) || !(0.0..=1.0).contains(&self.hi) {
            return Err(CoreError::InvalidProbability(self.lo.min(self.hi)));
        }
        if self.lo > self.hi {
            return Err(CoreError::InvalidKnowledge {
                detail: format!("empty probability box [{}, {}]", self.lo, self.hi),
            });
        }
        Ok(())
    }
}

/// Estimates `P(Q, S, B)` under equality knowledge `kb` **and** vague range
/// knowledge, via the inequality-extended maxent model.
///
/// Restrictions of this path (documented, matching its future-work status
/// in the paper): no bucket decomposition, and equality knowledge with
/// probability 0 must instead be phrased as a `[0, ε]` range (the projected
/// exponential dual cannot represent exact zeros).
pub fn estimate_with_ranges(
    table: &PublishedTable,
    kb: &KnowledgeBase,
    ranges: &[RangeKnowledge],
    config: &InequalityConfig,
) -> Result<Estimate, CoreError> {
    let start = std::time::Instant::now();
    let index = TermIndex::build(table);
    let n = table.total_records() as f64;

    // Equality constraints: invariants + point knowledge, count space.
    let mut constraints = data_invariants(table, &index, true);
    let knowledge_rows = compile_knowledge(kb, table, &index)?;
    for c in &knowledge_rows {
        if c.rhs == 0.0 {
            return Err(CoreError::InvalidKnowledge {
                detail: "zero-probability equality knowledge is not supported on the \
                         inequality path; use a [0, eps] range instead"
                    .into(),
            });
        }
    }
    constraints.extend(knowledge_rows);
    let rows: Vec<Vec<(usize, f64)>> = constraints.iter().map(|c| c.coeffs.clone()).collect();
    let targets: Vec<f64> = constraints.iter().map(|c| c.rhs * n).collect();
    let equalities = CsrMatrix::from_rows(index.len(), &rows);

    // Boxes: compile each range's term set once (reusing the equality
    // compiler on a dummy probability, then re-targeting) against one
    // hoisted QI→buckets index.
    let buckets_of = qi_bucket_index(table);
    let mut boxes = Vec::with_capacity(ranges.len());
    for (i, r) in ranges.iter().enumerate() {
        r.validate()?;
        let compiled = compile_conditional_indexed(
            &r.antecedent,
            r.sa,
            0.5,
            i,
            table,
            &index,
            &buckets_of,
        )?;
        // compile gave the count-space target 0.5 · #Qv; recover the count
        // of matching records to scale the box.
        let p_qv_counts = compiled.rhs / 0.5;
        boxes.push(BoxConstraint {
            coeffs: compiled.coeffs,
            lo: r.lo * p_qv_counts,
            hi: r.hi * p_qv_counts,
        });
    }

    let sol = solve_with_boxes(&equalities, &targets, &boxes, index.len(), config)?;
    if sol.violation > 1e-3 {
        return Err(CoreError::SolverFailed { residual: sol.violation });
    }
    let values: Vec<f64> = sol.p.iter().map(|v| v / n).collect();
    let stats = EngineStats {
        num_components: 1,
        num_constraints: constraints.len() + boxes.len(),
        num_free_terms: index.len(),
        total_elapsed: start.elapsed(),
        ..Default::default()
    };
    Ok(Estimate::assemble(values, std::sync::Arc::new(index), table, 0, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::knowledge::Knowledge;
    use pm_anonymize::fixtures::paper_example;

    #[test]
    fn epsilon_box_reproduces_equality_solution() {
        let (_, table) = paper_example();
        // Equality engine: P(flu | male) = 0.4.
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 0, probability: 0.4 })
            .unwrap();
        let exact = Engine::default().estimate(&table, &kb).unwrap();
        // Range engine: P(flu | male) ∈ [0.4 ± 1e-4].
        let ranges =
            vec![RangeKnowledge::about(vec![(0, 0)], 0, 0.4, 1e-4)];
        let est = estimate_with_ranges(
            &table,
            &KnowledgeBase::new(),
            &ranges,
            &InequalityConfig::default(),
        )
        .unwrap();
        for q in 0..est.distinct_qi() {
            for s in 0..5u16 {
                assert!(
                    (est.conditional(q, s) - exact.conditional(q, s)).abs() < 5e-3,
                    "q={q} s={s}: {} vs {}",
                    est.conditional(q, s),
                    exact.conditional(q, s)
                );
            }
        }
    }

    #[test]
    fn wide_box_is_inactive() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        // The uniform value of P(flu | male-college …) lies inside [0, 1),
        // so a wide box changes nothing.
        let ranges = vec![RangeKnowledge {
            antecedent: vec![(0, 0)],
            sa: 0,
            lo: 0.0,
            hi: 0.99,
        }];
        let est = estimate_with_ranges(
            &table,
            &KnowledgeBase::new(),
            &ranges,
            &InequalityConfig::default(),
        )
        .unwrap();
        for q in 0..est.distinct_qi() {
            for s in 0..5u16 {
                assert!(
                    (est.conditional(q, s) - uniform.conditional(q, s)).abs() < 1e-3,
                    "q={q} s={s}"
                );
            }
        }
    }

    #[test]
    fn binding_box_pushes_the_estimate() {
        let (_, table) = paper_example();
        let uniform = Engine::uniform_estimate(&table);
        // Uniform P(flu | male) ≈ 0.306; cap it at 0.25. (The bucket
        // structure forces at least one male flu in bucket 1, i.e.
        // P(flu | male) ≥ 1/6, so 0.25 is feasible and binding.)
        let ranges = vec![RangeKnowledge {
            antecedent: vec![(0, 0)],
            sa: 0,
            lo: 0.0,
            hi: 0.25,
        }];
        let est = estimate_with_ranges(
            &table,
            &KnowledgeBase::new(),
            &ranges,
            &InequalityConfig::default(),
        )
        .unwrap();
        let total = |e: &Estimate| -> f64 {
            table
                .interner()
                .iter()
                .filter(|&(_, tuple, _)| tuple[0] == 0)
                .map(|(q, _, _)| e.qi_marginal(q) * e.conditional(q, 0))
                .sum()
        };
        let before = total(&uniform) / 0.6; // conditional on male
        let after = total(&est) / 0.6;
        assert!(before > 0.25, "baseline {before} must exceed the cap");
        assert!(after <= 0.25 + 1e-3, "boxed value {after}");
    }

    #[test]
    fn validation_errors() {
        assert!(RangeKnowledge { antecedent: vec![], sa: 0, lo: 0.6, hi: 0.4 }
            .validate()
            .is_err());
        assert!(RangeKnowledge { antecedent: vec![], sa: 0, lo: -0.1, hi: 0.4 }
            .validate()
            .is_err());
        let r = RangeKnowledge::about(vec![], 0, 0.05, 0.1);
        assert_eq!(r.lo, 0.0, "clamped at zero");
    }

    #[test]
    fn zero_equality_rejected_on_range_path() {
        let (_, table) = paper_example();
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 2, probability: 0.0 })
            .unwrap();
        let r = estimate_with_ranges(&table, &kb, &[], &InequalityConfig::default());
        assert!(matches!(r, Err(CoreError::InvalidKnowledge { .. })));
    }
}
