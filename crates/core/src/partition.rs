//! Bucket partitioning for the Section 5.5 optimisation.
//!
//! Lemma 2: with no background knowledge, buckets are independent, so the
//! global maximum entropy is the product of per-bucket maxima (Theorem 4).
//! Knowledge constraints couple the buckets they touch; buckets untouched by
//! any knowledge row are **irrelevant** (Definition 5.6) and keep their
//! closed-form uniform solution (Theorem 5 / Proposition 1).
//!
//! This module generalises the paper's irrelevant/relevant split to full
//! **connected components**: buckets linked (transitively) by shared
//! knowledge constraints form one component; distinct components are
//! independent maxent problems and can be solved separately with the exact
//! same optimum. A singleton component with no knowledge is precisely an
//! irrelevant bucket.

use std::collections::BTreeMap;

use crate::constraint::{Constraint, ConstraintOrigin};
use crate::terms::TermIndex;

/// Union-find over bucket indices.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self { parent: (0..n).collect() }
    }

    fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }
}

/// One independent subproblem.
#[derive(Debug, Clone)]
pub struct Component {
    /// Buckets of this component, ascending.
    pub buckets: Vec<usize>,
    /// Indices (into the full constraint list) of knowledge rows touching
    /// this component. Empty ⇔ every bucket here is irrelevant.
    pub knowledge_rows: Vec<usize>,
}

impl Component {
    /// Whether the component is untouched by background knowledge.
    #[must_use]
    pub fn is_irrelevant(&self) -> bool {
        self.knowledge_rows.is_empty()
    }
}

/// Splits *separable* knowledge rows into per-bucket rows before
/// partitioning.
///
/// A knowledge row with all-positive coefficients and a zero right-hand
/// side — a confidence-1 negative rule, `P(s | A) = 0` — forces every term
/// it touches to zero **individually** (a sum of non-negative terms is zero
/// iff each is), so it carries no cross-bucket information. Left whole, it
/// would spuriously fuse every touched bucket into one connected component;
/// in the Adult workload the mined Top-K− rules alone are enough to weld
/// most relevant buckets into a single giant system with nothing left to
/// decompose. Replacing the row by one per-bucket row (same origin, same
/// zero target) has the identical solution set and lets
/// [`connected_components`] fragment the way Section 5.5 intends.
pub fn split_separable_knowledge(
    constraints: Vec<Constraint>,
    index: &TermIndex,
) -> Vec<Constraint> {
    let mut out = Vec::with_capacity(constraints.len());
    for c in constraints {
        let separable = matches!(c.origin, ConstraintOrigin::Knowledge { .. })
            && c.rhs == 0.0
            && !c.coeffs.is_empty()
            && c.coeffs.iter().all(|&(_, v)| v > 0.0);
        if !separable {
            out.push(c);
            continue;
        }
        // BTreeMap: per-bucket rows emitted in ascending bucket order, so
        // the split is deterministic for the engine's merge ordering.
        let mut by_bucket: BTreeMap<usize, Vec<(usize, f64)>> = BTreeMap::new();
        for &(t, v) in &c.coeffs {
            by_bucket.entry(index.term(t).b).or_default().push((t, v));
        }
        if by_bucket.len() <= 1 {
            out.push(c);
            continue;
        }
        for (_, coeffs) in by_bucket {
            out.push(Constraint { coeffs, rhs: 0.0, origin: c.origin.clone() });
        }
    }
    out
}

/// Groups buckets into connected components induced by the knowledge rows
/// of `constraints` (invariant rows are single-bucket and never join
/// components).
///
/// # Ordering (fixed tie-breaking)
///
/// The output is canonical regardless of union-find internals: components
/// ascend by their smallest bucket id, `buckets` ascend within each
/// component, and `knowledge_rows` ascend by constraint index. The engine
/// merges per-component solutions in this order, so the canonical ordering
/// is what makes parallel estimates bit-identical to sequential ones.
#[must_use]
pub fn connected_components(
    constraints: &[Constraint],
    index: &TermIndex,
) -> Vec<Component> {
    let rows: Vec<(usize, &Constraint)> = constraints
        .iter()
        .enumerate()
        .filter(|(_, c)| matches!(c.origin, ConstraintOrigin::Knowledge { .. }))
        .collect();
    components_from(&rows, index)
}

/// [`connected_components`] driven by the knowledge rows alone.
///
/// The [`crate::compiled::CompiledTable`] artifact owns the (single-bucket,
/// partition-neutral) invariant rows and every session shares them, so the
/// session engine partitions from its private knowledge tail without
/// materialising a merged constraint list. Emitted `knowledge_rows` indices
/// are `first_row + i` — the rows' positions in the virtual
/// `[invariants..., knowledge...]` list the component solver addresses
/// (`first_row` is the invariant count). Identical output to calling
/// [`connected_components`] on that merged list.
#[must_use]
pub fn knowledge_components(
    knowledge: &[Constraint],
    first_row: usize,
    index: &TermIndex,
) -> Vec<Component> {
    let rows: Vec<(usize, &Constraint)> = knowledge
        .iter()
        .enumerate()
        .map(|(i, c)| (first_row + i, c))
        .collect();
    components_from(&rows, index)
}

/// Shared core: `rows` are `(global constraint index, knowledge row)`.
fn components_from(rows: &[(usize, &Constraint)], index: &TermIndex) -> Vec<Component> {
    let m = index.num_buckets();
    let mut uf = UnionFind::new(m);
    for &(_, c) in rows {
        let mut first: Option<usize> = None;
        for &(t, _) in &c.coeffs {
            let b = index.term(t).b;
            match first {
                None => first = Some(b),
                Some(f) => uf.union(f, b),
            }
        }
    }

    // Gather buckets per root.
    let mut root_of = vec![0usize; m];
    for (b, root) in root_of.iter_mut().enumerate() {
        *root = uf.find(b);
    }
    let mut comp_id = vec![usize::MAX; m];
    let mut components: Vec<Component> = Vec::new();
    for (b, &r) in root_of.iter().enumerate() {
        if comp_id[r] == usize::MAX {
            comp_id[r] = components.len();
            components.push(Component { buckets: Vec::new(), knowledge_rows: Vec::new() });
        }
        components[comp_id[r]].buckets.push(b);
    }
    // Attach knowledge rows to their component.
    for &(ci, c) in rows {
        if let Some(&(t, _)) = c.coeffs.first() {
            let b = index.term(t).b;
            let comp = comp_id[root_of[b]];
            components[comp].knowledge_rows.push(ci);
        }
        // Knowledge rows with no terms (possible after a degenerate compile)
        // constrain nothing and belong to no component.
    }
    // Enforce the canonical ordering explicitly rather than relying on the
    // scan order above, so no future change to the union-find (or to how
    // buckets/rows are gathered) can silently perturb engine determinism.
    for comp in &mut components {
        comp.buckets.sort_unstable();
        comp.knowledge_rows.sort_unstable();
    }
    components.sort_by_key(|c| c.buckets[0]);
    components
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile_conditional;
    use crate::invariants::data_invariants;
    use pm_anonymize::fixtures::paper_example;

    #[test]
    fn no_knowledge_gives_singletons() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let inv = data_invariants(&table, &index, true);
        let comps = connected_components(&inv, &index);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(Component::is_irrelevant));
        let mut all: Vec<usize> = comps.iter().flat_map(|c| c.buckets.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2]);
    }

    #[test]
    fn cross_bucket_knowledge_merges() {
        // Section 5.5's example knowledge P(s3 | q3) = 0.5 touches buckets
        // 1 and 2 (indices 0, 1); bucket 3 stays irrelevant.
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let mut cs = data_invariants(&table, &index, true);
        cs.push(compile_conditional(&[(0, 0), (1, 1)], 1, 0.5, 0, &table, &index).unwrap());
        let comps = connected_components(&cs, &index);
        assert_eq!(comps.len(), 2);
        let merged = comps.iter().find(|c| c.buckets.len() == 2).unwrap();
        assert_eq!(merged.buckets, vec![0, 1]);
        assert_eq!(merged.knowledge_rows.len(), 1);
        let single = comps.iter().find(|c| c.buckets.len() == 1).unwrap();
        assert!(single.is_irrelevant());
        assert_eq!(single.buckets, vec![2]);
    }

    /// A confidence-1 negative rule spanning several buckets is split into
    /// per-bucket zero rows, so it no longer fuses those buckets into one
    /// component; an informative (non-zero) rule is left whole and fuses.
    #[test]
    fn separable_zero_rows_split_per_bucket() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let mut cs = data_invariants(&table, &index, true);
        // P(hiv | male) = 0 — admissible (male, hiv, b) terms live in
        // buckets 1 and 2.
        cs.push(compile_conditional(&[(0, 0)], 3, 0.0, 0, &table, &index).unwrap());
        let n_before = cs.len();
        let cs = split_separable_knowledge(cs, &index);
        assert_eq!(cs.len(), n_before + 1, "one spanning zero row becomes two");
        let comps = connected_components(&cs, &index);
        assert_eq!(comps.len(), 3, "no buckets fused");
        assert_eq!(comps.iter().filter(|c| Component::is_irrelevant(c)).count(), 1);

        // The same rule with non-zero confidence couples the buckets and
        // must be left whole.
        let mut cs = data_invariants(&table, &index, true);
        cs.push(compile_conditional(&[(0, 0)], 3, 0.25, 0, &table, &index).unwrap());
        let n_before = cs.len();
        let cs = split_separable_knowledge(cs, &index);
        assert_eq!(cs.len(), n_before, "informative rows are not split");
        let comps = connected_components(&cs, &index);
        assert_eq!(comps.len(), 2, "buckets 1 and 2 fuse");
    }

    /// The canonical ordering contract: component order, bucket order and
    /// knowledge-row order are all ascending, whatever order the knowledge
    /// rows arrive in.
    #[test]
    fn ordering_is_canonical() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let mut cs = data_invariants(&table, &index, true);
        // Two knowledge rows, deliberately compiled in "reverse" bucket
        // order: graduates appear only in bucket 2, q3 in buckets {0, 1}.
        cs.push(compile_conditional(&[(1, 3)], 0, 0.5, 0, &table, &index).unwrap());
        cs.push(compile_conditional(&[(0, 0), (1, 1)], 1, 0.5, 1, &table, &index).unwrap());
        let comps = connected_components(&cs, &index);
        let mins: Vec<usize> = comps.iter().map(|c| c.buckets[0]).collect();
        let mut sorted = mins.clone();
        sorted.sort_unstable();
        assert_eq!(mins, sorted, "components ascend by smallest bucket");
        for c in &comps {
            assert!(c.buckets.windows(2).all(|w| w[0] < w[1]), "buckets ascend");
            assert!(
                c.knowledge_rows.windows(2).all(|w| w[0] < w[1]),
                "knowledge rows ascend"
            );
        }
    }

    /// `knowledge_components` over the knowledge tail alone is equivalent
    /// to `connected_components` over the merged invariant+knowledge list.
    #[test]
    fn knowledge_components_match_merged_list() {
        let (_, table) = paper_example();
        let index = TermIndex::build(&table);
        let inv = data_invariants(&table, &index, true);
        let krows = vec![
            compile_conditional(&[(1, 3)], 0, 0.5, 0, &table, &index).unwrap(),
            compile_conditional(&[(0, 0), (1, 1)], 1, 0.5, 1, &table, &index).unwrap(),
        ];
        let mut merged = inv.clone();
        merged.extend(krows.iter().cloned());
        let from_merged = connected_components(&merged, &index);
        let from_tail = knowledge_components(&krows, inv.len(), &index);
        assert_eq!(from_merged.len(), from_tail.len());
        for (a, b) in from_merged.iter().zip(&from_tail) {
            assert_eq!(a.buckets, b.buckets);
            assert_eq!(a.knowledge_rows, b.knowledge_rows);
        }
    }

    #[test]
    fn union_find_path_compression() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(1, 2);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(2));
        assert_eq!(uf.find(3), uf.find(4));
        assert_ne!(uf.find(0), uf.find(3));
    }
}
