//! Privacy quantification metrics (Section 7.1).
//!
//! The paper's evaluation metric is **Estimation Accuracy**: a weighted
//! Kullback–Leibler distance between the true conditional `P(s | q)`
//! (computed from the original data) and the maxent estimate `P*(s | q)`:
//!
//! ```text
//! Accuracy = Σ_q P(q) · Σ_s P(s|q) · log( P(s|q) / P*(s|q) )
//! ```
//!
//! Lower values mean the adversary's estimate is closer to the truth — i.e.
//! *worse* privacy. The module also provides the downstream privacy scores
//! the paper positions `P(SA | QI)` as the building block for: maximum
//! disclosure, effective ℓ-diversity, and minimum conditional entropy.

use pm_microdata::distribution::QiSaDistribution;
use pm_microdata::value::Value;

use crate::engine::Estimate;

/// Floor applied to estimated probabilities inside the logarithm, guarding
/// against `log(x/0)` when the estimate assigns (numerically) zero mass to
/// an outcome the original data contains. For knowledge mined from the
/// original data this cannot happen structurally; the guard covers
/// hand-written near-inconsistent knowledge.
const P_FLOOR: f64 = 1e-12;

/// The paper's Estimation Accuracy (weighted KL distance, natural log).
///
/// `truth` must be built from the same dataset the published table came
/// from, so that both sides share the QI interner's symbol ids.
///
/// # Panics
/// Panics if the two sides disagree on the number of QI symbols or SA
/// values (a sign they were built from different datasets).
pub fn estimation_accuracy(truth: &QiSaDistribution, estimate: &Estimate) -> f64 {
    assert_eq!(
        truth.interner().distinct(),
        estimate.distinct_qi(),
        "truth and estimate must come from the same dataset"
    );
    assert_eq!(truth.sa_cardinality(), estimate.sa_cardinality());
    let mut acc = 0.0;
    for q in 0..truth.interner().distinct() {
        let pq = truth.interner().probability(q);
        if pq == 0.0 {
            continue;
        }
        let mut kl = 0.0;
        for s in 0..truth.sa_cardinality() {
            let p = truth.conditional(q, s as Value);
            if p <= 0.0 {
                continue;
            }
            let pstar = estimate.conditional(q, s as Value).max(P_FLOOR);
            kl += p * (p / pstar).ln();
        }
        acc += pq * kl;
    }
    acc.max(0.0)
}

/// Maximum disclosure: `max_{q,s} P*(s | q)` — the worst-case linking
/// confidence an adversary attains. `1.0` means some individual's SA value
/// is fully disclosed.
pub fn max_disclosure(estimate: &Estimate) -> f64 {
    let mut worst: f64 = 0.0;
    for q in 0..estimate.distinct_qi() {
        for &v in estimate.conditional_row(q) {
            worst = worst.max(v);
        }
    }
    worst
}

/// The QI symbol attaining [`max_disclosure`], with its best SA guess.
pub fn most_exposed(estimate: &Estimate) -> Option<(usize, Value, f64)> {
    let mut best: Option<(usize, Value, f64)> = None;
    for q in 0..estimate.distinct_qi() {
        for (s, &v) in estimate.conditional_row(q).iter().enumerate() {
            if best.map(|(_, _, bv)| v > bv).unwrap_or(true) {
                best = Some((q, s as Value, v));
            }
        }
    }
    best
}

/// Effective ℓ-diversity of the estimate: `1 / max_disclosure`, the paper's
/// probabilistic reading of ℓ-diversity ("each QI can be linked to at least
/// ℓ equally-likely values" ⇒ every `P(s|q) ≤ 1/ℓ`).
pub fn effective_l_diversity(estimate: &Estimate) -> f64 {
    let d = max_disclosure(estimate);
    if d <= 0.0 {
        f64::INFINITY
    } else {
        1.0 / d
    }
}

/// Minimum conditional entropy over QI symbols, in nats:
/// `min_q H(S | Q = q)`. Zero means some q's SA value is certain.
pub fn min_conditional_entropy(estimate: &Estimate) -> f64 {
    let mut min = f64::INFINITY;
    for q in 0..estimate.distinct_qi() {
        let h: f64 = estimate
            .conditional_row(q)
            .iter()
            .map(|&p| if p > 0.0 { -p * p.ln() } else { 0.0 })
            .sum();
        min = min.min(h);
    }
    if min.is_finite() {
        min
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::knowledge::{Knowledge, KnowledgeBase};
    use pm_anonymize::fixtures::paper_example;

    fn truth_and_table() -> (QiSaDistribution, pm_anonymize::published::PublishedTable) {
        let (data, table) = paper_example();
        (QiSaDistribution::from_dataset(&data).unwrap(), table)
    }

    #[test]
    fn accuracy_zero_when_estimate_equals_truth() {
        let (truth, table) = truth_and_table();
        // Pin every P(s|q) to its true value via full-QI knowledge: the
        // estimate must then reproduce the truth and KL must vanish.
        let mut kb = KnowledgeBase::new();
        for (q, tuple, _) in table.interner().iter() {
            for s in 0..truth.sa_cardinality() as u16 {
                let p = truth.conditional(q, s);
                kb.push(Knowledge::Conditional {
                    antecedent: vec![(0, tuple[0]), (1, tuple[1])],
                    sa: s,
                    probability: p,
                })
                .unwrap();
            }
        }
        let est = Engine::default().estimate(&table, &kb).unwrap();
        let acc = estimation_accuracy(&truth, &est);
        assert!(acc < 1e-9, "accuracy {acc}");
        assert!((max_disclosure(&est) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn accuracy_decreases_with_knowledge() {
        let (truth, table) = truth_and_table();
        let baseline = estimation_accuracy(&truth, &Engine::uniform_estimate(&table));
        // Add one true piece of knowledge: P(breast cancer | male) = 0.
        let mut kb = KnowledgeBase::new();
        kb.push(Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 2, probability: 0.0 })
            .unwrap();
        let est = Engine::default().estimate(&table, &kb).unwrap();
        let with_knowledge = estimation_accuracy(&truth, &est);
        assert!(
            with_knowledge < baseline,
            "knowledge must reduce KL: {with_knowledge} vs {baseline}"
        );
    }

    #[test]
    fn disclosure_metrics_on_uniform_baseline() {
        let (_, table) = truth_and_table();
        let est = Engine::uniform_estimate(&table);
        let d = max_disclosure(&est);
        // Marginalising over buckets: q2 = {female, college} sits in bucket
        // 1 (flu share 2/4) and bucket 3 (share 1/3), so P(flu | q2) =
        // (0.1·0.5/0.1 … ) = (1/10·1/2 + 1/10·1/3)/(2/10) = 5/12, the
        // table-wide maximum (q3 reaches the same value on pneumonia).
        assert!((d - 5.0 / 12.0).abs() < 1e-9, "disclosure {d}");
        assert!((effective_l_diversity(&est) - 12.0 / 5.0).abs() < 1e-9);
        let (_, s, v) = most_exposed(&est).unwrap();
        assert_eq!(s, 0, "flu is the most exposed value");
        assert!((v - d).abs() < 1e-12);
        assert!(min_conditional_entropy(&est) > 0.0);
    }

    #[test]
    fn certainty_collapses_entropy() {
        let (_, table) = truth_and_table();
        let mut kb = KnowledgeBase::new();
        // q4 = {female, junior} (Grace) is alone in bucket 2 with
        // {bc, pneu, hiv}; pin her to breast cancer.
        kb.push(Knowledge::Conditional {
            antecedent: vec![(0, 1), (1, 2)],
            sa: 2,
            probability: 1.0,
        })
        .unwrap();
        let est = Engine::default().estimate(&table, &kb).unwrap();
        assert!((max_disclosure(&est) - 1.0).abs() < 1e-6);
        assert!(min_conditional_entropy(&est) < 1e-6);
    }
}
