//! Constraint-system preprocessing: zero elimination and pinned-term
//! substitution.
//!
//! The exponential-family dual (`pᵢ = exp(aᵢᵀλ − 1)`) is strictly positive,
//! so constraints that force terms to **exactly zero** — negative
//! association rules with confidence 1, such as the paper's
//! "male ⇒ ¬breast-cancer" — make the dual unbounded. Because every
//! constraint in this system is a *non-negative* combination of terms,
//! `rhs = 0` implies each participating term is zero; such terms are removed
//! from the variable set and substituted out of the remaining rows. The same
//! fixpoint also pins single-term rows (`coef·p = rhs ⇒ p = rhs/coef`),
//! shrinking the solve and detecting infeasibility early.

use crate::constraint::Constraint;
use crate::error::CoreError;

/// Numerical tolerance for "is zero" decisions during preprocessing.
const EPS: f64 = 1e-12;

/// A preprocessed (reduced) system.
#[derive(Debug, Clone)]
pub struct Reduced {
    /// Surviving rows, re-expressed over reduced variable indices.
    pub rows: Vec<Vec<(usize, f64)>>,
    /// Surviving right-hand sides (aligned with `rows`).
    pub rhs: Vec<f64>,
    /// Index of the original constraint each surviving row came from.
    pub row_origin: Vec<usize>,
    /// `var_map[reduced] = original term index`.
    pub var_map: Vec<usize>,
    /// `(original term index, value)` for every eliminated term.
    pub fixed: Vec<(usize, f64)>,
    /// Original number of terms.
    pub n_terms: usize,
}

impl Reduced {
    /// Scatters a reduced primal solution back to the full term space,
    /// filling in the fixed values.
    pub fn expand(&self, reduced_p: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.n_terms];
        for (&orig, &v) in self.var_map.iter().zip(reduced_p) {
            full[orig] = v;
        }
        for &(orig, v) in &self.fixed {
            full[orig] = v;
        }
        full
    }

    /// Number of free (surviving) variables.
    pub fn num_free(&self) -> usize {
        self.var_map.len()
    }
}

/// A borrowed constraint system in flat CSR-style storage: all rows'
/// coefficients concatenated in one contiguous buffer, with prefix-sum
/// `bounds` (`len = rows + 1`, `bounds[0] = 0`) delimiting row `r` as
/// `coeffs[bounds[r]..bounds[r + 1]]`. This is what the engine's
/// per-component scratch arena assembles — rows stay contiguous per
/// component, no per-row `Vec` allocations — and [`preprocess_flat`]
/// consumes it directly. Origins are deliberately absent: preprocessing
/// only reads coefficients and targets; callers track row identity by
/// position (`Reduced::row_origin`).
#[derive(Debug, Clone, Copy)]
pub struct FlatRows<'a> {
    /// Concatenated `(term, coefficient)` pairs of every row.
    pub coeffs: &'a [(usize, f64)],
    /// Row bounds: prefix sums into `coeffs` (`len = num_rows + 1`).
    pub bounds: &'a [usize],
    /// Right-hand sides, aligned with rows.
    pub rhs: &'a [f64],
}

impl FlatRows<'_> {
    /// Number of rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Row `r`'s coefficients.
    #[must_use]
    pub fn row(&self, r: usize) -> &[(usize, f64)] {
        &self.coeffs[self.bounds[r]..self.bounds[r + 1]]
    }
}

/// Runs the elimination fixpoint over `constraints` on `n_terms` variables.
pub fn preprocess(constraints: &[Constraint], n_terms: usize) -> Result<Reduced, CoreError> {
    let rows: Vec<Vec<(usize, f64)>> =
        constraints.iter().map(|c| c.coeffs.clone()).collect();
    let rhs: Vec<f64> = constraints.iter().map(|c| c.rhs).collect();
    run_fixpoint(rows, rhs, n_terms)
}

/// [`preprocess`] over a flat CSR-style system — the engine's hot path
/// (per-component rows assembled contiguously in a reusable scratch
/// arena). Row indices in `Reduced::row_origin` are positions in `system`.
pub fn preprocess_flat(system: FlatRows<'_>, n_terms: usize) -> Result<Reduced, CoreError> {
    let rows: Vec<Vec<(usize, f64)>> =
        (0..system.num_rows()).map(|r| system.row(r).to_vec()).collect();
    run_fixpoint(rows, system.rhs.to_vec(), n_terms)
}

/// The elimination fixpoint proper, over an owned working set (`rows` are
/// mutated in place as terms pin and substitute out).
fn run_fixpoint(
    mut rows: Vec<Vec<(usize, f64)>>,
    mut rhs: Vec<f64>,
    n_terms: usize,
) -> Result<Reduced, CoreError> {
    // fixed[t] = Some(value) once term t is eliminated.
    let mut fixed: Vec<Option<f64>> = vec![None; n_terms];
    // Upper bounds implied by non-negative rows: `c·p ≤ rhs ⇒ p ≤ rhs/c`.
    let mut ub: Vec<f64> = vec![f64::INFINITY; n_terms];
    let mut alive: Vec<bool> = vec![true; rows.len()];

    loop {
        let mut changed = false;
        for i in 0..rows.len() {
            if !alive[i] {
                continue;
            }
            // Substitute any newly fixed terms.
            let mut adjust = 0.0;
            rows[i].retain(|&(t, coef)| {
                if let Some(v) = fixed[t] {
                    adjust += coef * v;
                    false
                } else {
                    true
                }
            });
            rhs[i] -= adjust;

            let nonneg = rows[i].iter().all(|&(_, c)| c >= 0.0);
            if rows[i].is_empty() {
                if rhs[i].abs() > 1e-9 {
                    return Err(CoreError::Infeasible {
                        detail: format!(
                            "constraint {i} emptied with residual target {:.3e}",
                            rhs[i]
                        ),
                    });
                }
                alive[i] = false;
                changed = true;
            } else if nonneg && rhs[i] < -1e-9 {
                return Err(CoreError::Infeasible {
                    detail: format!(
                        "non-negative sum pinned to negative target {:.3e}",
                        rhs[i]
                    ),
                });
            } else if nonneg && rhs[i].abs() <= EPS {
                // Zero target ⇒ every term is zero.
                for &(t, _) in &rows[i] {
                    fixed[t] = Some(0.0);
                }
                alive[i] = false;
                changed = true;
            } else if rows[i].len() == 1 {
                let (t, coef) = rows[i][0];
                let v = rhs[i] / coef;
                if v < -1e-9 {
                    return Err(CoreError::Infeasible {
                        detail: format!("term pinned to negative value {v:.3e}"),
                    });
                }
                match fixed[t] {
                    Some(existing) if (existing - v).abs() > 1e-9 => {
                        return Err(CoreError::Infeasible {
                            detail: format!(
                                "term pinned to both {existing:.3e} and {v:.3e}"
                            ),
                        });
                    }
                    _ => fixed[t] = Some(v.max(0.0)),
                }
                alive[i] = false;
                changed = true;
            } else if nonneg {
                // Bound propagation: each row caps its variables, and a row
                // whose target equals the sum of those caps is *saturated* —
                // every variable sits exactly at its bound. This resolves
                // chains like "the knowledge row claims all 3 flus, so every
                // non-knowledge flu term is zero", which single-row rules
                // cannot see and which put the exponential dual on its
                // boundary.
                for &(t, c) in &rows[i] {
                    if c > 0.0 {
                        let cap = rhs[i] / c;
                        if cap < ub[t] {
                            ub[t] = cap;
                        }
                    }
                }
                let cap_sum: f64 = rows[i].iter().map(|&(t, c)| c * ub[t]).sum();
                let tol = 1e-9 * (1.0 + rhs[i].abs());
                if cap_sum.is_finite() {
                    if cap_sum < rhs[i] - tol {
                        return Err(CoreError::Infeasible {
                            detail: format!(
                                "row target {:.3e} exceeds its variables' caps {:.3e}",
                                rhs[i], cap_sum
                            ),
                        });
                    }
                    if cap_sum <= rhs[i] + tol {
                        for &(t, _) in &rows[i] {
                            fixed[t] = Some(ub[t].max(0.0));
                        }
                        alive[i] = false;
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Build the reduced variable space.
    let mut var_map = Vec::new();
    let mut reduced_of = vec![usize::MAX; n_terms];
    for t in 0..n_terms {
        if fixed[t].is_none() {
            reduced_of[t] = var_map.len();
            var_map.push(t);
        }
    }
    let mut out_rows = Vec::new();
    let mut out_rhs = Vec::new();
    let mut row_origin = Vec::new();
    for i in 0..rows.len() {
        if !alive[i] {
            continue;
        }
        let row: Vec<(usize, f64)> = rows[i]
            .iter()
            .map(|&(t, c)| (reduced_of[t], c))
            .collect();
        debug_assert!(row.iter().all(|&(t, _)| t != usize::MAX));
        out_rows.push(row);
        out_rhs.push(rhs[i]);
        row_origin.push(i);
    }

    Ok(Reduced {
        rows: out_rows,
        rhs: out_rhs,
        row_origin,
        var_map,
        fixed: fixed
            .iter()
            .enumerate()
            .filter_map(|(t, v)| v.map(|v| (t, v)))
            .collect(),
        n_terms,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::ConstraintOrigin;

    fn k(coeffs: Vec<(usize, f64)>, rhs: f64) -> Constraint {
        Constraint { coeffs, rhs, origin: ConstraintOrigin::Knowledge { index: 0 } }
    }

    #[test]
    fn zero_rhs_eliminates_all_terms() {
        let cs = vec![
            k(vec![(0, 1.0), (1, 1.0)], 0.0),
            k(vec![(1, 1.0), (2, 1.0), (3, 1.0)], 0.5),
        ];
        let r = preprocess(&cs, 4).unwrap();
        // Terms 0 and 1 fixed to zero; second row loses term 1.
        assert_eq!(r.num_free(), 2);
        assert_eq!(r.var_map, vec![2, 3]);
        assert_eq!(r.rows.len(), 1);
        assert_eq!(r.rows[0].len(), 2);
        assert!((r.rhs[0] - 0.5).abs() < 1e-12);
        let full = r.expand(&[0.2, 0.3]);
        assert_eq!(full, vec![0.0, 0.0, 0.2, 0.3]);
    }

    #[test]
    fn singleton_pinning_cascades() {
        // x0 = 0.3; x0 + x1 = 0.3 ⇒ x1 = 0 ⇒ x1 + x2 = 0.4 ⇒ x2 pinned 0.4.
        let cs = vec![
            k(vec![(0, 1.0)], 0.3),
            k(vec![(0, 1.0), (1, 1.0)], 0.3),
            k(vec![(1, 1.0), (2, 1.0)], 0.4),
        ];
        let r = preprocess(&cs, 3).unwrap();
        assert_eq!(r.num_free(), 0);
        let full = r.expand(&[]);
        assert!((full[0] - 0.3).abs() < 1e-12);
        assert!(full[1].abs() < 1e-12);
        assert!((full[2] - 0.4).abs() < 1e-12);
        assert!(r.rows.is_empty());
    }

    #[test]
    fn infeasible_negative_target() {
        let cs = vec![k(vec![(0, 1.0), (1, 1.0)], -0.1)];
        assert!(matches!(
            preprocess(&cs, 2),
            Err(CoreError::Infeasible { .. })
        ));
    }

    #[test]
    fn infeasible_contradictory_pins() {
        let cs = vec![k(vec![(0, 1.0)], 0.3), k(vec![(0, 1.0)], 0.4)];
        assert!(matches!(preprocess(&cs, 1), Err(CoreError::Infeasible { .. })));
    }

    #[test]
    fn infeasible_emptied_row() {
        // x0 = 0 via zero row, then x0 = 0.2 is contradictory.
        let cs = vec![k(vec![(0, 1.0)], 0.0), k(vec![(0, 1.0)], 0.2)];
        assert!(matches!(preprocess(&cs, 1), Err(CoreError::Infeasible { .. })));
    }

    /// The flat CSR-style entry point is the same fixpoint: identical
    /// `Reduced` (rows, rhs, origins, fixed terms) for the same system.
    #[test]
    fn flat_entry_point_matches_slice_entry_point() {
        let cs = vec![
            k(vec![(0, 1.0), (1, 1.0)], 0.0),
            k(vec![(1, 1.0), (2, 1.0), (3, 1.0)], 0.5),
            k(vec![(2, 2.0)], 0.4),
        ];
        let mut coeffs = Vec::new();
        let mut bounds = vec![0usize];
        let mut rhs = Vec::new();
        for c in &cs {
            coeffs.extend_from_slice(&c.coeffs);
            bounds.push(coeffs.len());
            rhs.push(c.rhs);
        }
        let flat = FlatRows { coeffs: &coeffs, bounds: &bounds, rhs: &rhs };
        assert_eq!(flat.num_rows(), 3);
        assert_eq!(flat.row(1), &cs[1].coeffs[..]);
        let a = preprocess(&cs, 4).unwrap();
        let b = preprocess_flat(flat, 4).unwrap();
        assert_eq!(a.rows, b.rows);
        assert_eq!(a.rhs, b.rhs);
        assert_eq!(a.row_origin, b.row_origin);
        assert_eq!(a.var_map, b.var_map);
        assert_eq!(a.fixed, b.fixed);
    }

    #[test]
    fn no_op_on_clean_system() {
        let cs = vec![
            k(vec![(0, 1.0), (1, 1.0)], 0.4),
            k(vec![(1, 1.0), (2, 1.0)], 0.6),
        ];
        let r = preprocess(&cs, 3).unwrap();
        assert_eq!(r.num_free(), 3);
        assert_eq!(r.rows.len(), 2);
        assert_eq!(r.row_origin, vec![0, 1]);
        assert!(r.fixed.is_empty());
    }
}
