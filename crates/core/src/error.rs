//! Errors of the Privacy-MaxEnt engine.

use std::fmt;

/// Errors raised while compiling or solving a Privacy-MaxEnt instance.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The constraint system is infeasible: preprocessing derived a
    /// contradiction (e.g. a non-negative sum pinned to a negative value, or
    /// an emptied constraint with non-zero residual target).
    ///
    /// Knowledge mined from the original data can never trigger this
    /// (Section 4.2 — the true assignment is feasible); hand-written
    /// knowledge can.
    Infeasible {
        /// Human-readable description of the contradiction.
        detail: String,
    },
    /// A knowledge item references a QI tuple position, SA value, or
    /// pseudonym outside the published table's domains.
    InvalidKnowledge {
        /// Description of the offending reference.
        detail: String,
    },
    /// A probability parameter lies outside `[0, 1]`.
    InvalidProbability(f64),
    /// The solver failed to converge within its budget.
    SolverFailed {
        /// Final residual achieved.
        residual: f64,
    },
    /// Knowledge about individuals was passed to the base engine; use
    /// [`crate::individuals::IndividualEngine`] instead.
    RequiresIndividualEngine,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { detail } => write!(f, "infeasible constraint system: {detail}"),
            Self::InvalidKnowledge { detail } => write!(f, "invalid knowledge: {detail}"),
            Self::InvalidProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            Self::SolverFailed { residual } => {
                write!(f, "solver failed to converge (residual {residual:.3e})")
            }
            Self::RequiresIndividualEngine => write!(
                f,
                "knowledge about individuals requires the pseudonym-expanded engine"
            ),
        }
    }
}

impl std::error::Error for CoreError {}
