//! The one error type of the Privacy-MaxEnt public API.
//!
//! Every fallible operation in this crate — [`crate::engine::Engine`],
//! [`crate::analyst::Analyst`], knowledge compilation, the individual
//! engine, report sweeps — returns [`PmError`]. The enum is
//! `#[non_exhaustive]` so future subsystems can add variants without a
//! breaking release, and it chains sources through
//! [`std::error::Error::source`]: a failed component re-solve surfaces as
//! [`PmError::Component`] whose source is the underlying solver/feasibility
//! error, so `anyhow`-style chain printers show
//! `component 17 failed: solver failed to converge (residual 3.1e0)`.

use std::fmt;

use crate::analyst::KnowledgeHandle;

/// Errors raised while compiling or solving a Privacy-MaxEnt instance.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PmError {
    /// The constraint system is infeasible: preprocessing derived a
    /// contradiction (e.g. a non-negative sum pinned to a negative value, or
    /// an emptied constraint with non-zero residual target).
    ///
    /// Knowledge mined from the original data can never trigger this
    /// (Section 4.2 — the true assignment is feasible); hand-written
    /// knowledge can.
    Infeasible {
        /// Human-readable description of the contradiction.
        detail: String,
    },
    /// A knowledge item references a QI tuple position, SA value, or
    /// pseudonym outside the published table's domains.
    InvalidKnowledge {
        /// Description of the offending reference.
        detail: String,
    },
    /// A probability parameter lies outside `[0, 1]`.
    InvalidProbability(f64),
    /// The solver failed to converge within its budget.
    SolverFailed {
        /// Final residual achieved.
        residual: f64,
    },
    /// Knowledge about individuals was passed to an entry point that only
    /// handles distribution knowledge; use
    /// [`crate::individuals::IndividualEngine`] or
    /// [`crate::analyst::Analyst::set_individuals`] instead.
    RequiresIndividualEngine,
    /// A [`KnowledgeHandle`] that was never issued by this session, or
    /// whose item was already removed.
    StaleHandle {
        /// The offending handle.
        handle: KnowledgeHandle,
    },
    /// A session was opened over a [`crate::compiled::CompiledTable`] with
    /// an [`crate::engine::EngineConfig`] disagreeing on a knob the
    /// artifact bakes in (`decompose`, `concise_invariants`) — serving from
    /// the mismatched artifact would silently change the estimate.
    ArtifactMismatch {
        /// Which knob disagreed, and how.
        detail: String,
    },
    /// An independent component's re-solve failed during a session refresh.
    /// [`std::error::Error::source`] returns the underlying error.
    Component {
        /// Index of the failing component in the session's current
        /// partition (components ascend by smallest bucket id).
        index: usize,
        /// The underlying failure.
        source: Box<PmError>,
    },
    /// A record-level [`crate::delta::TableDelta`] operation is
    /// inconsistent with the published table (unknown bucket, SA value
    /// outside the domain, retracting a record the bucket does not hold).
    /// The whole delta is rejected; no new epoch is produced.
    InvalidDelta {
        /// Description of the offending operation.
        detail: String,
    },
    /// A handle from one table epoch was used against another: e.g.
    /// [`crate::analyst::Analyst::rebase`] was given an artifact that is
    /// not the direct successor of the session's current epoch (wrong
    /// lineage, skipped epochs, or going backwards).
    EpochMismatch {
        /// The epoch the session (or handle) is pinned to.
        session_epoch: u64,
        /// The epoch of the artifact it was used against.
        artifact_epoch: u64,
        /// What went wrong, human-readably.
        detail: String,
    },
    /// A persisted snapshot or WAL ([`crate::persist`]) failed validation:
    /// wrong magic, a checksum mismatch, a length running past the end of
    /// the file, an out-of-range id — anything that makes the bytes
    /// untrustworthy. The decoder never panics or over-allocates on
    /// corrupt input; it returns this, pointing at the offending bytes.
    Corrupt {
        /// The section (or file region) that failed: `"header"`,
        /// `"meta"`, `"buckets"`, `"wal"`, ….
        section: String,
        /// Absolute byte offset (within the file) where validation failed.
        offset: u64,
        /// What exactly was wrong.
        detail: String,
    },
    /// A persisted file declares a format version this build does not
    /// read. Bump-and-migrate is deliberate: the golden-fixture test fails
    /// loudly when the encoding drifts without a version bump.
    UnsupportedFormat {
        /// The version the file declares.
        found: u32,
        /// The version this build reads ([`crate::persist::FORMAT_VERSION`]).
        supported: u32,
    },
    /// An I/O failure while reading or writing a persisted artifact. The
    /// OS error is carried as text so [`PmError`] stays `Clone + PartialEq`.
    Io {
        /// The file or directory involved.
        path: String,
        /// The stringified OS error.
        detail: String,
    },
    /// Replaying a WAL record onto the snapshot failed: the record was
    /// fully committed (checksum and commit marker valid) but its delta no
    /// longer applies, or its recorded summary disagrees with the replay.
    /// [`std::error::Error::source`] returns the underlying error.
    WalReplay {
        /// The epoch the failing record was advancing the table to.
        epoch: u64,
        /// The underlying failure.
        source: Box<PmError>,
    },
}

impl PmError {
    /// Strips [`PmError::Component`] and [`PmError::WalReplay`] wrappers,
    /// returning the root cause.
    pub fn root_cause(&self) -> &PmError {
        match self {
            Self::Component { source, .. } | Self::WalReplay { source, .. } => {
                source.root_cause()
            }
            other => other,
        }
    }

    /// Unwraps one level of [`PmError::Component`] context (identity for
    /// every other variant) — the legacy `Engine::estimate` surface, which
    /// predates per-component context.
    pub(crate) fn into_root_cause(self) -> PmError {
        match self {
            Self::Component { source, .. } => source.into_root_cause(),
            other => other,
        }
    }
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Infeasible { detail } => write!(f, "infeasible constraint system: {detail}"),
            Self::InvalidKnowledge { detail } => write!(f, "invalid knowledge: {detail}"),
            Self::InvalidProbability(p) => write!(f, "probability {p} outside [0, 1]"),
            Self::SolverFailed { residual } => {
                write!(f, "solver failed to converge (residual {residual:.3e})")
            }
            Self::RequiresIndividualEngine => write!(
                f,
                "knowledge about individuals requires the pseudonym-expanded engine"
            ),
            Self::StaleHandle { handle } => {
                write!(f, "knowledge handle {handle:?} is not live in this session")
            }
            Self::ArtifactMismatch { detail } => {
                write!(f, "session config incompatible with compiled artifact: {detail}")
            }
            // Context only; the chain is walked via `source()`.
            Self::Component { index, .. } => {
                write!(f, "component {index} failed to re-solve")
            }
            Self::InvalidDelta { detail } => write!(f, "invalid table delta: {detail}"),
            Self::EpochMismatch { session_epoch, artifact_epoch, detail } => write!(
                f,
                "epoch mismatch: session at epoch {session_epoch}, artifact at epoch \
                 {artifact_epoch} ({detail})"
            ),
            Self::Corrupt { section, offset, detail } => {
                write!(f, "corrupt {section} section at byte {offset}: {detail}")
            }
            Self::UnsupportedFormat { found, supported } => write!(
                f,
                "persisted format version {found} is not readable by this build \
                 (supports version {supported})"
            ),
            Self::Io { path, detail } => write!(f, "i/o error on {path}: {detail}"),
            // Context only; the chain is walked via `source()`.
            Self::WalReplay { epoch, .. } => {
                write!(f, "replaying the WAL record for epoch {epoch} failed")
            }
        }
    }
}

impl std::error::Error for PmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Component { source, .. } | Self::WalReplay { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

/// Legacy name of [`PmError`], kept so pre-session call sites (and the
/// paper-era examples in downstream forks) keep compiling.
pub type CoreError = PmError;

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn component_errors_chain_their_source() {
        let inner = PmError::SolverFailed { residual: 3.1 };
        let outer = PmError::Component { index: 17, source: Box::new(inner.clone()) };
        assert_eq!(outer.to_string(), "component 17 failed to re-solve");
        let chained = outer.source().expect("component carries a source");
        assert_eq!(chained.to_string(), inner.to_string());
        assert_eq!(outer.root_cause(), &inner);
        assert!(PmError::Infeasible { detail: "x".into() }.source().is_none());
    }

    #[test]
    fn persist_errors_display_and_chain() {
        let corrupt = PmError::Corrupt {
            section: "buckets".into(),
            offset: 96,
            detail: "checksum mismatch".into(),
        };
        assert_eq!(corrupt.to_string(), "corrupt buckets section at byte 96: checksum mismatch");
        assert!(corrupt.source().is_none());

        let version = PmError::UnsupportedFormat { found: 9, supported: 1 };
        assert_eq!(
            version.to_string(),
            "persisted format version 9 is not readable by this build (supports version 1)"
        );

        let io = PmError::Io { path: "/tmp/x.pmx".into(), detail: "permission denied".into() };
        assert_eq!(io.to_string(), "i/o error on /tmp/x.pmx: permission denied");

        let replay = PmError::WalReplay { epoch: 3, source: Box::new(corrupt.clone()) };
        assert_eq!(replay.to_string(), "replaying the WAL record for epoch 3 failed");
        assert_eq!(replay.source().expect("chained").to_string(), corrupt.to_string());
        assert_eq!(replay.root_cause(), &corrupt);
    }

    #[test]
    fn root_cause_strips_nested_wrappers() {
        let root = PmError::Infeasible { detail: "deep".into() };
        let nested = PmError::Component {
            index: 1,
            source: Box::new(PmError::Component { index: 2, source: Box::new(root.clone()) }),
        };
        assert_eq!(nested.root_cause(), &root);
        assert_eq!(nested.into_root_cause(), root);
    }
}
