//! Property tests of the preprocessor: elimination must never change the
//! solution set of a feasible non-negative constraint system.

use privacy_maxent::constraint::{Constraint, ConstraintOrigin};
use privacy_maxent::preprocess::preprocess;
use proptest::prelude::*;

/// Builds a random feasible system: draw a hidden non-negative solution
/// `x*`, draw random 0/1 rows, set each rhs to the row's value at `x*`.
fn feasible_system() -> impl Strategy<Value = (Vec<Constraint>, Vec<f64>)> {
    (2usize..10, 1usize..12, 0u64..10_000).prop_map(|(n, m, seed)| {
        // xorshift-ish deterministic values
        let mut state = seed.wrapping_mul(2654435761).wrapping_add(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let xstar: Vec<f64> = (0..n)
            .map(|_| match next() % 4 {
                0 => 0.0, // plant exact zeros to exercise elimination
                r => (r as f64) * 0.17,
            })
            .collect();
        let mut constraints = Vec::new();
        for i in 0..m {
            let mut coeffs = Vec::new();
            for t in 0..n {
                if next() % 3 == 0 {
                    coeffs.push((t, 1.0));
                }
            }
            if coeffs.is_empty() {
                coeffs.push((i % n, 1.0));
            }
            let rhs: f64 = coeffs.iter().map(|&(t, c)| c * xstar[t]).sum();
            constraints.push(Constraint {
                coeffs,
                rhs,
                origin: ConstraintOrigin::Knowledge { index: i },
            });
        }
        (constraints, xstar)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feasible systems always preprocess successfully, and the planted
    /// solution still satisfies the reduced system after re-expansion of
    /// its free part.
    #[test]
    fn feasible_systems_preprocess((constraints, xstar) in feasible_system()) {
        let n = xstar.len();
        let reduced = preprocess(&constraints, n).unwrap();
        // Fixed terms must agree with *some* feasible completion; in
        // particular every fix the preprocessor makes is forced, so the
        // planted solution must match it exactly.
        for &(t, v) in &reduced.fixed {
            prop_assert!(
                (xstar[t] - v).abs() < 1e-9,
                "term {} fixed to {} but planted {}", t, v, xstar[t]
            );
        }
        // The planted solution's free part satisfies every reduced row.
        for (row, &rhs) in reduced.rows.iter().zip(&reduced.rhs) {
            let lhs: f64 = row
                .iter()
                .map(|&(rt, c)| c * xstar[reduced.var_map[rt]])
                .sum();
            prop_assert!((lhs - rhs).abs() < 1e-9);
        }
        // Round trip: expanding the planted free values reproduces x*.
        let free: Vec<f64> = reduced.var_map.iter().map(|&t| xstar[t]).collect();
        let full = reduced.expand(&free);
        for t in 0..n {
            prop_assert!((full[t] - xstar[t]).abs() < 1e-9);
        }
    }

    /// Negative right-hand sides are always rejected.
    #[test]
    fn negative_targets_rejected(n in 1usize..6, rhs in -10.0f64..-0.01) {
        let c = Constraint {
            coeffs: (0..n).map(|t| (t, 1.0)).collect(),
            rhs,
            origin: ConstraintOrigin::Knowledge { index: 0 },
        };
        prop_assert!(preprocess(&[c], n).is_err());
    }
}
