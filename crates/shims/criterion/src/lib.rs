//! Minimal, dependency-free shim for the subset of the `criterion` API this
//! workspace uses. The build environment has no network access to a crates
//! registry, so the workspace vendors this shim via a `path` dependency.
//!
//! Benches compile and run under `cargo bench`, timing each target with a
//! short warm-up followed by up to `sample_size` measured samples and
//! printing `group/id  mean ± stddev` lines. Differences from real
//! criterion: no statistical analysis, HTML report or saved-baseline
//! comparison, and `measurement_time` is a *cap* on total sampling time
//! (sampling stops early once exceeded) rather than a target to fill.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one parameterized benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 100;
const DEFAULT_MEASUREMENT_TIME: Duration = Duration::from_secs(5);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            measurement_time: DEFAULT_MEASUREMENT_TIME,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_one(&id, DEFAULT_SAMPLE_SIZE, DEFAULT_MEASUREMENT_TIME, &mut f);
        self
    }
}

/// A named group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Collects up to `sample_size` timed samples of `routine` (one call
    /// per sample). Unlike real criterion, `measurement_time` acts as a
    /// cap, not a target: sampling stops early (after at least two samples)
    /// once it is exceeded. Calling `iter` twice replaces the previous
    /// samples rather than mixing the two routines' timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        self.samples.clear();
        // Warm-up (also primes caches / lazy statics).
        std_black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            std_black_box(routine());
            self.samples.push(start.elapsed());
            if self.samples.len() >= 2 && budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{id:<48} (no samples)");
        return;
    }
    let n = b.samples.len() as f64;
    let mean = b.samples.iter().map(Duration::as_secs_f64).sum::<f64>() / n;
    let var = b
        .samples
        .iter()
        .map(|d| (d.as_secs_f64() - mean).powi(2))
        .sum::<f64>()
        / n;
    println!(
        "{id:<48} {:>12} ± {}",
        format_time(mean),
        format_time(var.sqrt())
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Collects benchmark functions into a single group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(5);
        let mut ran = 0u32;
        group.bench_function("counting", |b| b.iter(|| ran = ran.wrapping_add(1)));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(ran >= 5, "routine executed at least once per sample");
    }
}
