//! Minimal, dependency-free shim for the subset of the `rand` 0.9 API this
//! workspace uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::random`,
//! `Rng::random_range`).
//!
//! The build environment has no network access to a crates registry, so the
//! workspace vendors this shim via a `path` dependency. The generator is
//! xoshiro256++ (the same family the real `SmallRng` uses on 64-bit
//! targets), seeded through SplitMix64 exactly like
//! `rand::SeedableRng::seed_from_u64`, so generated datasets are
//! deterministic, well distributed, and stable across runs.

use std::ops::Range;

/// Seedable random generator constructors.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw output.
pub trait Standard: Sized {
    fn from_raw(raw: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the high 53 bits, as the real crate does.
    fn from_raw(raw: u64) -> Self {
        (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn from_raw(raw: u64) -> Self {
        raw
    }
}

impl Standard for u32 {
    fn from_raw(raw: u64) -> Self {
        (raw >> 32) as u32
    }
}

impl Standard for bool {
    fn from_raw(raw: u64) -> Self {
        raw >> 63 == 1
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut dyn RngCore) -> Self::Output;
}

// Plain modulo reduction: biased for spans that don't divide 2^64, but the
// bias is ~span/2^64 — negligible for the tiny categorical ranges this
// workspace samples. Spans are computed with wrapping arithmetic in the
// widest type so ranges like `i64::MIN..i64::MAX` cannot overflow.
macro_rules! impl_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_uint_range!(usize, u64, u32, u16, u8);

macro_rules! impl_sint_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_sint_range!(i64, i32);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::from_raw(rng.next_u64()) * (self.end - self.start);
        // Rounding can land exactly on `end` when the span's ULP is coarse;
        // clamp to preserve the half-open [start, end) contract.
        v.min(self.end.next_down())
    }
}

/// Object-safe raw-output source, mirroring `rand_core::RngCore`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::from_raw(self.next_u64())
    }

    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ small fast generator.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, identical to rand_core's seed_from_u64.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.random_range(0usize..5);
            assert!(v < 5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..5 reachable");
    }

    #[test]
    fn full_width_signed_range_does_not_overflow() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut saw_negative = false;
        for _ in 0..1000 {
            let v = rng.random_range(i64::MIN..i64::MAX);
            saw_negative |= v < 0;
            assert!(v < i64::MAX);
        }
        assert!(saw_negative, "full-width range covers negatives");
    }

    #[test]
    fn f64_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }
}
