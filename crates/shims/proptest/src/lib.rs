//! Minimal, dependency-free shim for the subset of the `proptest` API this
//! workspace uses. The build environment has no network access to a crates
//! registry, so the workspace vendors this shim via a `path` dependency.
//!
//! Supported surface:
//! * `proptest! { #![proptest_config(..)] #[test] fn f(pat in strategy, ..) { .. } }`
//! * `Strategy` with `prop_map` / `prop_flat_map`, integer and float `Range`
//!   strategies, tuple strategies up to arity 6, `Just`, and
//!   `proptest::collection::vec`
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`
//! * `ProptestConfig::with_cases`
//!
//! Differences from real proptest: cases are sampled from a deterministic
//! per-test RNG (FNV-1a of the test name, overridable via the
//! `PROPTEST_SHIM_SEED` environment variable) and failing cases are *not*
//! shrunk — the panic message reports the case index instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A generator of random values of type [`Strategy::Value`].
    ///
    /// Unlike real proptest there is no value tree / shrinking; a strategy
    /// is just a seeded sampler.
    pub trait Strategy {
        type Value;

        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Blanket impl so `&strategy` works wherever a strategy is expected.
    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).new_value(rng)
        }
    }

    /// Strategy yielding a fixed value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn new_value(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.new_value(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.f)(self.base.new_value(rng)).new_value(rng)
        }
    }

    // Spans use wrapping arithmetic in the widest type so full-width ranges
    // like `i64::MIN..i64::MAX` cannot overflow.
    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(usize, u8, u16, u32, u64);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
                }
            }
        )*};
    }

    impl_signed_range_strategy!(i8, i16, i32, i64);

    // Rounding can land exactly on `end` when the span's ULP is coarse;
    // clamp to preserve the half-open [start, end) contract.
    impl Strategy for Range<f64> {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.next_unit_f64() * (self.end - self.start);
            v.min(self.end.next_down())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn new_value(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty strategy range");
            let v = self.start + rng.next_unit_f64() as f32 * (self.end - self.start);
            v.min(self.end.next_down())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.new_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a `Vec` whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.new_value(rng);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic generator driving all strategies — a thin wrapper over
    /// the workspace `rand` shim's `SmallRng`, so there is a single PRNG
    /// core to maintain (real proptest depends on `rand` the same way).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        inner: rand::rngs::SmallRng,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            use rand::SeedableRng;
            TestRng { inner: rand::rngs::SmallRng::seed_from_u64(seed) }
        }

        /// Per-test deterministic seed: FNV-1a of the test name, XORed with
        /// `PROPTEST_SHIM_SEED` when set (for reproducing CI runs locally).
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            if let Ok(s) = std::env::var("PROPTEST_SHIM_SEED") {
                if let Ok(extra) = s.parse::<u64>() {
                    h ^= extra;
                }
            }
            Self::from_seed(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            rand::Rng::random::<f64>(&mut self.inner)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// The proptest harness macro: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $config;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            for __case in 0..__config.cases {
                let __run = |__rng: &mut $crate::test_runner::TestRng| {
                    $(let $pat = $crate::strategy::Strategy::new_value(&($strat), __rng);)+
                    $body
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(|| __run(&mut __rng)),
                );
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest-shim: test '{}' failed at case {}/{} (no shrinking)",
                        stringify!($name), __case + 1, __config.cases,
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::Config::default()); $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(n in 3usize..17, x in -2.5f64..4.0) {
            prop_assert!((3..17).contains(&n));
            prop_assert!((-2.5..4.0).contains(&x));
        }

        #[test]
        fn full_width_signed_range_in_bounds(x in i64::MIN..i64::MAX, y in -128i64..128) {
            prop_assert!(x < i64::MAX);
            prop_assert!((-128..128).contains(&y));
        }

        #[test]
        fn flat_map_respects_dependent_bound(
            (len, v) in (1usize..9).prop_flat_map(|n| {
                crate::collection::vec(0usize..n, 0..20).prop_map(move |v| (n, v))
            }),
        ) {
            prop_assert!(len >= 1);
            for &e in &v {
                prop_assert!(e < len);
            }
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::for_test("t1");
        let mut b = crate::test_runner::TestRng::for_test("t1");
        let s = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(s.new_value(&mut a), s.new_value(&mut b));
        }
    }
}
