//! `pm-reactor` — std-only readiness-driven I/O for the serving stack.
//!
//! One event-loop thread multiplexes every connection through a raw
//! [`poll(2)`](sys) readiness loop (the single C symbol this crate binds;
//! std already links libc, so no `libc` crate and no new dependency — the
//! same vendoring policy as `crates/shims/`). Connections live in a
//! [`Slab`] of state machines: nonblocking accept → u32-LE length-prefixed
//! frame assembly (partial frames span readiness events) → dispatch to a
//! **fixed worker pool** → buffered nonblocking writes with a bounded
//! [`OutBuf`] and typed shed on overflow. A self-pipe [`Waker`] lets
//! workers and shutdown paths interrupt `poll` from any thread.
//!
//! The application plugs in through the [`Service`] trait; the reactor
//! knows framing and backpressure, never the protocol. Total threads are
//! fixed at bind time (`workers + 1`) no matter how many connections are
//! live — that is the whole point: tens of thousands of mostly-idle
//! sessions cost fds and buffers, not threads.
//!
//! Unix-only by construction (`poll(2)`, `UnixStream::pair` self-pipe).
//!
//! ```no_run
//! use std::sync::Arc;
//! use pm_reactor::{Config, Outcome, Reactor, Service};
//!
//! struct Echo;
//! impl Service for Echo {
//!     type Conn = ();
//!     fn connect(&self) -> Self::Conn {}
//!     fn frame(&self, _conn: &mut Self::Conn, body: Vec<u8>) -> Outcome {
//!         let mut frame = (body.len() as u32).to_le_bytes().to_vec();
//!         frame.extend_from_slice(&body);
//!         Outcome { frames: vec![frame], close: false }
//!     }
//!     fn oversized(&self, _len: usize) -> Outcome {
//!         Outcome { frames: Vec::new(), close: true }
//!     }
//!     fn reject(&self) -> Option<Vec<u8>> { None }
//!     fn drain_frame(&self) -> Option<Vec<u8>> { None }
//!     fn shed_frame(&self, _pending: usize) -> Option<Vec<u8>> { None }
//! }
//!
//! # fn main() -> std::io::Result<()> {
//! let reactor = Reactor::bind("127.0.0.1:0", Arc::new(Echo), Config::default())?;
//! println!("echoing on {}", reactor.addr());
//! # Ok(()) }
//! ```

#![warn(missing_docs)]

mod outbuf;
mod reactor;
mod slab;
pub mod sys;
mod wake;

pub use outbuf::OutBuf;
pub use reactor::{Config, Outcome, Reactor, Service, FRAME_HEADER_LEN};
pub use slab::Slab;
pub use wake::{pair as waker_pair, WakeRx, Waker};
