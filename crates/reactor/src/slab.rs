//! A minimal slab: stable `usize` tokens for per-connection state, O(1)
//! insert/remove, vacant slots recycled through a free list. Tokens are
//! reused, so callers that hand tokens to other threads must pair them
//! with a generation counter (the reactor does).
//!
//! Every accessor is total — out-of-range or vacant tokens return `None`
//! rather than panicking, which keeps the event loop inside the
//! workspace's panic-policy audit rule.

/// One slot: occupied payload or a recyclable hole.
enum Entry<T> {
    Occupied(T),
    Vacant,
}

/// The slab.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<usize>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// An empty slab.
    #[must_use]
    pub fn new() -> Self {
        Self { entries: Vec::new(), free: Vec::new(), len: 0 }
    }

    /// Occupied slots.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no slot is occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its token.
    pub fn insert(&mut self, value: T) -> usize {
        self.len += 1;
        if let Some(token) = self.free.pop() {
            if let Some(slot) = self.entries.get_mut(token) {
                *slot = Entry::Occupied(value);
                return token;
            }
            // A free-list token outside the vector cannot happen (tokens
            // are only pushed by `remove`), but stay total: fall through
            // and append.
        }
        self.entries.push(Entry::Occupied(value));
        self.entries.len() - 1
    }

    /// The value at `token`, if occupied.
    #[must_use]
    pub fn get(&self, token: usize) -> Option<&T> {
        match self.entries.get(token) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Mutable access to the value at `token`, if occupied.
    pub fn get_mut(&mut self, token: usize) -> Option<&mut T> {
        match self.entries.get_mut(token) {
            Some(Entry::Occupied(v)) => Some(v),
            _ => None,
        }
    }

    /// Removes and returns the value at `token`; `None` if it was vacant.
    pub fn remove(&mut self, token: usize) -> Option<T> {
        let slot = self.entries.get_mut(token)?;
        if matches!(slot, Entry::Vacant) {
            return None;
        }
        let value = std::mem::replace(slot, Entry::Vacant);
        self.free.push(token);
        self.len -= 1;
        match value {
            Entry::Occupied(v) => Some(v),
            Entry::Vacant => None,
        }
    }

    /// Iterates occupied `(token, &value)` pairs in token order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.entries.iter().enumerate().filter_map(|(i, e)| match e {
            Entry::Occupied(v) => Some((i, v)),
            Entry::Vacant => None,
        })
    }

    /// The occupied tokens, collected — for loops that mutate the slab
    /// while walking it.
    #[must_use]
    pub fn tokens(&self) -> Vec<usize> {
        self.iter().map(|(t, _)| t).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(a), Some(&"a"));
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.remove(a), Some("a"));
        assert_eq!(s.get(a), None);
        assert_eq!(s.remove(a), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn tokens_are_recycled() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.remove(a);
        let b = s.insert(2);
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(s.get(b), Some(&2));
    }

    #[test]
    fn out_of_range_tokens_are_none() {
        let mut s = Slab::<u8>::new();
        assert!(s.get(99).is_none());
        assert!(s.get_mut(99).is_none());
        assert!(s.remove(99).is_none());
    }

    #[test]
    fn iter_walks_occupied_in_token_order() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        let c = s.insert("c");
        s.remove(b);
        let seen: Vec<_> = s.iter().collect();
        assert_eq!(seen, vec![(a, &"a"), (c, &"c")]);
        assert_eq!(s.tokens(), vec![a, c]);
    }
}
