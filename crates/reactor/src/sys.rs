//! The one syscall std does not wrap: `poll(2)`.
//!
//! The workspace vendors its external *crates* as shims
//! (`crates/shims/`); this module applies the same policy to the one C
//! symbol the reactor needs. std already links the platform libc, so a
//! bare `extern "C"` declaration binds `poll` without adding the `libc`
//! crate — no new dependency, no registry access.
//!
//! This is the only module in the workspace that needs `unsafe`: the
//! workspace-level `unsafe_code = "deny"` lint is overridden here, and
//! only here, because a raw pointer + length pair crosses the FFI
//! boundary. The wrapper below keeps the unsafety local: it takes a Rust
//! slice, so the pointer is valid and the length is its length by
//! construction.

#![allow(unsafe_code)]

use std::ffi::{c_int, c_short, c_ulong};
use std::io;
use std::os::fd::RawFd;

/// Readable (or a peer FIN is queued behind the readable bytes).
pub const POLLIN: c_short = 0x001;
/// Writable without blocking.
pub const POLLOUT: c_short = 0x004;
/// Error condition (revents only).
pub const POLLERR: c_short = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: c_short = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: c_short = 0x020;

/// `struct pollfd` — layout fixed by POSIX: fd, requested events, returned
/// events.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by the
    /// kernel, which poll-based loops use to park a slot).
    pub fd: RawFd,
    /// Requested readiness (`POLLIN` / `POLLOUT`).
    pub events: c_short,
    /// Kernel-reported readiness; includes `POLLERR`/`POLLHUP`/`POLLNVAL`
    /// even when not requested.
    pub revents: c_short,
}

impl PollFd {
    /// A fresh interest entry for `fd`.
    #[must_use]
    pub fn new(fd: RawFd, events: c_short) -> Self {
        Self { fd, events, revents: 0 }
    }
}

extern "C" {
    fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
}

/// Blocks until at least one entry is ready or `timeout_ms` elapses
/// (negative = wait forever). Retries `EINTR` internally, so a signal
/// never surfaces as an error. Returns the number of ready entries.
pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    loop {
        // SAFETY: `fds` is a live mutable slice for the duration of the
        // call; the pointer and length describe exactly that slice, and
        // `PollFd` is `repr(C)` with the POSIX `struct pollfd` layout.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc >= 0 {
            return Ok(rc as usize);
        }
        let err = io::Error::last_os_error();
        if err.kind() != io::ErrorKind::Interrupted {
            return Err(err);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;

    #[test]
    fn timeout_expires_with_no_ready_fds() {
        let (_a, b) = UnixStream::pair().expect("pair");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 10).expect("poll");
        assert_eq!(n, 0);
        assert_eq!(fds[0].revents, 0);
    }

    #[test]
    fn readable_byte_reports_pollin() {
        let (mut a, b) = UnixStream::pair().expect("pair");
        a.write_all(&[7]).expect("write");
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & POLLIN, 0);
    }

    #[test]
    fn hangup_is_reported_even_unrequested() {
        let (a, b) = UnixStream::pair().expect("pair");
        drop(a);
        let mut fds = [PollFd::new(b.as_raw_fd(), POLLIN)];
        let n = poll_fds(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert_ne!(fds[0].revents & (POLLIN | POLLHUP), 0);
    }
}
