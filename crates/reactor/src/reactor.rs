//! The event loop: one thread multiplexing every connection through
//! `poll(2)`, plus a fixed worker pool for the frames themselves.
//!
//! # Lifecycle of a connection
//!
//! ```text
//! accept ──► slab slot (nonblocking, level-triggered interest)
//!    POLLIN  ──► read chunks ──► extract u32-LE length-prefixed frames
//!                                   │ (a partial frame simply stays in
//!                                   │  the buffer until the next event)
//!                                   ▼
//!                     pending queue ──► ONE in-flight job at a time
//!                                          │ worker: Service::frame
//!                                          ▼
//!                     completion queue ◄── waker (self-pipe byte)
//!                                   │
//!    POLLOUT ◄── bounded OutBuf ◄───┘ (overflow ⇒ shed: final typed
//!                                      frame, then close-after-flush)
//! ```
//!
//! Ordering: responses leave in request order because a connection never
//! has two frames in flight — the next pending frame is submitted only
//! when the previous completion has been applied. Fairness: reads are
//! budgeted per readiness event, so one firehose connection cannot starve
//! the rest of the slab.
//!
//! The loop itself never blocks on a solve, a lock held by application
//! code, or a slow socket: all application work happens on the workers,
//! and all socket writes are nonblocking against the per-connection
//! buffer.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crate::outbuf::OutBuf;
use crate::slab::Slab;
use crate::sys::{poll_fds, PollFd, POLLERR, POLLHUP, POLLIN, POLLNVAL, POLLOUT};
use crate::wake::{self, WakeRx, Waker};

/// Length prefix: 4 bytes, little-endian `u32`, counting the body only.
pub const FRAME_HEADER_LEN: usize = 4;

/// Decoded-but-undispatched frames a connection may hold before the loop
/// pauses reading it (natural pipelining backpressure).
const PENDING_LIMIT: usize = 64;

/// Read budget per readiness event, so a firehose peer cannot starve the
/// rest of the slab (level-triggered poll re-reports leftover bytes).
const READ_BUDGET: usize = 1 << 20;

/// Bytes per read syscall.
const READ_CHUNK: usize = 16 * 1024;

/// A connection with unflushed bytes and no write progress for this long
/// is declared wedged and dropped.
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// After the final frame is flushed and FIN sent, how long the loop keeps
/// swallowing the peer's leftover bytes so the close does not degrade
/// into an RST that eats that frame.
const LINGER_TIMEOUT: Duration = Duration::from_millis(250);

/// What the application wants done with one processed frame.
pub struct Outcome {
    /// Complete wire frames (header included) to queue, in order.
    pub frames: Vec<Vec<u8>>,
    /// Close the connection once everything queued has flushed.
    pub close: bool,
}

/// The application behind the reactor. `frame` runs on a worker thread;
/// everything else runs on the event loop and must stay cheap
/// (encode-only, no locks shared with `frame`).
pub trait Service: Send + Sync + 'static {
    /// Per-connection application state (e.g. the handshake result). It
    /// travels with each job to the worker and back, which is what makes
    /// `frame` safe to hand `&mut` state without a lock: a connection
    /// never has two frames in flight.
    type Conn: Send + 'static;

    /// State for a freshly accepted connection.
    fn connect(&self) -> Self::Conn;

    /// Processes one complete frame body (worker thread).
    fn frame(&self, conn: &mut Self::Conn, body: Vec<u8>) -> Outcome;

    /// A frame whose length prefix exceeds the cap; the body was never
    /// read. The connection closes after the returned frames flush.
    fn oversized(&self, len: usize) -> Outcome;

    /// Final frame for a connection rejected over the connection cap.
    fn reject(&self) -> Option<Vec<u8>>;

    /// Final frame appended to every live connection on graceful drain.
    fn drain_frame(&self) -> Option<Vec<u8>>;

    /// Final frame for a slow consumer whose outbound buffer overflowed
    /// (`pending` = frames already queued at the overflow).
    fn shed_frame(&self, pending: usize) -> Option<Vec<u8>>;
}

/// Tuning and admission knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Worker threads dispatching frames (total threads = workers + 1).
    pub workers: usize,
    /// Connections admitted concurrently; beyond this, `Service::reject`.
    pub max_connections: usize,
    /// Largest frame body accepted; larger prefixes get
    /// `Service::oversized` and a close.
    pub max_frame_bytes: usize,
    /// Response frames buffered per connection before the shed.
    pub outbuf_frames: usize,
    /// Outbound bytes buffered per connection before the shed.
    pub outbuf_bytes: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            workers: 4,
            max_connections: 1024,
            max_frame_bytes: 4 << 20,
            outbuf_frames: 256,
            outbuf_bytes: 8 << 20,
        }
    }
}

/// A running reactor. Dropping the handle drains and joins everything.
pub struct Reactor {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    connections: Arc<AtomicUsize>,
    threads: usize,
    join: Option<JoinHandle<()>>,
}

impl Reactor {
    /// Binds `addr` and starts the event loop plus `config.workers`
    /// worker threads serving `service`.
    pub fn bind<S: Service>(
        addr: impl ToSocketAddrs,
        service: Arc<S>,
        config: Config,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let (waker, wake_rx) = wake::pair()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let connections = Arc::new(AtomicUsize::new(0));
        let workers = config.workers.max(1);

        let (jobs_tx, jobs_rx) = channel::<Job<S::Conn>>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let done: Arc<Mutex<Vec<Completion<S::Conn>>>> = Arc::new(Mutex::new(Vec::new()));
        let mut worker_joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let service = Arc::clone(&service);
            let jobs_rx = Arc::clone(&jobs_rx);
            let done = Arc::clone(&done);
            let waker = waker.clone();
            worker_joins.push(
                thread::Builder::new()
                    .name(format!("pmx-reactor-worker-{i}"))
                    .spawn(move || worker_loop(&service, &jobs_rx, &done, &waker))?,
            );
        }

        let event_loop = EventLoop {
            listener: Some(listener),
            service,
            config: Config { workers, ..config },
            shutdown: Arc::clone(&shutdown),
            wake_rx,
            connections: Arc::clone(&connections),
            conns: Slab::new(),
            jobs_tx: Some(jobs_tx),
            done,
            worker_joins,
            next_gen: 0,
            draining: false,
        };
        let join = thread::Builder::new()
            .name("pmx-reactor".into())
            .spawn(move || event_loop.run())?;

        Ok(Self { addr, shutdown, waker, connections, threads: workers + 1, join: Some(join) })
    }

    /// The bound address (resolved port when bound to port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live connections right now.
    #[must_use]
    pub fn connection_count(&self) -> usize {
        self.connections.load(Ordering::Acquire)
    }

    /// Total threads this reactor runs: the event loop plus its workers.
    /// Fixed at bind time — it does not grow with connections.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.threads
    }

    /// Graceful drain: stop accepting, send every live connection the
    /// service's drain frame, flush, close, join workers. Idempotent.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        self.waker.wake();
        if let Some(handle) = self.join.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// The handle crosses threads in embedders; keep the bound a compile-time
// fact.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Reactor>();
};

/// A frame travelling to a worker, carrying the connection's application
/// state with it (returned via [`Completion`]).
struct Job<C> {
    token: usize,
    gen: u64,
    body: Vec<u8>,
    state: C,
}

/// A processed frame travelling back to the event loop.
struct Completion<C> {
    token: usize,
    gen: u64,
    state: C,
    outcome: Outcome,
}

/// Poison-recovering lock: the queues hold plain data, and every producer
/// publishes complete values, so continuing past a poisoned lock is
/// sound.
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

fn worker_loop<S: Service>(
    service: &Arc<S>,
    jobs: &Arc<Mutex<Receiver<Job<S::Conn>>>>,
    done: &Arc<Mutex<Vec<Completion<S::Conn>>>>,
    waker: &Waker,
) {
    loop {
        // Hold the receiver lock only across the dequeue, not the work.
        let job = {
            let rx = lock(jobs);
            rx.recv()
        };
        let Ok(mut job) = job else { return }; // reactor gone: exit
        let outcome = service.frame(&mut job.state, job.body);
        lock(done).push(Completion {
            token: job.token,
            gen: job.gen,
            state: job.state,
            outcome,
        });
        waker.wake();
    }
}

/// Per-connection state machine.
struct Conn<C> {
    stream: TcpStream,
    /// Guards against token reuse: completions for a previous tenant of
    /// this slot are discarded.
    gen: u64,
    /// Unparsed inbound bytes (at most one partial frame plus a read
    /// chunk once the pending queue throttles extraction).
    inbuf: Vec<u8>,
    out: OutBuf,
    /// Application state; `None` exactly while a job is in flight.
    state: Option<C>,
    /// Complete frame bodies awaiting dispatch, oldest first.
    pending: std::collections::VecDeque<Vec<u8>>,
    in_flight: bool,
    /// Peer sent FIN (clean EOF).
    eof: bool,
    /// Swallow further inbound bytes instead of parsing them.
    discard_input: bool,
    /// Close once the outbound buffer drains.
    close_after_flush: bool,
    /// Our FIN is out; we linger briefly draining the peer.
    fin_sent: bool,
    shed: bool,
    linger_deadline: Option<Instant>,
    last_progress: Instant,
}

impl<C> Conn<C> {
    fn new(stream: TcpStream, gen: u64, state: C, now: Instant) -> Self {
        Self {
            stream,
            gen,
            inbuf: Vec::new(),
            out: OutBuf::new(),
            state: Some(state),
            pending: std::collections::VecDeque::new(),
            in_flight: false,
            eof: false,
            discard_input: false,
            close_after_flush: false,
            fin_sent: false,
            shed: false,
            linger_deadline: None,
            last_progress: now,
        }
    }

    /// Level-triggered read interest.
    fn wants_read(&self) -> bool {
        if self.eof {
            return false;
        }
        if self.fin_sent {
            return true; // lingering: drain the peer to EOF
        }
        !self.discard_input && self.pending.len() < PENDING_LIMIT
    }

    /// Idle means no frame queued or in flight.
    fn idle(&self) -> bool {
        !self.in_flight && self.pending.is_empty()
    }
}

struct EventLoop<S: Service> {
    listener: Option<TcpListener>,
    service: Arc<S>,
    config: Config,
    shutdown: Arc<AtomicBool>,
    wake_rx: WakeRx,
    connections: Arc<AtomicUsize>,
    conns: Slab<Conn<S::Conn>>,
    jobs_tx: Option<Sender<Job<S::Conn>>>,
    done: Arc<Mutex<Vec<Completion<S::Conn>>>>,
    worker_joins: Vec<JoinHandle<()>>,
    next_gen: u64,
    draining: bool,
}

impl<S: Service> EventLoop<S> {
    fn run(mut self) {
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                self.begin_drain();
                if self.conns.is_empty() {
                    break;
                }
            }

            let (mut fds, tokens, base) = self.build_poll_set();
            let timeout = self.poll_timeout();
            if poll_fds(&mut fds, timeout).is_err() {
                // EINVAL/ENOMEM from poll leaves no fd-level recovery;
                // drain and exit rather than spin.
                self.shutdown.store(true, Ordering::Release);
                continue;
            }
            let now = Instant::now();

            if fds.first().is_some_and(|f| f.revents != 0) {
                self.wake_rx.drain();
            }
            self.collect_completions(now);
            if base > 1 && fds.get(1).is_some_and(|l| l.revents != 0) {
                self.accept_ready(now);
            }
            for (i, token) in tokens.iter().enumerate() {
                let Some(f) = fds.get(base + i) else { break };
                if f.revents != 0 {
                    self.conn_ready(*token, f.revents, now);
                }
            }
            self.sweep_deadlines(now);
        }
        // Drop the job sender so idle workers see a closed channel, then
        // join them (any in-flight job finishes first).
        self.jobs_tx = None;
        for handle in std::mem::take(&mut self.worker_joins) {
            let _ = handle.join();
        }
    }

    /// The poll set: waker first, listener second (while accepting), then
    /// every connection with live interest. Returns the fds, the token
    /// for each connection entry, and the index of the first connection.
    fn build_poll_set(&self) -> (Vec<PollFd>, Vec<usize>, usize) {
        let mut fds = Vec::with_capacity(2 + self.conns.len());
        let mut tokens = Vec::with_capacity(self.conns.len());
        fds.push(PollFd::new(self.wake_rx.fd(), POLLIN));
        if let Some(listener) = &self.listener {
            fds.push(PollFd::new(listener.as_raw_fd(), POLLIN));
        }
        let base = fds.len();
        for (token, conn) in self.conns.iter() {
            let mut events = 0;
            if conn.wants_read() {
                events |= POLLIN;
            }
            if !conn.out.is_empty() {
                events |= POLLOUT;
            }
            if events != 0 {
                fds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(token);
            }
        }
        (fds, tokens, base)
    }

    /// Sleep forever when nothing is timed; tick when any connection has
    /// unflushed bytes (stall detection) or a linger deadline.
    fn poll_timeout(&self) -> i32 {
        let timed = self
            .conns
            .iter()
            .any(|(_, c)| !c.out.is_empty() || c.linger_deadline.is_some());
        if timed || self.draining {
            50
        } else {
            -1
        }
    }

    fn collect_completions(&mut self, now: Instant) {
        let done = {
            let mut queue = lock(&self.done);
            std::mem::take(&mut *queue)
        };
        for completion in done {
            let token = completion.token;
            {
                let Some(conn) = self.conns.get_mut(token) else { continue };
                if conn.gen != completion.gen {
                    continue; // slot was reused; stale completion
                }
                conn.in_flight = false;
                conn.state = Some(completion.state);
            }
            self.apply_outcome(token, completion.outcome, now);
            self.submit_next(token);
            self.maybe_finish(token, now);
        }
    }

    /// Queues an outcome's frames with the shed policy, then flushes
    /// opportunistically.
    fn apply_outcome(&mut self, token: usize, outcome: Outcome, now: Instant) {
        let (frames_cap, bytes_cap) = (self.config.outbuf_frames, self.config.outbuf_bytes);
        let mut shed_pending = None;
        {
            let Some(conn) = self.conns.get_mut(token) else { return };
            // A connection already closing (shed or drain) has its final
            // frame queued; late responses are dropped.
            if !conn.shed && !conn.close_after_flush {
                for frame in &outcome.frames {
                    let over = conn.out.frames_pending() >= frames_cap
                        || conn.out.bytes_pending() + frame.len() > bytes_cap;
                    if over {
                        shed_pending = Some(conn.out.frames_pending());
                        break;
                    }
                    conn.out.push(frame);
                }
                if outcome.close {
                    conn.close_after_flush = true;
                    conn.discard_input = true;
                    conn.pending.clear();
                    conn.inbuf = Vec::new();
                }
            }
        }
        if let Some(pending) = shed_pending {
            let frame = self.service.shed_frame(pending);
            if let Some(conn) = self.conns.get_mut(token) {
                conn.shed = true;
                conn.discard_input = true;
                conn.close_after_flush = true;
                conn.pending.clear();
                conn.inbuf = Vec::new();
                if let Some(frame) = frame {
                    // The one frame allowed past the bound: the typed
                    // disconnect itself.
                    conn.out.push(&frame);
                }
            }
        }
        self.try_flush(token, now);
    }

    /// Submits the next pending frame if the connection is open and has
    /// no job in flight.
    fn submit_next(&mut self, token: usize) {
        let job = {
            let Some(conn) = self.conns.get_mut(token) else { return };
            if conn.in_flight || conn.close_after_flush || conn.shed {
                return;
            }
            let Some(body) = conn.pending.pop_front() else { return };
            let Some(state) = conn.state.take() else {
                conn.pending.push_front(body);
                return;
            };
            conn.in_flight = true;
            Job { token, gen: conn.gen, body, state }
        };
        let sent = self.jobs_tx.as_ref().is_some_and(|tx| tx.send(job).is_ok());
        if !sent {
            self.close(token);
        }
    }

    fn accept_ready(&mut self, now: Instant) {
        loop {
            let Some(listener) = &self.listener else { return };
            match listener.accept() {
                Ok((stream, _peer)) => {
                    if self.connections.load(Ordering::Acquire) >= self.config.max_connections {
                        if let Some(frame) = self.service.reject() {
                            let _ = stream.set_nonblocking(true);
                            let _ = (&stream).write(&frame);
                        }
                        let _ = stream.shutdown(Shutdown::Both);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    self.connections.fetch_add(1, Ordering::AcqRel);
                    let gen = self.next_gen;
                    self.next_gen += 1;
                    let state = self.service.connect();
                    self.conns.insert(Conn::new(stream, gen, state, now));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return, // transient (EMFILE, reset in backlog): retry on next event
            }
        }
    }

    fn conn_ready(&mut self, token: usize, revents: i16, now: Instant) {
        if revents & POLLNVAL != 0 {
            self.close(token);
            return;
        }
        if revents & (POLLIN | POLLHUP | POLLERR) != 0 {
            self.read_ready(token, now);
        }
        if revents & POLLOUT != 0 {
            self.try_flush(token, now);
        }
    }

    fn read_ready(&mut self, token: usize, now: Instant) {
        let mut chunk = [0u8; READ_CHUNK];
        let mut budget = READ_BUDGET;
        loop {
            let Some(conn) = self.conns.get_mut(token) else { return };
            match (&conn.stream).read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    break;
                }
                Ok(n) => {
                    conn.last_progress = now;
                    if !conn.discard_input {
                        if let Some(bytes) = chunk.get(..n) {
                            conn.inbuf.extend_from_slice(bytes);
                        }
                    }
                    budget = budget.saturating_sub(n);
                    if budget == 0 || n < READ_CHUNK {
                        break; // level-triggered poll re-reports leftovers
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        self.extract_frames(token, now);
        self.submit_next(token);
        self.maybe_finish(token, now);
    }

    /// Peels complete length-prefixed frames off the inbound buffer. A
    /// partial frame — even a partial 4-byte header — simply stays put
    /// until more readiness events deliver the rest.
    fn extract_frames(&mut self, token: usize, now: Instant) {
        loop {
            let (len, available) = {
                let Some(conn) = self.conns.get_mut(token) else { return };
                if conn.discard_input {
                    conn.inbuf.clear();
                    return;
                }
                if conn.pending.len() >= PENDING_LIMIT {
                    return; // throttled; wants_read() pauses the socket
                }
                let Some(&header) = conn.inbuf.first_chunk::<FRAME_HEADER_LEN>() else {
                    return;
                };
                (u32::from_le_bytes(header) as usize, conn.inbuf.len() - FRAME_HEADER_LEN)
            };
            if len > self.config.max_frame_bytes {
                // Checked before any len-sized allocation: a hostile
                // prefix costs nothing.
                let outcome = self.service.oversized(len);
                self.apply_outcome(token, outcome, now);
                if let Some(conn) = self.conns.get_mut(token) {
                    // The stream cannot be resynchronized past a bad
                    // length; stop parsing regardless of the outcome.
                    conn.discard_input = true;
                    conn.close_after_flush = true;
                    conn.inbuf = Vec::new();
                }
                return;
            }
            if available < len {
                return; // body still in flight
            }
            let Some(conn) = self.conns.get_mut(token) else { return };
            let body = conn
                .inbuf
                .get(FRAME_HEADER_LEN..FRAME_HEADER_LEN + len)
                .map(<[u8]>::to_vec)
                .unwrap_or_default();
            conn.inbuf.drain(..FRAME_HEADER_LEN + len);
            conn.pending.push_back(body);
        }
    }

    fn try_flush(&mut self, token: usize, now: Instant) {
        let flushed = {
            let Some(conn) = self.conns.get_mut(token) else { return };
            match conn.out.flush(&conn.stream) {
                Ok(n) => {
                    if n > 0 {
                        conn.last_progress = now;
                    }
                    true
                }
                Err(_) => false,
            }
        };
        if !flushed {
            self.close(token);
            return;
        }
        self.maybe_finish(token, now);
    }

    /// Advances the close protocol: once a finished connection has
    /// flushed everything, send FIN and linger briefly so the peer can
    /// read the final frame before the fd drops (an unread receive queue
    /// at close would RST it away).
    fn maybe_finish(&mut self, token: usize, now: Instant) {
        let peer_gone = {
            let Some(conn) = self.conns.get_mut(token) else { return };
            let finished = (conn.close_after_flush || conn.eof) && conn.idle();
            if !(finished && conn.out.is_empty()) {
                return;
            }
            if !conn.fin_sent {
                let _ = conn.stream.shutdown(Shutdown::Write);
                conn.fin_sent = true;
                conn.discard_input = true;
                conn.linger_deadline = Some(now + LINGER_TIMEOUT);
            }
            conn.eof
        };
        if peer_gone {
            self.close(token); // both directions closed: nothing to linger for
        }
    }

    fn sweep_deadlines(&mut self, now: Instant) {
        for token in self.conns.tokens() {
            let expired = self.conns.get(token).is_some_and(|conn| {
                conn.linger_deadline.is_some_and(|d| now >= d)
                    || (!conn.out.is_empty()
                        && now.duration_since(conn.last_progress) > WRITE_STALL_TIMEOUT)
            });
            if expired {
                self.close(token);
            }
        }
    }

    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(token) {
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.connections.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Graceful drain, entered once: stop accepting (drops the listener,
    /// freeing the port), append the service's drain frame to every open
    /// connection, and let the normal flush/linger machinery close them.
    fn begin_drain(&mut self) {
        if self.draining {
            return;
        }
        self.draining = true;
        self.listener = None;
        let now = Instant::now();
        for token in self.conns.tokens() {
            let frame = self.service.drain_frame();
            if let Some(conn) = self.conns.get_mut(token) {
                if !conn.shed && !conn.close_after_flush {
                    if let Some(frame) = frame {
                        conn.out.push(&frame);
                    }
                }
                conn.close_after_flush = true;
                conn.discard_input = true;
                conn.pending.clear();
                // In-flight jobs finish on the workers; their late
                // responses are dropped by apply_outcome.
                conn.in_flight = false;
                conn.state = None;
                conn.gen = u64::MAX; // discard any completion in flight
                conn.inbuf = Vec::new();
            }
            self.try_flush(token, now);
        }
    }
}
