//! The bounded outbound byte buffer behind each connection's nonblocking
//! writes. Frames are appended whole; flushing writes as many bytes as
//! the socket accepts and remembers the cursor, so one response can span
//! many `POLLOUT` readiness events. Frame boundaries are tracked so the
//! backpressure policy can bound *frames* and *bytes* independently.

use std::collections::VecDeque;
use std::io::{self, Write};

/// Pending outbound bytes for one connection.
#[derive(Default)]
pub struct OutBuf {
    buf: Vec<u8>,
    cursor: usize,
    /// Unflushed byte counts per queued frame, oldest first.
    frames: VecDeque<usize>,
}

impl OutBuf {
    /// An empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Queued frames not yet fully flushed.
    #[must_use]
    pub fn frames_pending(&self) -> usize {
        self.frames.len()
    }

    /// Bytes not yet flushed.
    #[must_use]
    pub fn bytes_pending(&self) -> usize {
        self.buf.len().saturating_sub(self.cursor)
    }

    /// True when everything queued has reached the socket.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes_pending() == 0
    }

    /// Appends one complete wire frame.
    pub fn push(&mut self, frame: &[u8]) {
        self.buf.extend_from_slice(frame);
        self.frames.push_back(frame.len());
    }

    /// Writes as much as the socket will take. Returns the bytes written;
    /// `WouldBlock` stops the flush without error, any other failure is
    /// returned. Flushed storage is reclaimed once the buffer empties.
    pub fn flush(&mut self, mut w: impl Write) -> io::Result<usize> {
        let mut total = 0usize;
        while let Some(rest) = self.buf.get(self.cursor..) {
            if rest.is_empty() {
                break;
            }
            match w.write(rest) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.advance(n);
                    total += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        if self.cursor >= self.buf.len() {
            self.buf.clear();
            self.cursor = 0;
        }
        Ok(total)
    }

    /// Advances the cursor by `n` written bytes, retiring frame
    /// boundaries the write crossed.
    fn advance(&mut self, mut n: usize) {
        self.cursor += n;
        while let Some(front) = self.frames.front_mut() {
            if n >= *front {
                n -= *front;
                self.frames.pop_front();
            } else {
                *front -= n;
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A sink that accepts at most `cap` bytes per write and then
    /// `WouldBlock`s, to model a congested socket.
    struct Choked {
        got: Vec<u8>,
        cap: usize,
        budget: usize,
    }

    impl Write for Choked {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.budget == 0 {
                return Err(io::ErrorKind::WouldBlock.into());
            }
            let n = buf.len().min(self.cap).min(self.budget);
            self.got.extend_from_slice(&buf[..n]);
            self.budget -= n;
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn partial_flushes_span_calls_and_keep_frame_counts() {
        let mut out = OutBuf::new();
        out.push(b"aaaa");
        out.push(b"bbbb");
        assert_eq!(out.frames_pending(), 2);
        assert_eq!(out.bytes_pending(), 8);

        let mut sink = Choked { got: Vec::new(), cap: 3, budget: 5 };
        let n = out.flush(&mut sink).expect("flush");
        assert_eq!(n, 5);
        assert_eq!(out.bytes_pending(), 3);
        assert_eq!(out.frames_pending(), 1, "first frame fully flushed");

        sink.budget = 100;
        out.flush(&mut sink).expect("flush");
        assert!(out.is_empty());
        assert_eq!(out.frames_pending(), 0);
        assert_eq!(sink.got, b"aaaabbbb");
    }

    #[test]
    fn storage_is_reclaimed_when_drained() {
        let mut out = OutBuf::new();
        out.push(&[0u8; 1024]);
        let mut sink = Choked { got: Vec::new(), cap: 4096, budget: 4096 };
        out.flush(&mut sink).expect("flush");
        assert!(out.is_empty());
        out.push(b"x");
        assert_eq!(out.bytes_pending(), 1);
    }
}
