//! The self-pipe: a nonblocking `UnixStream` pair whose read end sits in
//! the poll set. Any thread holding a [`Waker`] writes one byte to pull
//! the event loop out of `poll(2)` — that is how worker completions and
//! the shutdown flag become visible without a timeout-based busy loop.

use std::io::{self, Read, Write};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::Arc;

/// The write end; clone freely across threads.
#[derive(Clone)]
pub struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    /// Nudges the event loop. A full pipe means a wakeup is already
    /// pending, so `WouldBlock` (and any other failure) is deliberately
    /// ignored — the loop will drain the pipe and re-check all queues.
    pub fn wake(&self) {
        let _ = (&*self.tx).write(&[1u8]);
    }
}

/// The read end; owned by the event loop.
pub struct WakeRx {
    rx: UnixStream,
}

impl WakeRx {
    /// The fd to register for `POLLIN`.
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Swallows every pending wakeup byte (nonblocking).
    pub fn drain(&mut self) {
        let mut sink = [0u8; 256];
        while matches!(self.rx.read(&mut sink), Ok(n) if n > 0) {}
    }
}

/// A connected waker pair, both ends nonblocking.
pub fn pair() -> io::Result<(Waker, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((Waker { tx: Arc::new(tx) }, WakeRx { rx }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sys::{poll_fds, PollFd, POLLIN};

    #[test]
    fn wake_makes_the_rx_readable_and_drain_clears_it() {
        let (waker, mut rx) = pair().expect("pair");
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0, "idle pipe");

        waker.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).expect("poll"), 1);

        rx.drain();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 0).expect("poll"), 0, "drained");
    }

    #[test]
    fn thousands_of_wakes_never_block() {
        let (waker, mut rx) = pair().expect("pair");
        for _ in 0..100_000 {
            waker.wake(); // pipe fills; surplus wakes are dropped
        }
        rx.drain();
        waker.wake();
        let mut fds = [PollFd::new(rx.fd(), POLLIN)];
        assert_eq!(poll_fds(&mut fds, 1000).expect("poll"), 1);
    }
}
