//! Protocol-agnostic reactor tests over a tiny echo service: frame
//! assembly across readiness events, ordering, admission, shed, drain.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pm_reactor::{Config, Outcome, Reactor, Service};

/// Echoes every body back; a body of `"die"` closes after the echo.
struct Echo {
    frames_seen: AtomicUsize,
}

fn frame(body: &[u8]) -> Vec<u8> {
    let mut f = (body.len() as u32).to_le_bytes().to_vec();
    f.extend_from_slice(body);
    f
}

impl Service for Echo {
    type Conn = u64;

    fn connect(&self) -> Self::Conn {
        0
    }

    fn frame(&self, seq: &mut Self::Conn, body: Vec<u8>) -> Outcome {
        self.frames_seen.fetch_add(1, Ordering::Relaxed);
        *seq += 1;
        let close = body == b"die";
        let mut echoed = seq.to_le_bytes().to_vec();
        echoed.extend_from_slice(&body);
        Outcome { frames: vec![frame(&echoed)], close }
    }

    fn oversized(&self, _len: usize) -> Outcome {
        Outcome { frames: vec![frame(b"TOOBIG")], close: true }
    }

    fn reject(&self) -> Option<Vec<u8>> {
        Some(frame(b"FULL"))
    }

    fn drain_frame(&self) -> Option<Vec<u8>> {
        Some(frame(b"BYE"))
    }

    fn shed_frame(&self, _pending: usize) -> Option<Vec<u8>> {
        Some(frame(b"SLOW"))
    }
}

fn boot(config: Config) -> Reactor {
    Reactor::bind("127.0.0.1:0", Arc::new(Echo { frames_seen: AtomicUsize::new(0) }), config)
        .expect("bind")
}

fn read_frame(stream: &mut TcpStream) -> Option<Vec<u8>> {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).ok()?;
    let mut body = vec![0u8; u32::from_le_bytes(header) as usize];
    stream.read_exact(&mut body).ok()?;
    Some(body)
}

/// Strips the 8-byte sequence prefix the echo service prepends.
fn payload(body: &[u8]) -> &[u8] {
    &body[8..]
}

#[test]
fn roundtrip_and_per_connection_sequencing() {
    let reactor = boot(Config::default());
    let mut a = TcpStream::connect(reactor.addr()).expect("connect");
    let mut b = TcpStream::connect(reactor.addr()).expect("connect");
    for i in 0..10u8 {
        a.write_all(&frame(&[i])).expect("write");
        b.write_all(&frame(&[100 + i])).expect("write");
        let ra = read_frame(&mut a).expect("frame");
        let rb = read_frame(&mut b).expect("frame");
        // Per-connection sequence numbers advance independently: the
        // worker pool sees each connection's state exclusively.
        assert_eq!(u64::from_le_bytes(ra[..8].try_into().unwrap()), u64::from(i) + 1);
        assert_eq!(payload(&ra), &[i]);
        assert_eq!(u64::from_le_bytes(rb[..8].try_into().unwrap()), u64::from(i) + 1);
        assert_eq!(payload(&rb), &[100 + i]);
    }
}

#[test]
fn pipelined_frames_answer_in_order() {
    let reactor = boot(Config::default());
    let mut c = TcpStream::connect(reactor.addr()).expect("connect");
    let mut blob = Vec::new();
    for i in 0..50u8 {
        blob.extend_from_slice(&frame(&[i]));
    }
    c.write_all(&blob).expect("write");
    for i in 0..50u8 {
        let r = read_frame(&mut c).expect("frame");
        assert_eq!(payload(&r), &[i], "responses must keep request order");
    }
}

#[test]
fn partial_frames_span_readiness_events() {
    let reactor = boot(Config::default());
    let mut c = TcpStream::connect(reactor.addr()).expect("connect");
    c.set_nodelay(true).expect("nodelay");
    let f = frame(b"split-me");
    // Dribble the frame one byte at a time; each write is a separate
    // readiness event on the reactor side.
    for byte in &f {
        c.write_all(std::slice::from_ref(byte)).expect("write");
        thread::sleep(Duration::from_millis(1));
    }
    let r = read_frame(&mut c).expect("frame");
    assert_eq!(payload(&r), b"split-me");
}

#[test]
fn connection_cap_rejects_with_the_service_frame() {
    let mut reactor = boot(Config { max_connections: 2, ..Config::default() });
    let a = TcpStream::connect(reactor.addr()).expect("connect");
    let b = TcpStream::connect(reactor.addr()).expect("connect");
    // The cap is enforced on the reactor thread at accept; give the two
    // admitted sockets a moment to be registered.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while reactor.connection_count() < 2 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(reactor.connection_count(), 2);
    let mut over = TcpStream::connect(reactor.addr()).expect("connect");
    let r = read_frame(&mut over).expect("reject frame");
    assert_eq!(r, b"FULL");
    assert_eq!(read_frame(&mut over), None, "rejected socket closes");
    drop((a, b));
    reactor.shutdown();
}

#[test]
fn oversized_length_prefix_is_answered_and_closed_without_allocation() {
    let reactor = boot(Config { max_frame_bytes: 1024, ..Config::default() });
    let mut c = TcpStream::connect(reactor.addr()).expect("connect");
    c.write_all(&u32::MAX.to_le_bytes()).expect("write");
    let r = read_frame(&mut c).expect("frame");
    assert_eq!(r, b"TOOBIG");
    assert_eq!(read_frame(&mut c), None, "connection closes after the typed answer");
}

#[test]
fn slow_consumer_is_shed_with_the_final_frame() {
    let reactor = boot(Config { outbuf_frames: 2, ..Config::default() });
    let mut c = TcpStream::connect(reactor.addr()).expect("connect");
    // Ask for ~1 MiB of echo per request and never read: the kernel
    // buffer fills, the outbound buffer hits its frame bound, shed.
    let big = vec![7u8; 1 << 20];
    let f = frame(&big);
    // A shed connection is jammed (the reactor stops reading it); bound
    // the writes so this client unjams and starts draining.
    c.set_write_timeout(Some(Duration::from_millis(500))).expect("timeout");
    let mut wrote_err = false;
    for _ in 0..64 {
        if c.write_all(&f).is_err() {
            wrote_err = true;
            break;
        }
    }
    let _ = wrote_err; // jamming is timing-dependent; the contract is below
    let _ = c.shutdown(Shutdown::Write);
    // Now drain: whatever was buffered, the LAST frame must be the shed
    // marker, then EOF.
    c.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut last = None;
    while let Some(body) = read_frame(&mut c) {
        last = Some(body);
    }
    assert_eq!(last.as_deref(), Some(&b"SLOW"[..]), "final frame is the typed shed");
}

#[test]
fn graceful_shutdown_sends_the_drain_frame_then_eof() {
    let mut reactor = boot(Config::default());
    let mut c = TcpStream::connect(reactor.addr()).expect("connect");
    c.write_all(&frame(b"hi")).expect("write");
    let r = read_frame(&mut c).expect("frame");
    assert_eq!(payload(&r), b"hi");

    let handle = thread::spawn(move || {
        reactor.shutdown();
        reactor
    });
    c.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let bye = read_frame(&mut c).expect("drain frame");
    assert_eq!(bye, b"BYE");
    assert_eq!(read_frame(&mut c), None, "EOF after the drain frame");
    let reactor = handle.join().expect("join");
    assert_eq!(reactor.connection_count(), 0);
}

#[test]
fn thread_count_is_fixed_regardless_of_connections() {
    let reactor = boot(Config { workers: 3, ..Config::default() });
    assert_eq!(reactor.thread_count(), 4);
    let conns: Vec<_> =
        (0..100).map(|_| TcpStream::connect(reactor.addr()).expect("connect")).collect();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while reactor.connection_count() < 100 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(reactor.connection_count(), 100);
    assert_eq!(reactor.thread_count(), 4, "threads do not grow with connections");
    drop(conns);
}

#[test]
fn half_close_still_gets_all_answers() {
    let reactor = boot(Config::default());
    let mut c = TcpStream::connect(reactor.addr()).expect("connect");
    let mut blob = Vec::new();
    for i in 0..5u8 {
        blob.extend_from_slice(&frame(&[i]));
    }
    c.write_all(&blob).expect("write");
    c.shutdown(Shutdown::Write).expect("half-close");
    for i in 0..5u8 {
        let r = read_frame(&mut c).expect("frame");
        assert_eq!(payload(&r), &[i]);
    }
    assert_eq!(read_frame(&mut c), None, "clean EOF after the answers");
}
