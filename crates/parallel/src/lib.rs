//! # pm-parallel
//!
//! A tiny std-only fork-join executor for embarrassingly parallel batches.
//!
//! The Section 5.5 decomposition splits the maxent solve into many small
//! independent per-component systems; this crate runs such batches on a
//! bounded pool of scoped threads (`std::thread::scope`) with **work
//! stealing over chunks**: workers claim the next unprocessed chunk of the
//! input from a shared atomic cursor, so a worker that draws cheap items
//! keeps pulling work instead of idling behind a statically assigned slice.
//!
//! The offline build environment has no crates registry, so `rayon` is not
//! an option — the surface here is the minimal subset the engine needs:
//!
//! * [`map`] / [`map_chunked`] — parallel indexed map preserving input
//!   order. Output `i` is always the result for input `i`, regardless of
//!   which worker computed it or when, so callers that merge results in
//!   input order are deterministic by construction.
//! * [`map_subset`] — dirty-set scheduling: map only a caller-chosen set of
//!   indices (the incremental session engine's dirty components), results
//!   aligned with the subset.
//! * [`broadcast`] — one scoped thread per task, for driving N independent
//!   concurrent *sessions* (shared-artifact `Analyst` handles) rather than
//!   load-balancing a batch.
//! * [`available_parallelism`] / [`resolve_threads`] — the `0 = auto`
//!   thread-count convention shared by `EngineConfig::threads` and the CLI.
//!
//! No `unsafe`: workers accumulate `(index, value)` pairs locally and the
//! caller scatters them after joining, trading one allocation per worker
//! for a safe, dependency-free implementation. A panicking closure panics
//! the calling thread after all workers have stopped (no work is leaked).

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of hardware threads, with a serial fallback when the platform
/// cannot tell (`std::thread::available_parallelism` errors).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism().map(usize::from).unwrap_or(1)
}

/// Resolves a requested thread count: `0` means "use every available core"
/// (the default of `EngineConfig::threads` and the CLI's `--threads`).
pub fn resolve_threads(requested: usize) -> usize {
    if requested == 0 {
        available_parallelism()
    } else {
        requested
    }
}

/// Chunk size balancing steal overhead against load imbalance: ~4 steals
/// per worker, so one slow chunk costs at most ~1/4 of a worker's share.
fn default_chunk(num_items: usize, threads: usize) -> usize {
    (num_items / (threads * 4)).max(1)
}

/// Parallel indexed map with an automatically chosen chunk size.
///
/// Calls `f(i, &items[i])` for every `i` and returns the results in input
/// order. `threads` follows the [`resolve_threads`] convention (`0` =
/// all cores); with one effective worker the map runs on the calling
/// thread with no pool at all.
pub fn map<T, R, F>(threads: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = resolve_threads(threads);
    map_chunked(threads, default_chunk(items.len(), threads), items, f)
}

/// Parallel indexed map over a *subset* of `items` — dirty-set scheduling.
///
/// Incremental callers (the `privacy-maxent` session engine) keep a full
/// slate of components but only need a few *dirty* ones re-solved per
/// refresh; this schedules exactly `indices` on the pool and returns
/// `f(i, &items[i])` for each `i` in `indices`, **in `indices` order** —
/// so a caller that merges results in a fixed dirty-set order stays
/// deterministic for every thread count, exactly like [`map`].
///
/// Duplicate indices are allowed (each occurrence is computed); `threads`
/// follows the [`resolve_threads`] convention.
///
/// # Panics
/// Panics if any index is out of bounds, or (propagated) if `f` panics.
pub fn map_subset<T, R, F>(threads: usize, items: &[T], indices: &[usize], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map(threads, indices, |_, &i| f(i, &items[i]))
}

/// Runs `f(0), f(1), …, f(tasks - 1)` on `tasks` concurrent scoped
/// threads, returning the results in task order.
///
/// Unlike [`map`], which load-balances a batch over a bounded pool, this
/// spawns **one OS thread per task** — the shape for testing or driving
/// genuinely concurrent *sessions* (e.g. N `Analyst` handles forked from
/// one shared `CompiledTable`, each evolving its own adversary model),
/// where every task must make progress independently rather than queue
/// behind a worker. `tasks` may exceed the core count. With `tasks <= 1`
/// the closure runs on the calling thread.
///
/// # Panics
/// Propagates the first panicking task after all tasks have stopped.
pub fn broadcast<R, F>(tasks: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    if tasks == 0 {
        return Vec::new();
    }
    if tasks == 1 {
        return vec![f(0)];
    }
    std::thread::scope(|s| {
        let f = &f;
        let handles: Vec<_> = (0..tasks).map(|i| s.spawn(move || f(i))).collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|panic| std::panic::resume_unwind(panic)))
            .collect()
    })
}

/// Parallel indexed map with an explicit chunk size.
///
/// Workers repeatedly claim the next `chunk` items from a shared cursor
/// until the input is exhausted (work stealing over chunks). Results are
/// returned in input order whatever the claim interleaving was.
///
/// # Panics
/// Panics if `chunk == 0`, or (propagated) if `f` panics on any item.
pub fn map_chunked<T, R, F>(threads: usize, chunk: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_chunked_with(threads, chunk, items, || (), |(), i, t| f(i, t))
}

/// [`map_chunked`] with **per-worker state**: each worker calls `init()`
/// exactly once and threads the resulting value mutably through every item
/// it processes.
///
/// This is the scratch-arena shape: a worker that draws a batch of tiny
/// solver tasks reuses one warm allocation arena across all of them
/// instead of cold-starting per item. The state is worker-local — `f` gets
/// `&mut S` without locks — and is dropped when the worker finishes; it
/// never migrates between workers. Correctness must not depend on *which*
/// items share a state: callers (the engine's batched component solves)
/// treat `S` as a cache whose contents are cleared, not trusted, at each
/// item, keeping results bit-identical for every thread count and claim
/// interleaving.
///
/// With one effective worker everything runs on the calling thread with a
/// single `init()` — the serial path exercises the exact same reuse.
///
/// # Panics
/// Panics if `chunk == 0`, or (propagated) if `init` or `f` panics.
pub fn map_chunked_with<T, S, R, FS, F>(
    threads: usize,
    chunk: usize,
    items: &[T],
    init: FS,
    f: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    FS: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    assert!(chunk > 0, "chunk size must be positive");
    let num_chunks = items.len().div_ceil(chunk);
    let workers = resolve_threads(threads).min(num_chunks);
    if workers <= 1 {
        let mut state = init();
        return items.iter().enumerate().map(|(i, t)| f(&mut state, i, t)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);

    let worker = |state: &mut S, out: &mut Vec<(usize, R)>| {
        loop {
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= items.len() {
                break;
            }
            let end = (start + chunk).min(items.len());
            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                out.push((i, f(state, i, item)));
            }
        }
    };

    std::thread::scope(|s| {
        let init = &init;
        let worker = &worker;
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(move || {
                    let mut state = init();
                    let mut out = Vec::new();
                    worker(&mut state, &mut out);
                    out
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(pairs) => {
                    for (i, r) in pairs {
                        slots[i] = Some(r);
                    }
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 3, 8] {
            let out = map(threads, &items, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn explicit_chunk_sizes() {
        let items: Vec<usize> = (0..97).collect();
        for chunk in [1, 2, 7, 97, 1000] {
            let out = map_chunked(4, chunk, &items, |_, &x| x + 1);
            assert_eq!(out, (1..98).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(8, &empty, |_, &x| x).is_empty());
        assert_eq!(map(8, &[41], |_, &x| x + 1), vec![42]);
    }

    #[test]
    fn more_threads_than_items() {
        let out = map_chunked(64, 1, &[1, 2, 3], |_, &x| x * x);
        assert_eq!(out, vec![1, 4, 9]);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counters: Vec<AtomicU64> = (0..256).map(|_| AtomicU64::new(0)).collect();
        map_chunked(8, 3, &(0..256).collect::<Vec<usize>>(), |_, &i| {
            counters[i].fetch_add(1, Ordering::Relaxed)
        });
        for (i, c) in counters.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "item {i}");
        }
    }

    #[test]
    fn subset_scheduling_preserves_subset_order() {
        let items: Vec<usize> = (0..100).map(|x| x * 10).collect();
        let dirty = [17usize, 3, 99, 3, 0];
        for threads in [1, 2, 8] {
            let out = map_subset(threads, &items, &dirty, |i, &v| {
                assert_eq!(v, i * 10);
                v + 1
            });
            assert_eq!(out, vec![171, 31, 991, 31, 1]);
        }
        let none: [usize; 0] = [];
        assert!(map_subset(4, &items, &none, |_, &v| v).is_empty());
    }

    #[test]
    fn subset_out_of_bounds_panics() {
        let result = std::panic::catch_unwind(|| {
            map_subset(2, &[1, 2, 3], &[0, 7], |_, &v: &i32| v)
        });
        assert!(result.is_err());
    }

    #[test]
    fn zero_threads_means_auto() {
        assert_eq!(resolve_threads(0), available_parallelism());
        assert_eq!(resolve_threads(3), 3);
        let out = map(0, &(0..50).collect::<Vec<usize>>(), |_, &x| x);
        assert_eq!(out.len(), 50);
    }

    #[test]
    fn worker_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_chunked(4, 1, &(0..32).collect::<Vec<usize>>(), |_, &x| {
                assert!(x != 17, "boom at 17");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_rejected() {
        map_chunked(2, 0, &[1], |_, &x: &i32| x);
    }

    #[test]
    fn per_worker_state_initialised_once_per_worker() {
        let inits = AtomicU64::new(0);
        let items: Vec<usize> = (0..200).collect();
        for threads in [1, 2, 4] {
            inits.store(0, Ordering::SeqCst);
            let out = map_chunked_with(
                threads,
                3,
                &items,
                || {
                    inits.fetch_add(1, Ordering::SeqCst);
                    Vec::<usize>::new()
                },
                |scratch, i, &x| {
                    // A reused arena carries garbage from the previous item;
                    // correct callers clear it rather than trust it.
                    scratch.push(x);
                    i + x
                },
            );
            assert_eq!(out, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
            let n = inits.load(Ordering::SeqCst);
            assert!(n >= 1, "at least one worker state");
            assert!(
                n <= resolve_threads(threads) as u64,
                "threads={threads}: {n} states exceeds the worker count"
            );
        }
    }

    #[test]
    fn per_worker_state_reused_across_chunks() {
        // One worker, chunk 1 over many items: a single state must see
        // every item (reuse across chunk claims, not per-chunk re-init).
        let items: Vec<usize> = (0..57).collect();
        let out = map_chunked_with(
            1,
            1,
            &items,
            Vec::<usize>::new,
            |seen, _, &x| {
                seen.push(x);
                seen.len()
            },
        );
        assert_eq!(out, (1..=57).collect::<Vec<_>>());
    }

    #[test]
    fn map_chunked_with_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            map_chunked_with(4, 1, &(0..32).collect::<Vec<usize>>(), || 0u64, |_, _, &x| {
                assert!(x != 9, "boom at 9");
                x
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn broadcast_runs_every_task_concurrently() {
        // More tasks than cores is fine: every task runs on its own thread.
        let out = broadcast(8, |i| i * i);
        assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49]);
        assert_eq!(broadcast(1, |i| i + 41), vec![41]);
        assert!(broadcast(0, |i| i).is_empty());
        // All 4 tasks are live at once: each waits for every other to
        // check in, which only terminates if none queues behind another.
        let arrivals = AtomicU64::new(0);
        let out = broadcast(4, |i| {
            arrivals.fetch_add(1, Ordering::SeqCst);
            while arrivals.load(Ordering::SeqCst) < 4 {
                std::thread::yield_now();
            }
            i
        });
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn broadcast_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            broadcast(4, |i| {
                assert!(i != 2, "boom at 2");
                i
            })
        });
        assert!(result.is_err());
    }
}
