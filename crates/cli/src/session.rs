//! `pmx session` — the interactive / scripted delta mode over a resident
//! [`Analyst`].
//!
//! The publication is built once; the adversary model then evolves
//! command-by-command, and each `refresh` re-solves only the components the
//! deltas touched. Commands arrive on stdin (interactive) or from a
//! `--script` file, one per line; a line starting with `#` is a comment
//! (inline `#` is not — handles are spelled `#N`).
//!
//! ```text
//! add <pos=val,...> <sa> <prob>   compile P(sa | Qv) = prob, mark dirty
//! mine <k+> <k->                  add the next k+/k− strongest mined rules
//! remove <handle>                 retract a delta (handle as printed, e.g. #3)
//! refresh                         re-solve dirty components, report stats
//! query <q> [<sa>]                P*(sa | q) (or the whole row) — no recompute
//! list                            live knowledge items with their handles
//! report                          privacy scores + last-refresh shape
//! insert <val,...> <sa> <bucket>  stage a late-arriving record (table delta)
//! retract <val,...> <sa> <bucket> stage a record retraction (table delta)
//! move <val,...> <sa> <from> <to> stage a bucket re-assignment (table delta)
//! rebase                          apply the staged table delta: advance the
//!                                 artifact one epoch (recompiling only the
//!                                 touched buckets) and carry the session's
//!                                 knowledge across; `refresh` to re-solve
//! discard                         drop the staged (not yet rebased) delta ops
//! reset                           discard the adversary model and reopen the
//!                                 session from the shared artifact (O(1): no
//!                                 recompile, back to the Theorem 5 baseline)
//! quit / exit                     leave the session
//! ```
//!
//! The publication is compiled once into a shared `CompiledTable` artifact
//! (the same build `pmx compile` runs); opening — and `reset`-ing — the
//! resident session from it skips every knowledge-independent stage. The
//! table itself is **live**: `insert` / `retract` / `move` stage record
//! deltas and `rebase` advances the artifact to the next epoch, keeping the
//! adversary model resident.
//!
//! The artifact is also **durable**: `--artifact FILE` opens over a saved
//! snapshot without recompiling, and `--persist DIR` owns a snapshot + WAL
//! directory — recovered (snapshot + committed WAL tail) at startup, with
//! every `rebase` epoch journaled so the next start replays to it.

use std::error::Error;
use std::io::{BufRead, Write};

use std::sync::Arc;

use pm_assoc::miner::{MinerConfig, RuleMiner, MinedRules};
use pm_microdata::dataset::Dataset;
use pm_microdata::value::Value;
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE};
use privacy_maxent::CompiledTable;

use crate::args::{Options, SessionOptions};
use crate::compile;
use crate::quantify;

/// Runs `pmx session`.
pub fn run(options: &SessionOptions) -> Result<(), Box<dyn Error>> {
    let (analyst, data, wal) = open_analyst(options)?;
    let mining = match (&options.base, data) {
        (Some(base), Some(data)) => {
            let rules = RuleMiner::new(MinerConfig {
                min_support: 3,
                arities: (1..=base.arity).collect(),
            })
            .mine(&data);
            println!(
                "mined {} positive / {} negative rules (arity <= {}) for `mine`",
                rules.positive.len(),
                rules.negative.len(),
                base.arity
            );
            Some(MiningState { rules, schema: data.schema().clone(), mined: (0, 0) })
        }
        _ => None,
    };
    println!(
        "session open: {} buckets, {} components, epoch {}, warm-start {}, journal {}\n",
        analyst.table().num_buckets(),
        analyst.num_components(),
        analyst.epoch(),
        if options.warm_start { "on" } else { "off" },
        if wal.is_some() { "on" } else { "off" },
    );
    let mut session = Session::new(analyst, mining, wal);
    let mut out = std::io::stdout();
    match &options.script {
        Some(path) => {
            let file = std::fs::File::open(path)?;
            session.drive(std::io::BufReader::new(file), &mut out)?;
        }
        None => {
            let stdin = std::io::stdin();
            session.drive(stdin.lock(), &mut out)?;
        }
    }
    Ok(())
}

/// An opened session: the analyst, the base dataset (when one is needed
/// for mining), and the WAL handle (when the session journals epochs).
type OpenedArtifact = (Analyst, Option<Dataset>, Option<EpochWal>);

/// Resolves the session's artifact: compiled from a data source, loaded
/// from a read-only snapshot, or recovered from (or initialised into) a
/// durable snapshot + WAL directory.
fn open_analyst(options: &SessionOptions) -> Result<OpenedArtifact, Box<dyn Error>> {
    let config_for = |base: &Options| {
        EngineConfig::builder()
            .residual_limit(f64::INFINITY)
            .threads(base.threads)
            .batch_min_cost(base.batch_cost)
            .warm_start(options.warm_start)
            .build()
    };
    if let Some(path) = &options.artifact {
        let artifact = CompiledTable::load(path)?;
        println!("loaded snapshot {path}: {}", artifact.stats());
        let data = options.base.as_ref().map(quantify::load_source).transpose()?;
        return Ok((Analyst::open(Arc::new(artifact)), data, None));
    }
    if let Some(dir) = &options.persist {
        let dir_path = std::path::Path::new(dir);
        if dir_path.join(SNAPSHOT_FILE).exists() {
            let recovered = recover(dir_path)?;
            println!(
                "recovered {dir}: epoch {} ({} WAL record(s) replayed, {} skipped, \
                 {} torn byte(s) truncated)",
                recovered.artifact.epoch(),
                recovered.replayed,
                recovered.skipped,
                recovered.truncated_bytes,
            );
            let wal = EpochWal::open_append(dir_path)?;
            let data = options.base.as_ref().map(quantify::load_source).transpose()?;
            return Ok((Analyst::open(Arc::new(recovered.artifact)), data, Some(wal)));
        }
        let base = options.base.as_ref().ok_or_else(|| {
            format!(
                "{dir} holds no snapshot yet; provide --input/--synthetic to \
                 initialise it"
            )
        })?;
        std::fs::create_dir_all(dir_path)?;
        let (data, artifact) = compile::build_artifact(base, config_for(base))?;
        let bytes = artifact.save(dir_path.join(SNAPSHOT_FILE))?;
        let wal = EpochWal::create(dir_path, artifact.epoch())?;
        println!("initialised {dir}: {bytes}-byte snapshot + empty WAL");
        return Ok((Analyst::open(artifact), Some(data), Some(wal)));
    }
    let base = options.base.as_ref().expect("parser requires a source when nothing persists");
    // Compile once (the same artifact build `pmx compile` runs); the
    // session — and every `reset` — opens from it in O(1).
    let (data, artifact) = compile::build_artifact(base, config_for(base))?;
    Ok((Analyst::open(artifact), Some(data), None))
}

/// The mined-rule tape backing the `mine` command — present only when the
/// session has a data source to mine from.
pub(crate) struct MiningState {
    pub(crate) rules: MinedRules,
    pub(crate) schema: pm_microdata::schema::Schema,
    /// How many (positive, negative) mined rules have been fed already.
    mined: (usize, usize),
}

/// Session state: the resident analyst plus the mined-rule cursor for the
/// `mine` command and the optional epoch journal.
pub(crate) struct Session {
    pub(crate) analyst: Analyst,
    pub(crate) mining: Option<MiningState>,
    /// Durable epoch journal (`--persist`): every successful `rebase`
    /// appends its delta here. An append failure demotes the session to
    /// in-memory with a warning rather than killing it.
    pub(crate) wal: Option<EpochWal>,
    /// Record-level table delta staged by `insert`/`retract`/`move`,
    /// applied as one epoch advance by `rebase`.
    pending_delta: TableDelta,
}

impl Session {
    pub(crate) fn new(
        analyst: Analyst,
        mining: Option<MiningState>,
        wal: Option<EpochWal>,
    ) -> Self {
        Self { analyst, mining, wal, pending_delta: TableDelta::new() }
    }

    /// Reads commands from `input` until EOF or `quit`, writing feedback to
    /// `out`. Command errors are reported and the session continues; only
    /// I/O errors abort.
    pub(crate) fn drive<R: BufRead, W: Write>(
        &mut self,
        input: R,
        out: &mut W,
    ) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            let line = line.trim();
            // Whole-line comments only: handles are spelled `#N`, so an
            // inline `#` must not truncate `remove #3`.
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if matches!(line, "quit" | "exit") {
                writeln!(out, "bye")?;
                break;
            }
            match self.execute(line) {
                Ok(msg) => writeln!(out, "{msg}")?,
                Err(e) => writeln!(out, "error: {e}")?,
            }
        }
        Ok(())
    }

    /// Executes one command line, returning the feedback text.
    pub(crate) fn execute(&mut self, line: &str) -> Result<String, Box<dyn Error>> {
        let mut words = line.split_whitespace();
        let cmd = words.next().expect("caller skips empty lines");
        let rest: Vec<&str> = words.collect();
        match cmd {
            "add" => self.cmd_add(&rest),
            "mine" => self.cmd_mine(&rest),
            "remove" => self.cmd_remove(&rest),
            "refresh" => self.cmd_refresh(),
            "query" => self.cmd_query(&rest),
            "list" => self.cmd_list(),
            "report" => Ok(self.analyst.report().to_string()),
            "insert" => self.cmd_stage_delta("insert", &rest),
            "retract" => self.cmd_stage_delta("retract", &rest),
            "move" => self.cmd_stage_delta("move", &rest),
            "rebase" => self.cmd_rebase(),
            "discard" => {
                let n = self.pending_delta.len();
                self.pending_delta = TableDelta::new();
                Ok(format!("discarded {n} staged table-delta op(s)"))
            }
            "reset" => self.cmd_reset(),
            other => Err(format!(
                "unknown command `{other}` (try: add, mine, remove, refresh, query, list, \
                 report, insert, retract, move, rebase, discard, reset, quit)"
            )
            .into()),
        }
    }

    /// `add <pos=val,...> <sa> <prob>`
    fn cmd_add(&mut self, args: &[&str]) -> Result<String, Box<dyn Error>> {
        let [antecedent, sa, prob] = args else {
            return Err("usage: add <pos=val,...> <sa> <prob>".into());
        };
        let antecedent = parse_antecedent(antecedent)?;
        let sa: Value = sa.parse().map_err(|_| format!("bad SA value `{sa}`"))?;
        let probability: f64 = prob.parse().map_err(|_| format!("bad probability `{prob}`"))?;
        let handle = self
            .analyst
            .add_knowledge(Knowledge::Conditional { antecedent, sa, probability })?;
        Ok(format!(
            "added {handle}: footprint {} bucket(s); {} pending — `refresh` to apply",
            self.analyst.footprint(handle)?.len(),
            self.analyst.pending_buckets(),
        ))
    }

    /// `mine <k+> <k->` — feed the next strongest mined rules as deltas.
    fn cmd_mine(&mut self, args: &[&str]) -> Result<String, Box<dyn Error>> {
        let [kp, kn] = args else {
            return Err("usage: mine <k+> <k->".into());
        };
        let kp: usize = kp.parse().map_err(|_| format!("bad count `{kp}`"))?;
        let kn: usize = kn.parse().map_err(|_| format!("bad count `{kn}`"))?;
        let Some(mining) = &mut self.mining else {
            return Err(
                "no data source to mine: this session serves a persisted artifact; \
                 reopen with --input/--synthetic to enable `mine` (`add` still works)"
                    .into(),
            );
        };
        let pos_end = (mining.mined.0 + kp).min(mining.rules.positive.len());
        let neg_end = (mining.mined.1 + kn).min(mining.rules.negative.len());
        let batch: Vec<_> = mining.rules.positive[mining.mined.0..pos_end]
            .iter()
            .chain(&mining.rules.negative[mining.mined.1..neg_end])
            .collect();
        if batch.is_empty() {
            return Ok("no unmined rules left".into());
        }
        let handles = self.analyst.add_rules(batch.iter().copied(), &mining.schema)?;
        mining.mined = (pos_end, neg_end);
        Ok(format!(
            "added {} mined rule(s) (now {}+ / {}−); {} pending — `refresh` to apply",
            handles.len(),
            pos_end,
            neg_end,
            self.analyst.pending_buckets(),
        ))
    }

    /// `remove <handle>` (with or without the printed `#`)
    fn cmd_remove(&mut self, args: &[&str]) -> Result<String, Box<dyn Error>> {
        let [id] = args else {
            return Err("usage: remove <handle>".into());
        };
        let id: u64 = id
            .trim_start_matches('#')
            .parse()
            .map_err(|_| format!("bad handle `{id}`"))?;
        let handle = KnowledgeHandle::from_id(id);
        let removed = self.analyst.remove_knowledge(handle)?;
        Ok(format!(
            "removed {handle} ({removed:?}); {} pending — `refresh` to apply",
            self.analyst.pending_buckets(),
        ))
    }

    fn cmd_refresh(&mut self) -> Result<String, Box<dyn Error>> {
        let stats = self.analyst.refresh()?;
        Ok(format!(
            "refreshed in {:.3} ms: {} component(s), {} re-solved ({} warm), \
             {} closed-form, {} reused",
            stats.wall.as_secs_f64() * 1e3,
            stats.components,
            stats.resolved,
            stats.warm_started,
            stats.closed_form,
            stats.reused,
        ))
    }

    /// `query <q> [<sa>]`
    fn cmd_query(&mut self, args: &[&str]) -> Result<String, Box<dyn Error>> {
        let (q, sa) = match args {
            [q] => (q, None),
            [q, sa] => (q, Some(sa)),
            _ => return Err("usage: query <q> [<sa>]".into()),
        };
        let q: usize = q.parse().map_err(|_| format!("bad QI symbol `{q}`"))?;
        if q >= self.analyst.table().interner().distinct() {
            return Err(format!(
                "QI symbol {q} out of range (table has {})",
                self.analyst.table().interner().distinct()
            )
            .into());
        }
        let stale = if self.analyst.is_stale() { " [stale: deltas pending]" } else { "" };
        match sa {
            Some(sa) => {
                let sa: Value = sa.parse().map_err(|_| format!("bad SA value `{sa}`"))?;
                if (sa as usize) >= self.analyst.table().sa_cardinality() {
                    return Err(format!(
                        "SA value {sa} out of range (table has {})",
                        self.analyst.table().sa_cardinality()
                    )
                    .into());
                }
                Ok(format!("P(sa={sa} | q={q}) = {:.6}{stale}", self.analyst.conditional(q, sa)))
            }
            None => {
                let row: Vec<String> = (0..self.analyst.table().sa_cardinality() as Value)
                    .map(|s| format!("{s}={:.4}", self.analyst.conditional(q, s)))
                    .collect();
                Ok(format!("P(· | q={q}): {}{stale}", row.join("  ")))
            }
        }
    }

    /// `insert <val,...> <sa> <bucket>` / `retract <val,...> <sa> <bucket>`
    /// / `move <val,...> <sa> <from> <to>` — stage one record-level table
    /// delta; `rebase` applies the staged batch as one epoch advance.
    fn cmd_stage_delta(&mut self, kind: &str, args: &[&str]) -> Result<String, Box<dyn Error>> {
        use privacy_maxent::delta::DeltaOp;
        let parse_tuple = |s: &str| -> Result<Vec<Value>, Box<dyn Error>> {
            s.split(',')
                .map(|v| v.parse::<Value>().map_err(|_| format!("bad QI value `{v}`").into()))
                .collect()
        };
        let parse_sa = |s: &str| -> Result<Value, Box<dyn Error>> {
            s.parse::<Value>().map_err(|_| format!("bad SA value `{s}`").into())
        };
        let parse_num = |s: &str, what: &str| -> Result<usize, Box<dyn Error>> {
            s.parse::<usize>().map_err(|_| format!("bad {what} `{s}`").into())
        };
        // Parse fully before touching the staged delta, so a bad argument
        // never drops previously staged ops.
        let op = match (kind, args) {
            ("insert", [qi, sa, bucket]) => DeltaOp::Insert {
                qi: parse_tuple(qi)?,
                sa: parse_sa(sa)?,
                bucket: parse_num(bucket, "bucket")?,
            },
            ("retract", [qi, sa, bucket]) => DeltaOp::Retract {
                qi: parse_tuple(qi)?,
                sa: parse_sa(sa)?,
                bucket: parse_num(bucket, "bucket")?,
            },
            ("move", [qi, sa, from, to]) => DeltaOp::Move {
                qi: parse_tuple(qi)?,
                sa: parse_sa(sa)?,
                from: parse_num(from, "bucket")?,
                to: parse_num(to, "bucket")?,
            },
            ("move", _) => return Err("usage: move <val,...> <sa> <from> <to>".into()),
            _ => return Err(format!("usage: {kind} <val,...> <sa> <bucket>").into()),
        };
        self.pending_delta = std::mem::take(&mut self.pending_delta).push(op);
        Ok(format!(
            "staged {kind}: {} table-delta op(s) pending over {} bucket(s) — `rebase` to apply",
            self.pending_delta.len(),
            self.pending_delta.touched_buckets().len(),
        ))
    }

    /// `rebase` — apply the staged table delta: advance the shared artifact
    /// one epoch (recompiling only the touched buckets) and carry the
    /// session's knowledge, overlay and handles across.
    fn cmd_rebase(&mut self) -> Result<String, Box<dyn Error>> {
        let delta = std::mem::take(&mut self.pending_delta);
        let next = match self.analyst.artifact().apply(&delta) {
            Ok(next) => Arc::new(next),
            Err(e) => {
                self.pending_delta = delta; // staged ops survive a bad apply
                return Err(e.into());
            }
        };
        match self.analyst.rebase(&next) {
            Ok(stats) => {
                // Journal the committed epoch. A full disk or yanked volume
                // should degrade the session, not kill it: warn and demote
                // to in-memory.
                let mut journal = "";
                if let Some(wal) = &mut self.wal {
                    let applied =
                        next.applied_delta().expect("apply always records a delta");
                    match wal.append(next.epoch(), &delta, applied) {
                        Ok(()) => journal = ", journaled",
                        Err(e) => {
                            eprintln!(
                                "warning: WAL append failed ({e}); continuing without \
                                 persistence — epochs from here are not durable"
                            );
                            self.wal = None;
                        }
                    }
                }
                Ok(format!(
                    "rebased to epoch {}: {} op(s) applied, {} bucket(s) recompiled, \
                     {} rule(s) recompiled ({} changed), {} overlay bucket(s) \
                     carried{journal} — `refresh` to re-solve",
                    stats.epoch,
                    delta.len(),
                    next.stats().recompiled_buckets,
                    stats.recompiled,
                    stats.changed,
                    stats.carried,
                ))
            }
            Err(e) => {
                self.pending_delta = delta; // e.g. a rule became unmatchable
                Err(e.into())
            }
        }
    }

    /// `reset` — drop the whole adversary model and reopen from the shared
    /// artifact: no recompile, instantly back at the Theorem 5 baseline.
    fn cmd_reset(&mut self) -> Result<String, Box<dyn Error>> {
        let dropped = self.analyst.knowledge_len();
        self.analyst = Analyst::open(Arc::clone(self.analyst.artifact()));
        if let Some(mining) = &mut self.mining {
            mining.mined = (0, 0);
        }
        self.pending_delta = TableDelta::new();
        Ok(format!(
            "session reset from the shared artifact: dropped {dropped} knowledge item(s), \
             serving the knowledge-free baseline"
        ))
    }

    fn cmd_list(&mut self) -> Result<String, Box<dyn Error>> {
        if self.analyst.knowledge_len() == 0 {
            return Ok("no live knowledge".into());
        }
        let lines: Vec<String> = self
            .analyst
            .knowledge()
            .map(|(h, k)| format!("  {h}: {k:?}"))
            .collect();
        Ok(lines.join("\n"))
    }
}

/// Parses `pos=val,pos=val,...` into an antecedent.
fn parse_antecedent(s: &str) -> Result<Vec<(usize, Value)>, Box<dyn Error>> {
    let mut antecedent = Vec::new();
    for pair in s.split(',') {
        let (pos, val) = pair
            .split_once('=')
            .ok_or_else(|| format!("bad antecedent pair `{pair}` (want pos=val)"))?;
        let pos: usize = pos.parse().map_err(|_| format!("bad QI position `{pos}`"))?;
        let val: Value = val.parse().map_err(|_| format!("bad value `{val}`"))?;
        antecedent.push((pos, val));
    }
    antecedent.sort_unstable_by_key(|&(p, _)| p);
    Ok(antecedent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pm_datagen::medical::{MedicalGenerator, MedicalGeneratorConfig};
    use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};

    fn medical_session() -> Session {
        let data = MedicalGenerator::new(MedicalGeneratorConfig { records: 600, seed: 3 })
            .generate();
        let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 2 })
            .publish(&data)
            .unwrap();
        let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1] })
            .mine(&data);
        let config = EngineConfig::builder().residual_limit(f64::INFINITY).build();
        let analyst = Analyst::new(table, config).unwrap();
        let mining =
            MiningState { rules, schema: data.schema().clone(), mined: (0, 0) };
        Session::new(analyst, Some(mining), None)
    }

    /// A persisted session round-trip: save + WAL-journal epochs, then
    /// recover into a fresh session serving identical estimates.
    #[test]
    fn persisted_session_journals_rebase_and_recovers() {
        use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE};

        let dir = std::env::temp_dir()
            .join(format!("pmx-cli-session-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();

        let mut session = medical_session();
        session.analyst.artifact().save(dir.join(SNAPSHOT_FILE)).unwrap();
        session.wal = Some(EpochWal::create(&dir, session.analyst.epoch()).unwrap());

        let tuple: Vec<String> = session
            .analyst
            .table()
            .interner()
            .tuple(0)
            .iter()
            .map(|v| v.to_string())
            .collect();
        let tuple = tuple.join(",");
        session.execute(&format!("insert {tuple} 0 1")).unwrap();
        let msg = session.execute("rebase").unwrap();
        assert!(msg.contains("journaled"), "{msg}");
        session.execute(&format!("insert {tuple} 0 2")).unwrap();
        session.execute("rebase").unwrap();
        session.execute("refresh").unwrap();

        let recovered = recover(&dir).unwrap();
        assert_eq!(recovered.replayed, 2);
        assert_eq!(recovered.artifact.epoch(), session.analyst.epoch());
        let reopened = Analyst::open(Arc::new(recovered.artifact));
        assert_eq!(
            reopened.estimate().term_values(),
            session.analyst.estimate().term_values(),
            "recovered session serves bit-identical estimates"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Without a data source there is nothing to mine; the session says so
    /// instead of panicking, and `add` still works.
    #[test]
    fn artifact_only_session_disables_mine() {
        let mut session = medical_session();
        session.mining = None;
        let err = session.execute("mine 2 2").unwrap_err().to_string();
        assert!(err.contains("no data source to mine"), "{err}");
        assert!(session.execute("add 0=0 1 0.5").is_ok());
    }

    #[test]
    fn scripted_session_end_to_end() {
        let mut session = medical_session();
        let script = "\
# comment lines and blanks are skipped

mine 5 5
refresh
query 0
report
list
mine 3 0
refresh
quit
unreachable-after-quit
";
        let mut out = Vec::new();
        session.drive(script.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("added 10 mined rule(s)"), "{text}");
        assert!(text.contains("refreshed in"), "{text}");
        assert!(text.contains("P(· | q=0):"), "{text}");
        assert!(text.contains("max disclosure"), "{text}");
        assert!(text.contains("bye"), "{text}");
        assert!(!text.contains("unreachable"), "{text}");
    }

    #[test]
    fn add_remove_round_trip() {
        let mut session = medical_session();
        let baseline = session.analyst.estimate().term_values().to_vec();
        let msg = session.execute("add 0=0 1 0.5").unwrap();
        assert!(msg.contains("added #0"), "{msg}");
        session.execute("refresh").unwrap();
        assert_ne!(session.analyst.estimate().term_values(), baseline.as_slice());
        let msg = session.execute("remove #0").unwrap();
        assert!(msg.contains("removed #0"), "{msg}");
        session.execute("refresh").unwrap();
        assert_eq!(session.analyst.estimate().term_values(), baseline.as_slice());
    }

    #[test]
    fn command_errors_do_not_kill_the_session() {
        let mut session = medical_session();
        for bad in [
            "frobnicate",
            "add",
            "add x=1 0 0.5",
            "add 0=0 0 nope",
            "remove #999",
            "query 999999",
            "query 0 999",
        ] {
            assert!(session.execute(bad).is_err(), "`{bad}` should error");
        }
        // Still alive and serving.
        assert!(session.execute("report").is_ok());
        let mut out = Vec::new();
        session.drive("remove #7\nreport\n".as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.contains("error: knowledge handle"),
            "inline # must reach the command, not start a comment: {text}"
        );
        assert!(text.contains("max disclosure"), "{text}");
    }

    /// `reset` reopens from the shared artifact: the adversary model is
    /// gone, the baseline bits are back, and no recompile happened (the
    /// artifact pointer is unchanged).
    #[test]
    fn reset_reopens_from_the_artifact() {
        let mut session = medical_session();
        let baseline = session.analyst.estimate().term_values().to_vec();
        let artifact_before = Arc::as_ptr(session.analyst.artifact());
        session.execute("mine 5 5").unwrap();
        session.execute("refresh").unwrap();
        assert_ne!(session.analyst.estimate().term_values(), baseline.as_slice());
        let msg = session.execute("reset").unwrap();
        assert!(msg.contains("dropped 10 knowledge item(s)"), "{msg}");
        assert_eq!(session.analyst.estimate().term_values(), baseline.as_slice());
        assert_eq!(session.analyst.knowledge_len(), 0);
        assert_eq!(Arc::as_ptr(session.analyst.artifact()), artifact_before);
        // The mined-rule cursor rewinds too: `mine` starts over.
        let msg = session.execute("mine 2 0").unwrap();
        assert!(msg.contains("now 2+ / 0−"), "{msg}");
    }

    /// Table deltas drive the session across epochs: insert/retract stage
    /// ops, `rebase` advances the artifact (new epoch, knowledge carried),
    /// and `refresh` re-solves only the footprint.
    #[test]
    fn live_table_insert_rebase_refresh() {
        let mut session = medical_session();
        session.execute("mine 4 4").unwrap();
        session.execute("refresh").unwrap();
        let knowledge_before = session.analyst.knowledge_len();
        let epoch_before = session.analyst.epoch();
        let tuple: Vec<String> = session
            .analyst
            .table()
            .interner()
            .tuple(0)
            .iter()
            .map(|v| v.to_string())
            .collect();
        let tuple = tuple.join(",");

        let msg = session.execute(&format!("insert {tuple} 0 1")).unwrap();
        assert!(msg.contains("staged insert: 1 table-delta op(s)"), "{msg}");
        let msg = session.execute(&format!("insert {tuple} 0 2")).unwrap();
        assert!(msg.contains("2 table-delta op(s)"), "{msg}");
        let msg = session.execute("rebase").unwrap();
        assert!(msg.contains(&format!("rebased to epoch {}", epoch_before + 1)), "{msg}");
        assert!(msg.contains("2 bucket(s) recompiled"), "{msg}");
        assert_eq!(session.analyst.knowledge_len(), knowledge_before, "knowledge carried");
        session.execute("refresh").unwrap();
        assert_eq!(session.analyst.estimate().epoch(), epoch_before + 1);

        // Retract one of them again; staged ops survive a failed apply.
        let msg = session.execute(&format!("retract {tuple} 0 1")).unwrap();
        assert!(msg.contains("staged retract"), "{msg}");
        session.execute("rebase").unwrap();
        session.execute("refresh").unwrap();
        assert_eq!(session.analyst.epoch(), epoch_before + 2);
    }

    #[test]
    fn bad_table_deltas_do_not_kill_the_session() {
        let mut session = medical_session();
        session.execute("insert 0,0,0,0 0 1").unwrap();
        for bad in [
            "insert",
            "insert 0,0 0",
            "insert x,0 0 1",
            "insert 0,0 0 notabucket",
            "move 0,0 0 1",
        ] {
            assert!(session.execute(bad).is_err(), "`{bad}` should error");
        }
        // Parse errors must not drop previously staged ops.
        assert_eq!(session.pending_delta.len(), 1, "staged op survived bad arguments");
        session.execute("discard").unwrap();
        // A delta invalid against the table fails at `rebase` and stays
        // staged; `discard` drops it.
        session.execute("insert 0,0 0 999999").unwrap();
        assert!(session.execute("rebase").is_err());
        assert_eq!(session.analyst.epoch(), 0, "failed rebase leaves the epoch alone");
        let msg = session.execute("discard").unwrap();
        assert!(msg.contains("discarded 1 staged"), "{msg}");
        // An empty rebase is a no-op epoch advance.
        assert!(session.execute("rebase").is_ok());
        assert_eq!(session.analyst.epoch(), 1);
        // Still alive and serving.
        assert!(session.execute("report").is_ok());
    }

    #[test]
    fn query_flags_staleness() {
        let mut session = medical_session();
        session.execute("add 0=0 1 0.5").unwrap();
        let msg = session.execute("query 0").unwrap();
        assert!(msg.contains("[stale: deltas pending]"), "{msg}");
        session.execute("refresh").unwrap();
        let msg = session.execute("query 0").unwrap();
        assert!(!msg.contains("stale"), "{msg}");
    }

    #[test]
    fn antecedent_parser() {
        assert_eq!(parse_antecedent("2=1,0=3").unwrap(), vec![(0, 3), (2, 1)]);
        assert!(parse_antecedent("2").is_err());
        assert!(parse_antecedent("a=1").is_err());
    }
}
