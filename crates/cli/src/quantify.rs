//! The `pmx quantify` pipeline and the `pmx demo` walkthrough.

use std::error::Error;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::ldiv;
use pm_anonymize::mondrian::{Mondrian, MondrianConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_datagen::medical::{MedicalGenerator, MedicalGeneratorConfig};
use pm_microdata::dataset::Dataset;
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::report::PrivacyReport;

use crate::args::{Mechanism, Options, Source};
use crate::infer;

/// Loads or generates the microdata named by `options.source`, narrating
/// to stdout. Shared by `pmx quantify` and `pmx session`.
pub(crate) fn load_source(options: &Options) -> Result<Dataset, Box<dyn Error>> {
    Ok(match &options.source {
        Source::File(path) => {
            let text = std::fs::read_to_string(path)?;
            let (_, data) = infer::infer_and_load(&text)?;
            println!(
                "loaded {} records, {} QI attributes (+1 SA) from {path}",
                data.len(),
                data.schema().qi_attrs().len()
            );
            data
        }
        Source::Synthetic { kind, records } => {
            let data = match kind.as_str() {
                "adult" => AdultGenerator::new(AdultGeneratorConfig {
                    records: *records,
                    seed: options.seed,
                })
                .generate(),
                _ => MedicalGenerator::new(MedicalGeneratorConfig {
                    records: *records,
                    seed: options.seed,
                })
                .generate(),
            };
            println!("generated {} synthetic {kind} records (seed {})", records, options.seed);
            data
        }
    })
}

/// Publishes `data` with the configured mechanism, narrating to stdout.
/// Shared by `pmx quantify` and `pmx session`.
pub(crate) fn publish(data: &Dataset, options: &Options) -> Result<PublishedTable, Box<dyn Error>> {
    Ok(match options.mechanism {
        Mechanism::Anatomy => {
            let t = AnatomyBucketizer::new(AnatomyConfig {
                ell: options.ell,
                exempt_top: options.exempt,
            })
            .publish(data)?;
            let exempt = ldiv::most_frequent_sa(&t, options.exempt);
            println!(
                "anatomy: {} buckets of ~{} records; relaxed {}-diversity: {}",
                t.num_buckets(),
                options.ell,
                options.ell,
                ldiv::satisfies_relaxed_diversity(&t, options.ell, &exempt)
            );
            t
        }
        Mechanism::Mondrian { k } => {
            let t = Mondrian::new(MondrianConfig { k }).publish(data)?;
            println!(
                "mondrian: {} equivalence classes (k = {k}); distinct diversity {}",
                t.num_buckets(),
                ldiv::distinct_diversity(&t)
            );
            t
        }
    })
}

/// Runs `pmx quantify`.
pub fn run(options: &Options) -> Result<(), Box<dyn Error>> {
    let data: Dataset = load_source(options)?;
    let table: PublishedTable = publish(&data, options)?;

    let arities: Vec<usize> = (1..=options.arity).collect();
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities }).mine(&data);
    println!(
        "mined {} positive / {} negative rules (min support 3, arity <= {})\n",
        rules.positive.len(),
        rules.negative.len(),
        options.arity
    );

    let truth = QiSaDistribution::from_dataset(&data)?;
    let bounds: Vec<(usize, usize)> =
        options.bounds.iter().map(|&k| (k / 2, k - k / 2)).collect();
    let report = PrivacyReport::sweep(
        &table,
        data.schema(),
        &rules,
        &bounds,
        Some(&truth),
        &EngineConfig::builder()
            .residual_limit(f64::INFINITY)
            .threads(options.threads)
            .batch_min_cost(options.batch_cost)
            .build(),
    )?;
    println!("privacy report — one row per assumed Top-(K+, K-) knowledge bound:");
    print!("{report}");
    if let Some(i) = report.disclosure_budget(0.9) {
        let r = &report.rows[i];
        println!(
            "\nwarning: at bound (K+={}, K-={}) some individual is linked with \
             confidence {:.2}",
            r.k_positive, r.k_negative, r.max_disclosure
        );
    }
    Ok(())
}

/// Runs `pmx demo`: the paper's Figure 1 walkthrough.
pub fn demo() {
    use pm_anonymize::fixtures::paper_example;
    use privacy_maxent::engine::Engine;
    use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};
    use privacy_maxent::metrics;

    let (_, table) = paper_example();
    println!("Privacy-MaxEnt demo — the SIGMOD 2008 paper's Figure 1 example\n");
    let baseline = Engine::uniform_estimate(&table);
    println!(
        "no background knowledge:   max disclosure {:.3}",
        metrics::max_disclosure(&baseline)
    );
    let mut kb = KnowledgeBase::new();
    kb.push(Knowledge::Conditional { antecedent: vec![(0, 0)], sa: 2, probability: 0.0 })
        .expect("valid");
    let est = Engine::default().estimate(&table, &kb).expect("feasible");
    println!(
        "+ P(breast cancer|male)=0: max disclosure {:.3}",
        metrics::max_disclosure(&est)
    );
    if let Some((q, s, p)) = metrics::most_exposed(&est) {
        println!("most exposed: q{} -> disease #{} with confidence {:.3}", q + 1, s + 1, p);
    }
    println!("\ntry: pmx quantify --synthetic medical:4000 --bounds 0,10,100,1000");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    #[test]
    fn quantify_runs_on_synthetic_medical() {
        let argv: Vec<String> = "--synthetic medical:600 --bounds 0,10 --arity 1 --exempt 2"
            .split_whitespace()
            .map(String::from)
            .collect();
        let options = parse(&argv).unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn quantify_runs_with_mondrian() {
        let argv: Vec<String> = "--synthetic adult:800 --mondrian 12 --bounds 0,20 --arity 1"
            .split_whitespace()
            .map(String::from)
            .collect();
        let options = parse(&argv).unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn quantify_runs_on_csv_file() {
        let dir = std::env::temp_dir().join("pmx-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tiny.csv");
        let mut text = String::from("sex,age,disease\n");
        for i in 0..60 {
            let sex = if i % 2 == 0 { "m" } else { "f" };
            let age = ["young", "mid", "old"][i % 3];
            let disease = ["flu", "hiv", "cold", "asthma"][i % 4];
            text.push_str(&format!("{sex},{age},{disease}\n"));
        }
        std::fs::write(&path, text).unwrap();
        let argv: Vec<String> = format!(
            "--input {} --ell 4 --exempt 4 --bounds 0,5 --arity 1",
            path.display()
        )
        .split_whitespace()
        .map(String::from)
        .collect();
        let options = parse(&argv).unwrap();
        run(&options).unwrap();
    }

    #[test]
    fn demo_does_not_panic() {
        demo();
    }
}
