//! `pmx` — privacy quantification from the command line.
//!
//! ```text
//! pmx demo
//!     Walk through the paper's Figure 1 example.
//!
//! pmx quantify [options]
//!     Quantify a publication under Top-(K+, K−) knowledge bounds and
//!     print the privacy report (Section 4.3's "(bound, score)" tuples).
//!
//! pmx compile [options]
//!     Prebuild the shared CompiledTable artifact for a publication and
//!     print its stats (buckets, components, invariant rank, build time).
//!     `pmx session` runs the identical build, so anything a session can
//!     serve, this command has fully precompiled. `--out FILE` saves the
//!     artifact as a versioned snapshot that `pmx session --artifact` /
//!     `--persist` reopens without recompiling. `--bounds`, `--script`
//!     and `--warm-start` are rejected.
//!
//! pmx compact DIR
//!     Fold a persistence directory's WAL into a fresh snapshot: recover
//!     to the current epoch, atomically replace snapshot.pmx, reset
//!     wal.pmx. Safe to run while no session owns the directory.
//!
//! pmx session [options]
//!     Open a resident Analyst session over the publication and evolve the
//!     adversary model with delta commands (add / mine / remove / refresh /
//!     query / report / reset), interactively from stdin or via --script
//!     FILE. The publication compiles once into the shared artifact; each
//!     refresh re-solves only the components the deltas touched, and
//!     `reset` reopens from the artifact in O(1).
//!     Extra options: --script FILE, --warm-start, --artifact FILE (open
//!     over a saved snapshot; no recompile, no data source needed),
//!     --persist DIR (durable snapshot + WAL: recover on start, journal
//!     every rebase). `--bounds` is rejected.
//!
//! pmx serve [options]
//!     Serve the compiled artifact over TCP as a multi-tenant session
//!     server (length-prefixed binary protocol; one resident Analyst per
//!     tenant id). Resolves its artifact like `pmx session`: a data
//!     source compiles it, `--artifact FILE` loads a read-only snapshot,
//!     `--persist DIR` recovers a durable snapshot + WAL directory and
//!     journals every table-delta epoch before publishing it.
//!     Serves on a poll(2) readiness loop by default: one event-loop
//!     thread plus --workers N [default: 4] dispatch workers, a fixed
//!     thread count no matter how many connections are live. --threaded
//!     selects the original two-threads-per-connection backend instead.
//!     Extra options: --addr HOST:PORT [default: 127.0.0.1:7171],
//!     --max-tenants N, --max-connections N, --max-frame-bytes N,
//!     --max-batch N, --write-queue N, --write-buffer BYTES (admission
//!     control: each cap sheds load with a typed protocol error instead
//!     of stalling).
//!
//! pmx loadgen --addr HOST:PORT [options]
//!     Drive a running `pmx serve` with the deterministic closed-loop
//!     tape workload: batched queries, knowledge add/remove steps,
//!     refreshes and sampled single queries, one connection per tenant.
//!     Pass the server's data-source flags to mine a knowledge pool
//!     (--rules N [default: 40]); omit them for a query-only load.
//!     Extra options: --tenants N, --phases N, --batches N, --batch N,
//!     --samples N, --seed N. With --idle N the loadgen switches to the
//!     open-loop cohort mode instead: hold N mostly-idle handshaken
//!     connections (hashed into --tenants tenant ids) and measure
//!     accept/ping latency flatness over --rounds N [default: 3] ping
//!     sweeps.
//!
//! pmx audit [options]
//!     Run the project's static-analysis pass (pm-audit) over the
//!     workspace: lock-order, determinism, panic-policy, error-code-range
//!     and shim-hygiene rules with `file:line` diagnostics. Exits nonzero
//!     on unsuppressed findings. Options: --root DIR [default: .],
//!     --json (machine-readable lines), --deny-warnings (CI mode),
//!     --list-rules.
//!
//!     --input FILE        CSV of categorical microdata; last column is the
//!                         sensitive attribute, all others quasi-identifiers
//!                         (domains inferred). Alternatively:
//!     --synthetic KIND:N  generate N records of `adult` or `medical` data
//!     --ell N             bucket size / diversity level     [default: 5]
//!     --exempt N          SA values exempt from diversity   [default: 1]
//!     --mondrian K        use Mondrian generalization (k=K) instead of
//!                         Anatomy bucketization
//!     --bounds LIST       comma-separated K values to sweep [default: 0,10,100,1000]
//!     --arity N           max antecedent arity to mine      [default: 2]
//!     --seed N            generator seed                    [default: 1]
//!     --threads N         engine worker threads; 0 = all cores [default: 0]
//!     --batch-cost N      fuse dirty components into one worker task until
//!                         their summed cost (terms + rows) reaches N;
//!                         0 = one task per component. Bit-identical output
//!                         for every value               [default: 1024]
//! ```

use std::process::ExitCode;

mod args;
mod audit;
mod compile;
mod infer;
mod quantify;
mod serve;
mod session;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("demo") => {
            quantify::demo();
            ExitCode::SUCCESS
        }
        Some("quantify") => match args::parse(&argv[1..]) {
            Ok(options) => match quantify::run(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pmx: {e}");
                ExitCode::FAILURE
            }
        },
        Some("compile") => match args::parse_compile(&argv[1..]) {
            Ok(options) => match compile::run(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pmx: {e}");
                ExitCode::FAILURE
            }
        },
        Some("compact") => match argv.get(1..) {
            Some([dir]) => match privacy_maxent::persist::compact(dir) {
                Ok(stats) => {
                    println!(
                        "compacted {dir}: {} WAL record(s) folded into a {}-byte \
                         snapshot at epoch {}",
                        stats.folded, stats.snapshot_bytes, stats.epoch
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            _ => {
                eprintln!("usage: pmx compact DIR");
                ExitCode::FAILURE
            }
        },
        Some("session") => match args::parse_session(&argv[1..]) {
            Ok(options) => match session::run(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pmx: {e}");
                ExitCode::FAILURE
            }
        },
        Some("serve") => match args::parse_serve(&argv[1..]) {
            Ok(options) => match serve::run(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pmx: {e}");
                ExitCode::FAILURE
            }
        },
        Some("loadgen") => match args::parse_loadgen(&argv[1..]) {
            Ok(options) => match serve::run_loadgen(&options) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pmx: {e}");
                ExitCode::FAILURE
            }
        },
        Some("audit") => match args::parse_audit(&argv[1..]) {
            Ok(options) => match audit::run(&options) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("pmx: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(e) => {
                eprintln!("pmx: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!(
                "usage: pmx <demo|quantify|compile|compact|session|serve|loadgen|audit> \
                 [options]   (see --help in source header)"
            );
            ExitCode::FAILURE
        }
    }
}
