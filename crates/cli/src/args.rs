//! Hand-rolled argument parsing for `pmx quantify`.

use std::fmt;

use privacy_maxent::engine::EngineConfig;

/// Where the microdata comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// Load a CSV file (last column = SA).
    File(String),
    /// Generate synthetic data: `adult` or `medical`, with a record count.
    Synthetic {
        /// `adult` or `medical`.
        kind: String,
        /// Number of records.
        records: usize,
    },
}

/// How the publication is disguised.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mechanism {
    /// Anatomy bucketization with ℓ-diversity.
    Anatomy,
    /// Mondrian generalization with k-anonymity.
    Mondrian {
        /// Class-size floor.
        k: usize,
    },
}

/// Parsed options for `pmx quantify`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Options {
    /// Data source.
    pub source: Source,
    /// Bucket size / diversity ℓ.
    pub ell: usize,
    /// Exempted most-frequent SA values.
    pub exempt: usize,
    /// Disguising mechanism.
    pub mechanism: Mechanism,
    /// Knowledge bounds (total K; split half positive, half negative).
    pub bounds: Vec<usize>,
    /// Max antecedent arity to mine.
    pub arity: usize,
    /// Generator seed.
    pub seed: u64,
    /// Engine worker threads (0 = all available cores).
    pub threads: usize,
    /// Batching cost floor: dirty components are fused into one worker
    /// task until their summed cost (terms + rows) reaches this
    /// (0 = one task per component; estimates are bit-identical either way).
    pub batch_cost: u64,
}

/// Parsed options for `pmx compile`.
#[derive(Debug, Clone)]
pub struct CompileOptions {
    /// Shared data-source / publication / engine options.
    pub base: Options,
    /// Save the compiled artifact as a versioned snapshot at this path.
    pub out: Option<String>,
}

/// Parsed options for `pmx session`.
#[derive(Debug, Clone)]
pub struct SessionOptions {
    /// Shared data-source / publication / engine options. `None` when the
    /// session serves purely from a persisted artifact (`--artifact` /
    /// `--persist` without a data source) — the engine config then comes
    /// from the snapshot and `mine` is unavailable.
    pub base: Option<Options>,
    /// Script file to execute instead of reading commands from stdin.
    pub script: Option<String>,
    /// Warm-start dirty re-solves from cached duals (faster refreshes,
    /// not bit-replayable).
    pub warm_start: bool,
    /// Open over a read-only snapshot (`CompiledTable::load`) instead of
    /// compiling; epoch advances stay in memory.
    pub artifact: Option<String>,
    /// Durable persistence directory: recover (or initialise) the snapshot
    /// + WAL there and journal every `rebase` epoch.
    pub persist: Option<String>,
}

/// Parsed options for `pmx serve`.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Shared data-source / publication / engine options (`None` when the
    /// server opens a persisted artifact instead of compiling).
    pub base: Option<Options>,
    /// Serve a read-only snapshot (`CompiledTable::load`); table deltas
    /// advance epochs in memory only.
    pub artifact: Option<String>,
    /// Durable persistence directory: recover (or initialise) the snapshot
    /// + WAL and journal every table-delta epoch before publishing it.
    pub persist: Option<String>,
    /// Listen address (`127.0.0.1:0` binds an ephemeral port).
    pub addr: String,
    /// Resident-tenant cap (admission control).
    pub max_tenants: usize,
    /// Concurrent-connection cap (admission control).
    pub max_connections: usize,
    /// Largest accepted frame body, in bytes.
    pub max_frame_bytes: usize,
    /// Most items in one batch/knowledge/delta frame.
    pub max_batch: usize,
    /// Response frames buffered per connection before a slow reader is shed.
    pub write_queue: usize,
    /// Outbound bytes buffered per connection before a slow reader is shed
    /// (reactor backend; the threaded backend bounds frames only).
    pub write_buffer: usize,
    /// Reactor worker threads (total threads = workers + 1 event loop).
    pub workers: usize,
    /// Use the threads-per-connection backend instead of the reactor.
    pub threaded: bool,
}

/// Parsed options for `pmx loadgen`.
#[derive(Debug, Clone)]
pub struct LoadgenArgs {
    /// Server address to drive.
    pub addr: String,
    /// Data-source options used to mine the knowledge pool the tapes draw
    /// from (pass the same flags the server was started with); `None`
    /// drives a query/refresh-only load.
    pub base: Option<Options>,
    /// Knowledge items mined into the pool.
    pub rules: usize,
    /// Tenants (one client thread + connection each).
    pub tenants: usize,
    /// Phases per tenant (each ends with a knowledge step + refresh).
    pub phases: usize,
    /// Batched query frames per phase.
    pub batches: usize,
    /// Queries per batch frame.
    pub batch: usize,
    /// Sampled single queries recorded after each refresh.
    pub samples: usize,
    /// Tape seed.
    pub seed: u64,
    /// Open-loop idle mode: hold this many mostly-idle connections and
    /// measure accept/ping latency flatness (0 = closed-loop tape mode).
    pub idle: usize,
    /// Ping sweeps over the idle cohort (idle mode only).
    pub rounds: usize,
}

/// Parsed options for `pmx audit`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditOptions {
    /// Workspace root to scan.
    pub root: String,
    /// Emit machine-readable JSON lines instead of the human report.
    pub json: bool,
    /// Fail on warnings too (the CI mode).
    pub deny_warnings: bool,
    /// Print the rule catalog and exit.
    pub list_rules: bool,
}

/// Parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses `pmx quantify` arguments.
pub fn parse(argv: &[String]) -> Result<Options, ParseError> {
    let mut source: Option<Source> = None;
    let mut ell = 5usize;
    let mut exempt = 1usize;
    let mut mechanism = Mechanism::Anatomy;
    let mut bounds = vec![0usize, 10, 100, 1000];
    let mut arity = 2usize;
    let mut seed = 1u64;
    let mut threads = 0usize;
    let mut batch_cost = EngineConfig::default().batch_min_cost;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--input" => source = Some(Source::File(value("--input")?)),
            "--synthetic" => {
                let v = value("--synthetic")?;
                let (kind, n) = v
                    .split_once(':')
                    .ok_or_else(|| ParseError("--synthetic expects KIND:N".into()))?;
                if kind != "adult" && kind != "medical" {
                    return Err(ParseError(format!("unknown synthetic kind `{kind}`")));
                }
                let records: usize = n
                    .parse()
                    .map_err(|_| ParseError(format!("bad record count `{n}`")))?;
                source = Some(Source::Synthetic { kind: kind.to_string(), records });
            }
            "--ell" => {
                ell = value("--ell")?
                    .parse()
                    .map_err(|_| ParseError("bad --ell".into()))?;
            }
            "--exempt" => {
                exempt = value("--exempt")?
                    .parse()
                    .map_err(|_| ParseError("bad --exempt".into()))?;
            }
            "--mondrian" => {
                let k = value("--mondrian")?
                    .parse()
                    .map_err(|_| ParseError("bad --mondrian".into()))?;
                mechanism = Mechanism::Mondrian { k };
            }
            "--bounds" => {
                bounds = value("--bounds")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| ParseError("bad --bounds list".into()))?;
            }
            "--arity" => {
                arity = value("--arity")?
                    .parse()
                    .map_err(|_| ParseError("bad --arity".into()))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| ParseError("bad --seed".into()))?;
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| ParseError("bad --threads".into()))?;
            }
            "--batch-cost" => {
                batch_cost = value("--batch-cost")?
                    .parse()
                    .map_err(|_| ParseError("bad --batch-cost".into()))?;
            }
            other => return Err(ParseError(format!("unknown flag `{other}`"))),
        }
    }
    let source = source.ok_or_else(|| {
        ParseError("one of --input FILE or --synthetic KIND:N is required".into())
    })?;
    if ell == 0 || arity == 0 {
        return Err(ParseError("--ell and --arity must be positive".into()));
    }
    Ok(Options { source, ell, exempt, mechanism, bounds, arity, seed, threads, batch_cost })
}

/// Parses `pmx compile` arguments: everything `pmx quantify` accepts minus
/// `--bounds` (knowledge bounds are an adversary-model concern — the
/// artifact is knowledge-independent by construction) and the session-only
/// flags, plus `--out FILE` to save the artifact as a snapshot.
pub fn parse_compile(argv: &[String]) -> Result<CompileOptions, ParseError> {
    let mut out = None;
    let mut base_argv: Vec<String> = Vec::with_capacity(argv.len());
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--out" => {
                out = Some(
                    it.next()
                        .cloned()
                        .ok_or_else(|| ParseError("--out expects a value".into()))?,
                );
            }
            "--bounds" => {
                return Err(ParseError(
                    "--bounds is a quantify option; the compiled artifact is \
                     knowledge-independent"
                        .into(),
                ))
            }
            "--script" | "--warm-start" | "--artifact" | "--persist" => {
                return Err(ParseError(format!(
                    "{flag} is a session option; run `pmx session` to evolve knowledge"
                )))
            }
            other => base_argv.push(other.to_string()),
        }
    }
    Ok(CompileOptions { base: parse(&base_argv)?, out })
}

/// Parses `pmx session` arguments: everything `pmx quantify` accepts
/// (minus `--bounds`, which makes no sense for a session) plus
/// `--script FILE`, `--warm-start`, `--artifact FILE` (open over a saved
/// snapshot) and `--persist DIR` (durable snapshot + WAL). With
/// `--artifact` or `--persist` the data source becomes optional; without
/// one, the other base flags are rejected too — the engine config comes
/// from the persisted snapshot.
pub fn parse_session(argv: &[String]) -> Result<SessionOptions, ParseError> {
    let mut script = None;
    let mut warm_start = false;
    let mut artifact = None;
    let mut persist = None;
    let mut base_argv: Vec<String> = Vec::with_capacity(argv.len());
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        match flag.as_str() {
            "--script" => script = Some(value("--script")?),
            "--warm-start" => warm_start = true,
            "--artifact" => artifact = Some(value("--artifact")?),
            "--persist" => persist = Some(value("--persist")?),
            "--bounds" => {
                return Err(ParseError(
                    "--bounds is a quantify option; sessions grow knowledge via \
                     `add`/`mine` commands"
                        .into(),
                ))
            }
            other => base_argv.push(other.to_string()),
        }
    }
    if artifact.is_some() && persist.is_some() {
        return Err(ParseError(
            "--artifact and --persist are mutually exclusive: the first serves a \
             read-only snapshot, the second owns a durable snapshot + WAL directory"
                .into(),
        ));
    }
    let has_source =
        base_argv.iter().any(|f| f == "--input" || f == "--synthetic");
    let base = if has_source {
        Some(parse(&base_argv)?)
    } else if artifact.is_some() || persist.is_some() {
        if let Some(stray) = base_argv.first() {
            return Err(ParseError(format!(
                "{stray} requires a data source; without --input/--synthetic the \
                 engine config comes from the persisted artifact"
            )));
        }
        if warm_start {
            return Err(ParseError(
                "--warm-start requires a data source; without one the engine \
                 config comes from the persisted artifact"
                    .into(),
            ));
        }
        None
    } else {
        // No source and nothing persisted: surface the standard error.
        Some(parse(&base_argv)?)
    };
    Ok(SessionOptions { base, script, warm_start, artifact, persist })
}

/// Parses `pmx serve` arguments: the session persistence flags
/// (`--artifact` / `--persist` / a data source) plus the listen address and
/// the admission-control limits. Session-only and quantify-only flags are
/// rejected.
pub fn parse_serve(argv: &[String]) -> Result<ServeOptions, ParseError> {
    let defaults = pm_serve::registry::Limits::default();
    let mut artifact = None;
    let mut persist = None;
    let mut addr = "127.0.0.1:7171".to_string();
    let mut max_tenants = defaults.max_tenants;
    let mut max_connections = defaults.max_connections;
    let mut max_frame_bytes = defaults.max_frame_bytes;
    let mut max_batch = defaults.max_batch;
    let mut write_queue = defaults.write_queue_frames;
    let mut write_buffer = defaults.write_buffer_bytes;
    let mut workers = pm_serve::server::DEFAULT_WORKERS;
    let mut threaded = false;
    let mut base_argv: Vec<String> = Vec::with_capacity(argv.len());
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        let parse_num = |name: &str, v: String| {
            v.parse::<usize>().map_err(|_| ParseError(format!("bad {name}")))
        };
        match flag.as_str() {
            "--artifact" => artifact = Some(value("--artifact")?),
            "--persist" => persist = Some(value("--persist")?),
            "--addr" => addr = value("--addr")?,
            "--max-tenants" => max_tenants = parse_num("--max-tenants", value("--max-tenants")?)?,
            "--max-connections" => {
                max_connections = parse_num("--max-connections", value("--max-connections")?)?;
            }
            "--max-frame-bytes" => {
                max_frame_bytes = parse_num("--max-frame-bytes", value("--max-frame-bytes")?)?;
            }
            "--max-batch" => max_batch = parse_num("--max-batch", value("--max-batch")?)?,
            "--write-queue" => write_queue = parse_num("--write-queue", value("--write-queue")?)?,
            "--write-buffer" => {
                write_buffer = parse_num("--write-buffer", value("--write-buffer")?)?;
            }
            "--workers" => workers = parse_num("--workers", value("--workers")?)?,
            "--threaded" => threaded = true,
            "--bounds" => {
                return Err(ParseError(
                    "--bounds is a quantify option; serve tenants grow knowledge \
                     over the wire"
                        .into(),
                ))
            }
            "--script" | "--warm-start" => {
                return Err(ParseError(format!("{flag} is a session option")))
            }
            other => base_argv.push(other.to_string()),
        }
    }
    if artifact.is_some() && persist.is_some() {
        return Err(ParseError(
            "--artifact and --persist are mutually exclusive: the first serves a \
             read-only snapshot, the second owns a durable snapshot + WAL directory"
                .into(),
        ));
    }
    if max_tenants == 0 || max_connections == 0 || max_batch == 0 || write_queue == 0 {
        return Err(ParseError("serve limits must be positive".into()));
    }
    if workers == 0 {
        return Err(ParseError("--workers must be positive".into()));
    }
    if threaded && workers != pm_serve::server::DEFAULT_WORKERS {
        return Err(ParseError(
            "--workers tunes the reactor backend; it has no meaning with --threaded".into(),
        ));
    }
    let has_source = base_argv.iter().any(|f| f == "--input" || f == "--synthetic");
    let base = if has_source {
        Some(parse(&base_argv)?)
    } else if artifact.is_some() || persist.is_some() {
        if let Some(stray) = base_argv.first() {
            return Err(ParseError(format!(
                "{stray} requires a data source; without --input/--synthetic the \
                 engine config comes from the persisted artifact"
            )));
        }
        None
    } else {
        Some(parse(&base_argv)?)
    };
    Ok(ServeOptions {
        base,
        artifact,
        persist,
        addr,
        max_tenants,
        max_connections,
        max_frame_bytes,
        max_batch,
        write_queue,
        write_buffer,
        workers,
        threaded,
    })
}

/// Parses `pmx loadgen` arguments.
pub fn parse_loadgen(argv: &[String]) -> Result<LoadgenArgs, ParseError> {
    let mut addr = None;
    let mut rules = 40usize;
    let mut tenants = 8usize;
    let mut phases = 4usize;
    let mut batches = 50usize;
    let mut batch = 256usize;
    let mut samples = 4usize;
    let mut seed = 0x00C0_FFEE_u64;
    let mut idle = 0usize;
    let mut rounds = 3usize;
    let mut base_argv: Vec<String> = Vec::with_capacity(argv.len());
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| ParseError(format!("{name} expects a value")))
        };
        let parse_num = |name: &str, v: String| {
            v.parse::<usize>().map_err(|_| ParseError(format!("bad {name}")))
        };
        match flag.as_str() {
            "--addr" => addr = Some(value("--addr")?),
            "--rules" => rules = parse_num("--rules", value("--rules")?)?,
            "--tenants" => tenants = parse_num("--tenants", value("--tenants")?)?,
            "--phases" => phases = parse_num("--phases", value("--phases")?)?,
            "--batches" => batches = parse_num("--batches", value("--batches")?)?,
            "--batch" => batch = parse_num("--batch", value("--batch")?)?,
            "--samples" => samples = parse_num("--samples", value("--samples")?)?,
            "--idle" => idle = parse_num("--idle", value("--idle")?)?,
            "--rounds" => rounds = parse_num("--rounds", value("--rounds")?)?,
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|_| ParseError("bad --seed".into()))?;
            }
            other => base_argv.push(other.to_string()),
        }
    }
    let addr =
        addr.ok_or_else(|| ParseError("--addr HOST:PORT is required".into()))?;
    if tenants == 0 || phases == 0 || batch == 0 {
        return Err(ParseError("--tenants, --phases and --batch must be positive".into()));
    }
    if idle > 0 && rounds == 0 {
        return Err(ParseError("--rounds must be positive in --idle mode".into()));
    }
    let has_source = base_argv.iter().any(|f| f == "--input" || f == "--synthetic");
    let base = if has_source {
        Some(parse(&base_argv)?)
    } else if let Some(stray) = base_argv.first() {
        return Err(ParseError(format!(
            "{stray} requires a data source (--input/--synthetic) to mine the \
             knowledge pool from"
        )));
    } else {
        None
    };
    Ok(LoadgenArgs { addr, base, rules, tenants, phases, batches, batch, samples, seed, idle, rounds })
}

/// Parses `pmx audit` arguments.
pub fn parse_audit(argv: &[String]) -> Result<AuditOptions, ParseError> {
    let mut root = ".".to_string();
    let mut json = false;
    let mut deny_warnings = false;
    let mut list_rules = false;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--root" => {
                root = it
                    .next()
                    .cloned()
                    .ok_or_else(|| ParseError("--root expects a value".into()))?;
            }
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--list-rules" => list_rules = true,
            other => return Err(ParseError(format!("unknown flag `{other}`"))),
        }
    }
    Ok(AuditOptions { root, json, deny_warnings, list_rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let o = parse(&argv(
            "--synthetic adult:1000 --ell 4 --exempt 2 --bounds 0,5,50 --arity 3 --seed 9 \
             --threads 4",
        ))
        .unwrap();
        assert_eq!(o.source, Source::Synthetic { kind: "adult".into(), records: 1000 });
        assert_eq!(o.ell, 4);
        assert_eq!(o.exempt, 2);
        assert_eq!(o.bounds, vec![0, 5, 50]);
        assert_eq!(o.arity, 3);
        assert_eq!(o.seed, 9);
        assert_eq!(o.threads, 4);
        assert_eq!(o.mechanism, Mechanism::Anatomy);
    }

    #[test]
    fn threads_defaults_to_auto() {
        let o = parse(&argv("--synthetic adult:100")).unwrap();
        assert_eq!(o.threads, 0, "0 = all available cores");
        assert!(parse(&argv("--synthetic adult:100 --threads x")).is_err());
    }

    #[test]
    fn batch_cost_defaults_to_engine_default_and_parses() {
        let o = parse(&argv("--synthetic adult:100")).unwrap();
        assert_eq!(
            o.batch_cost,
            EngineConfig::default().batch_min_cost,
            "CLI default mirrors the engine default"
        );
        let o = parse(&argv("--synthetic adult:100 --batch-cost 0")).unwrap();
        assert_eq!(o.batch_cost, 0, "0 = one task per component");
        let o = parse(&argv("--synthetic adult:100 --batch-cost 4096")).unwrap();
        assert_eq!(o.batch_cost, 4096);
        assert!(parse(&argv("--synthetic adult:100 --batch-cost x")).is_err());
    }

    #[test]
    fn mondrian_flag() {
        let o = parse(&argv("--synthetic medical:500 --mondrian 10")).unwrap();
        assert_eq!(o.mechanism, Mechanism::Mondrian { k: 10 });
    }

    #[test]
    fn missing_source_is_an_error() {
        assert!(parse(&argv("--ell 5")).is_err());
    }

    #[test]
    fn rejects_unknown_flags_and_bad_values() {
        assert!(parse(&argv("--synthetic adult:1000 --frobnicate 1")).is_err());
        assert!(parse(&argv("--synthetic adult")).is_err());
        assert!(parse(&argv("--synthetic plants:100")).is_err());
        assert!(parse(&argv("--synthetic adult:100 --bounds 1,x")).is_err());
        assert!(parse(&argv("--synthetic adult:100 --ell 0")).is_err());
    }

    #[test]
    fn input_file_source() {
        let o = parse(&argv("--input /tmp/data.csv")).unwrap();
        assert_eq!(o.source, Source::File("/tmp/data.csv".into()));
    }

    #[test]
    fn compile_options() {
        let o = parse_compile(&argv("--synthetic adult:1000 --ell 4 --threads 2")).unwrap();
        assert_eq!(o.base.ell, 4);
        assert_eq!(o.base.threads, 2);
        assert_eq!(o.out, None);
        assert!(parse_compile(&argv("--synthetic adult:100 --bounds 0,10")).is_err());
        assert!(parse_compile(&argv("--synthetic adult:100 --script x.pmx")).is_err());
        assert!(parse_compile(&argv("--synthetic adult:100 --warm-start")).is_err());
        assert!(parse_compile(&argv("--synthetic adult:100 --persist d")).is_err());
    }

    #[test]
    fn compile_out_flag() {
        let o = parse_compile(&argv("--synthetic adult:100 --out table.pmx")).unwrap();
        assert_eq!(o.out.as_deref(), Some("table.pmx"));
        assert!(parse_compile(&argv("--synthetic adult:100 --out")).is_err());
    }

    #[test]
    fn session_options() {
        let o = parse_session(&argv(
            "--synthetic medical:500 --script deltas.pmx --warm-start --threads 2",
        ))
        .unwrap();
        assert_eq!(o.script.as_deref(), Some("deltas.pmx"));
        assert!(o.warm_start);
        let base = o.base.expect("source given");
        assert_eq!(base.threads, 2);
        assert_eq!(
            base.source,
            Source::Synthetic { kind: "medical".into(), records: 500 }
        );

        let o = parse_session(&argv("--synthetic adult:100")).unwrap();
        assert_eq!(o.script, None);
        assert!(!o.warm_start);
        assert_eq!(o.artifact, None);
        assert_eq!(o.persist, None);

        assert!(parse_session(&argv("--synthetic adult:100 --script")).is_err());
        assert!(parse_session(&argv("--synthetic adult:100 --bounds 0,10")).is_err());
        assert!(parse_session(&argv("")).is_err(), "no source, nothing persisted");
    }

    #[test]
    fn serve_options() {
        let o = parse_serve(&argv(
            "--synthetic adult:1000 --addr 127.0.0.1:0 --max-tenants 16 \
             --max-connections 8 --max-batch 1024 --write-queue 32",
        ))
        .unwrap();
        assert!(o.base.is_some());
        assert_eq!(o.addr, "127.0.0.1:0");
        assert_eq!(o.max_tenants, 16);
        assert_eq!(o.max_connections, 8);
        assert_eq!(o.max_batch, 1024);
        assert_eq!(o.write_queue, 32);
        assert_eq!(o.workers, pm_serve::server::DEFAULT_WORKERS);
        assert!(!o.threaded, "reactor is the default backend");

        let o = parse_serve(&argv("--artifact table.pmx")).unwrap();
        assert_eq!(o.artifact.as_deref(), Some("table.pmx"));
        assert!(o.base.is_none());
        assert_eq!(o.addr, "127.0.0.1:7171", "default listen address");
        assert_eq!(
            o.write_buffer,
            pm_serve::registry::Limits::default().write_buffer_bytes
        );

        let o = parse_serve(&argv(
            "--artifact a.pmx --workers 2 --write-buffer 1048576",
        ))
        .unwrap();
        assert_eq!(o.workers, 2);
        assert_eq!(o.write_buffer, 1 << 20);
        let o = parse_serve(&argv("--artifact a.pmx --threaded")).unwrap();
        assert!(o.threaded);
        assert!(parse_serve(&argv("--artifact a.pmx --workers 0")).is_err());
        assert!(
            parse_serve(&argv("--artifact a.pmx --threaded --workers 2")).is_err(),
            "--workers is a reactor knob"
        );

        assert!(parse_serve(&argv("--artifact a.pmx --persist d")).is_err());
        assert!(parse_serve(&argv("--synthetic adult:100 --bounds 0,10")).is_err());
        assert!(parse_serve(&argv("--synthetic adult:100 --script x")).is_err());
        assert!(parse_serve(&argv("--synthetic adult:100 --max-tenants 0")).is_err());
        assert!(parse_serve(&argv("--artifact a.pmx --threads 2")).is_err());
        assert!(parse_serve(&argv("")).is_err(), "no source, nothing persisted");
    }

    #[test]
    fn loadgen_options() {
        let o = parse_loadgen(&argv(
            "--addr 127.0.0.1:7171 --synthetic adult:1000 --rules 20 --tenants 4 \
             --phases 2 --batches 10 --batch 64 --samples 3 --seed 7",
        ))
        .unwrap();
        assert_eq!(o.addr, "127.0.0.1:7171");
        assert!(o.base.is_some());
        assert_eq!(o.rules, 20);
        assert_eq!(o.tenants, 4);
        assert_eq!(o.phases, 2);
        assert_eq!(o.batches, 10);
        assert_eq!(o.batch, 64);
        assert_eq!(o.samples, 3);
        assert_eq!(o.seed, 7);

        let o = parse_loadgen(&argv("--addr 127.0.0.1:7171")).unwrap();
        assert!(o.base.is_none(), "query-only load without a source");
        assert_eq!(o.idle, 0, "closed-loop tape mode by default");
        assert_eq!(o.rounds, 3);

        let o = parse_loadgen(&argv("--addr 127.0.0.1:7171 --idle 5000 --rounds 5")).unwrap();
        assert_eq!(o.idle, 5000);
        assert_eq!(o.rounds, 5);
        assert!(parse_loadgen(&argv("--addr x --idle 10 --rounds 0")).is_err());

        assert!(parse_loadgen(&argv("")).is_err(), "--addr is required");
        assert!(parse_loadgen(&argv("--addr x --tenants 0")).is_err());
        assert!(
            parse_loadgen(&argv("--addr x --ell 5")).is_err(),
            "engine flags need a source"
        );
    }

    #[test]
    fn audit_options() {
        let o = parse_audit(&argv("")).unwrap();
        assert_eq!(o.root, ".", "scans the current workspace by default");
        assert!(!o.json && !o.deny_warnings && !o.list_rules);

        let o = parse_audit(&argv("--root /ws --json --deny-warnings --list-rules")).unwrap();
        assert_eq!(o.root, "/ws");
        assert!(o.json && o.deny_warnings && o.list_rules);

        assert!(parse_audit(&argv("--root")).is_err(), "--root needs a value");
        assert!(parse_audit(&argv("--frobnicate")).is_err());
    }

    #[test]
    fn session_persistence_flags() {
        // Artifact-only: no source needed, config comes from the snapshot.
        let o = parse_session(&argv("--artifact table.pmx")).unwrap();
        assert_eq!(o.artifact.as_deref(), Some("table.pmx"));
        assert_eq!(o.base, None);

        // Persist + source: recover-or-initialise the directory.
        let o = parse_session(&argv("--persist state/ --synthetic medical:500")).unwrap();
        assert_eq!(o.persist.as_deref(), Some("state/"));
        assert!(o.base.is_some());

        // Persist-only: recover.
        let o = parse_session(&argv("--persist state/ --script s.pmx")).unwrap();
        assert_eq!(o.base, None);
        assert_eq!(o.script.as_deref(), Some("s.pmx"));

        assert!(
            parse_session(&argv("--artifact a.pmx --persist d")).is_err(),
            "mutually exclusive"
        );
        assert!(
            parse_session(&argv("--artifact a.pmx --threads 2")).is_err(),
            "engine flags need a source"
        );
        assert!(
            parse_session(&argv("--artifact a.pmx --warm-start")).is_err(),
            "warm-start needs a source"
        );
    }
}
