//! `pmx compile` — prebuild the shared `CompiledTable` artifact and print
//! its stats.
//!
//! Everything knowledge-independent about a publication (term index,
//! D'-invariants, QI→bucket inverted index, baseline partition + Theorem 5
//! solution) compiles exactly once into the artifact; `pmx session` reuses
//! the same build path, so a scripted session pays the compile once and
//! every session (re)open from it is O(1) — see the `reset` session
//! command.

use std::error::Error;
use std::sync::Arc;

use pm_microdata::dataset::Dataset;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;

use crate::args::{CompileOptions, Options};
use crate::quantify;

/// Loads the microdata, publishes it and compiles the artifact — the
/// shared front half of `pmx compile` and `pmx session`.
pub(crate) fn build_artifact(
    options: &Options,
    config: EngineConfig,
) -> Result<(Dataset, Arc<CompiledTable>), Box<dyn Error>> {
    let data = quantify::load_source(options)?;
    let table = quantify::publish(&data, options)?;
    let artifact = Arc::new(CompiledTable::build(table, config)?);
    println!("{}", artifact.stats());
    Ok((data, artifact))
}

/// Runs `pmx compile`: build the artifact once, print its stats, exit —
/// optionally saving it as a versioned snapshot (`--out`) that
/// `pmx session --artifact` / `--persist` reopens without recompiling.
pub fn run(options: &CompileOptions) -> Result<(), Box<dyn Error>> {
    let config = EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(options.base.threads)
        .batch_min_cost(options.base.batch_cost)
        .build();
    let (_, artifact) = build_artifact(&options.base, config)?;
    println!(
        "baseline max disclosure (no background knowledge): {:.4}",
        privacy_maxent::metrics::max_disclosure(&artifact.baseline_estimate())
    );
    if let Some(out) = &options.out {
        let bytes = artifact.save(out)?;
        println!(
            "saved snapshot: {bytes} bytes -> {out} (reopen with `pmx session --artifact {out}`)"
        );
    }
    println!(
        "this is the exact knowledge-independent build `pmx session` runs at \
         startup; within a session, every open and `reset` reuses it in O(1)"
    );
    Ok(())
}
