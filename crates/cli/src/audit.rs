//! `pmx audit` — run the pm-audit static-analysis pass over the workspace.

use std::path::Path;

use crate::args::AuditOptions;

/// Runs the pass. `Ok(true)` = clean, `Ok(false)` = findings (the caller
/// exits nonzero), `Err` = the scan itself failed.
pub fn run(options: &AuditOptions) -> Result<bool, Box<dyn std::error::Error>> {
    if options.list_rules {
        for (id, summary) in pm_audit::rules::catalog() {
            println!("{id:18} {summary}");
        }
        return Ok(true);
    }
    let report = pm_audit::audit_workspace(Path::new(&options.root))?;
    if options.json {
        print!("{}", report.render_json());
    } else {
        print!("{}", report.render_human());
    }
    Ok(report.is_clean(options.deny_warnings))
}
