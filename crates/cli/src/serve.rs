//! `pmx serve` / `pmx loadgen` — the network front-end over a compiled
//! artifact and its closed-loop exerciser.
//!
//! `serve` resolves its artifact exactly like `pmx session`: compile from a
//! data source, load a read-only `--artifact` snapshot, or recover a
//! durable `--persist` directory (in which case every table-delta epoch is
//! journaled through the WAL before it is published). It then keeps one
//! resident `Analyst` per tenant id and serves the length-prefixed binary
//! protocol until killed.
//!
//! `loadgen` drives a running server with the deterministic tape workload
//! from [`pm_serve::loadgen`]: batched queries, knowledge add/remove steps,
//! refreshes, and sampled single queries, one connection per tenant.

use std::error::Error;
use std::net::ToSocketAddrs;
use std::sync::Arc;

use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_serve::loadgen::{self, LoadgenOptions};
use pm_serve::protocol::WireKnowledge;
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::{Backend, Server};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;
use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE};

use crate::args::{LoadgenArgs, Options, ServeOptions};
use crate::compile;
use crate::quantify;

/// Resolves the artifact (+ optional WAL) the server will serve, mirroring
/// `pmx session`'s three open modes.
fn resolve_artifact(
    options: &ServeOptions,
) -> Result<(Arc<CompiledTable>, Option<EpochWal>), Box<dyn Error>> {
    if let Some(path) = &options.artifact {
        let artifact = CompiledTable::load(path)?;
        println!("loaded snapshot {path}: {}", artifact.stats());
        return Ok((Arc::new(artifact), None));
    }
    if let Some(dir) = &options.persist {
        let dir_path = std::path::Path::new(dir);
        if dir_path.join(SNAPSHOT_FILE).exists() {
            let recovered = recover(dir_path)?;
            println!(
                "recovered {dir}: epoch {} ({} WAL record(s) replayed, {} skipped, \
                 {} torn byte(s) truncated)",
                recovered.artifact.epoch(),
                recovered.replayed,
                recovered.skipped,
                recovered.truncated_bytes,
            );
            let wal = EpochWal::open_append(dir_path)?;
            return Ok((Arc::new(recovered.artifact), Some(wal)));
        }
        let base = options.base.as_ref().ok_or_else(|| {
            format!(
                "{dir} holds no snapshot yet; provide --input/--synthetic to \
                 initialise it"
            )
        })?;
        std::fs::create_dir_all(dir_path)?;
        let (_, artifact) = compile::build_artifact(base, config_for(base))?;
        let bytes = artifact.save(dir_path.join(SNAPSHOT_FILE))?;
        let wal = EpochWal::create(dir_path, artifact.epoch())?;
        println!("initialised {dir}: {bytes}-byte snapshot + empty WAL");
        return Ok((artifact, Some(wal)));
    }
    let base = options.base.as_ref().expect("parser requires a source when nothing persists");
    let (_, artifact) = compile::build_artifact(base, config_for(base))?;
    Ok((artifact, None))
}

fn config_for(base: &Options) -> EngineConfig {
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(base.threads)
        .batch_min_cost(base.batch_cost)
        .build()
}

/// Builds the registry and binds the server — shared by [`run`] and any
/// test that wants an in-process `pmx serve`.
pub fn start(options: &ServeOptions) -> Result<Server, Box<dyn Error>> {
    let (artifact, wal) = resolve_artifact(options)?;
    let limits = Limits {
        max_tenants: options.max_tenants,
        max_connections: options.max_connections,
        max_frame_bytes: options.max_frame_bytes,
        max_batch: options.max_batch,
        write_queue_frames: options.write_queue,
        write_buffer_bytes: options.write_buffer,
    };
    let backend = if options.threaded {
        Backend::Threaded
    } else {
        Backend::Reactor { workers: options.workers }
    };
    let registry = Arc::new(Registry::new(artifact, wal, limits));
    Ok(Server::bind_with(options.addr.as_str(), registry, backend)?)
}

/// Runs `pmx serve`: bind, print the resolved address, serve until killed.
pub fn run(options: &ServeOptions) -> Result<(), Box<dyn Error>> {
    let server = start(options)?;
    let threads = match server.io_threads() {
        Some(n) => format!("{n} fixed I/O thread(s)"),
        None => "2 threads per connection".to_string(),
    };
    println!(
        "pmx serve listening on {} ({} tenant / {} connection caps; {threads}; \
         kill the process to stop)",
        server.addr(),
        options.max_tenants,
        options.max_connections,
    );
    loop {
        std::thread::park();
    }
}

/// Mines the knowledge pool the loadgen tapes draw from: top-K association
/// rules of the source data, as wire knowledge.
fn mine_pool(base: &Options, rules: usize) -> Result<Vec<WireKnowledge>, Box<dyn Error>> {
    let data = quantify::load_source(base)?;
    let mined = RuleMiner::new(MinerConfig {
        min_support: 3,
        arities: (1..=base.arity).collect(),
    })
    .mine(&data);
    let pool: Vec<WireKnowledge> = mined
        .top_k(rules.div_ceil(2), rules / 2)
        .into_iter()
        .filter_map(|r| {
            let k = Knowledge::from_rule(r, data.schema()).ok()?;
            WireKnowledge::from_knowledge(&k)
        })
        .collect();
    println!(
        "mined {} rule(s) into the knowledge pool (requested {rules})",
        pool.len()
    );
    Ok(pool)
}

/// Runs `pmx loadgen` against a live server and prints the closed-loop
/// (or, with `--idle N`, the open-loop cohort) report.
pub fn run_loadgen(args: &LoadgenArgs) -> Result<(), Box<dyn Error>> {
    let addr = args
        .addr
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| format!("{} resolves to no address", args.addr))?;

    if args.idle > 0 {
        let opts = loadgen::IdleOptions {
            connections: args.idle,
            tenants: args.tenants,
            rounds: args.rounds,
        };
        let report = loadgen::run_idle(addr, &opts)?;
        println!(
            "loadgen --idle: {} connection(s) held across {} tenant(s) in {:.3} s",
            report.connections, args.tenants, report.wall_seconds,
        );
        println!(
            "         accept p50 early {:.0} us / late {:.0} us; accept p99 {:.0} us",
            report.accept_early_p50_us, report.accept_late_p50_us, report.accept_p99_us,
        );
        for (i, round) in report.rounds.iter().enumerate() {
            println!(
                "         ping sweep {i}: p50 {:.0} us, p99 {:.0} us, max {:.0} us",
                round.p50_us, round.p99_us, round.max_us,
            );
        }
        return Ok(());
    }

    let pool = match &args.base {
        Some(base) => mine_pool(base, args.rules)?,
        None => Vec::new(),
    };
    let opts = LoadgenOptions {
        tenants: args.tenants,
        phases: args.phases,
        batches_per_phase: args.batches,
        batch: args.batch,
        samples_per_phase: args.samples,
        seed: args.seed,
    };
    let report = loadgen::run(addr, &pool, &[], &opts)?;
    println!(
        "loadgen: {} queries ({} batch frames + {} singles) across {} tenant(s) \
         in {:.3} s -> {:.0} queries/s",
        report.queries,
        report.batches,
        report.singles,
        args.tenants,
        report.wall_seconds,
        report.qps,
    );
    let samples: usize = report.phases.iter().map(|p| p.samples.len()).sum();
    println!(
        "         {} knowledge op(s), {} refresh(es), {} delta(s), {samples} sample(s) recorded",
        report.knowledge_ops, report.refreshes, report.deltas,
    );
    Ok(())
}
