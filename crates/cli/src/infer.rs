//! Schema inference for CSV input: every column is categorical, domains are
//! the distinct labels observed, the last column is the sensitive
//! attribute, all others are quasi-identifiers.

use std::io::BufRead;

use pm_microdata::dataset::Dataset;
use pm_microdata::schema::{Schema, SchemaBuilder};
use pm_microdata::value::Domain;

/// Inference error.
#[derive(Debug)]
pub struct InferError(pub String);

impl std::fmt::Display for InferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for InferError {}

/// Reads `text` twice (conceptually): first to collect per-column domains,
/// then to materialise the dataset. The first line is treated as a header
/// when none of its fields reappear later in the same column; otherwise it
/// is data.
pub fn infer_and_load(text: &str) -> Result<(Schema, Dataset), InferError> {
    let mut lines = Vec::new();
    for line in text.as_bytes().lines() {
        let line = line.map_err(|e| InferError(format!("read error: {e}")))?;
        if !line.trim().is_empty() {
            lines.push(line);
        }
    }
    if lines.len() < 2 {
        return Err(InferError("need at least two non-empty lines".into()));
    }
    let arity = lines[0].split(',').count();
    if arity < 2 {
        return Err(InferError("need at least one QI column and one SA column".into()));
    }
    let rows: Vec<Vec<String>> = lines
        .iter()
        .map(|l| l.split(',').map(|f| f.trim().to_string()).collect())
        .collect();
    for (i, r) in rows.iter().enumerate() {
        if r.len() != arity {
            return Err(InferError(format!(
                "line {} has {} fields, expected {arity}",
                i + 1,
                r.len()
            )));
        }
    }
    // Header heuristic: the first row is a header iff, for some column, its
    // label never recurs below.
    let is_header = (0..arity).any(|c| rows[1..].iter().all(|r| r[c] != rows[0][c]));
    let data_rows = if is_header { &rows[1..] } else { &rows[..] };

    // Collect domains in first-appearance order.
    let mut domains: Vec<Vec<String>> = vec![Vec::new(); arity];
    for r in data_rows {
        for (c, field) in r.iter().enumerate() {
            if !domains[c].contains(field) {
                domains[c].push(field.clone());
            }
        }
    }
    let names: Vec<String> = if is_header {
        rows[0].clone()
    } else {
        (0..arity).map(|c| format!("col{c}")).collect()
    };

    let mut builder = SchemaBuilder::new();
    for c in 0..arity - 1 {
        builder = builder.qi(&names[c], Domain::new(domains[c].clone()));
    }
    builder = builder.sensitive(&names[arity - 1], Domain::new(domains[arity - 1].clone()));
    let schema = builder.build().map_err(|e| InferError(e.to_string()))?;

    let mut data = Dataset::with_capacity(schema.clone(), data_rows.len());
    for r in data_rows {
        let labels: Vec<&str> = r.iter().map(String::as_str).collect();
        data.push_labels(&labels)
            .map_err(|e| InferError(e.to_string()))?;
    }
    Ok((schema, data))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infers_with_header() {
        let text = "sex,disease\nmale,flu\nfemale,hiv\nmale,hiv\n";
        let (schema, data) = infer_and_load(text).unwrap();
        assert_eq!(schema.arity(), 2);
        assert_eq!(schema.attribute(0).name(), "sex");
        assert_eq!(schema.qi_attrs(), &[0]);
        assert_eq!(schema.sensitive().unwrap(), 1);
        assert_eq!(data.len(), 3);
    }

    #[test]
    fn infers_without_header() {
        let text = "male,flu\nfemale,hiv\nmale,flu\n";
        let (schema, data) = infer_and_load(text).unwrap();
        assert_eq!(schema.attribute(0).name(), "col0");
        assert_eq!(data.len(), 3);
        // "male" recurs in column 0 below line 1 → treated as data.
        assert_eq!(data.count_matching(&[0], &[0]), 2);
    }

    #[test]
    fn rejects_ragged_rows() {
        assert!(infer_and_load("a,b\nc\n").is_err());
        assert!(infer_and_load("only-one-line\n").is_err());
        assert!(infer_and_load("single\ncolumn\n").is_err());
    }
}
