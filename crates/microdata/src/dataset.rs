//! The `Dataset` container: schema + row-major value storage.

use crate::error::MicrodataError;
use crate::record::RecordRef;
use crate::schema::Schema;
use crate::value::{AttrId, Value};

/// An in-memory microdata table (the original data `D` of the paper).
///
/// Rows are stored row-major in one flat `Vec<Value>`; a record is a
/// `arity`-long window. This keeps the Adult-scale table (~14k × 9) in a
/// single allocation and makes scans cache-friendly.
#[derive(Debug, Clone)]
pub struct Dataset {
    schema: Schema,
    storage: Vec<Value>,
    rows: usize,
}

impl Dataset {
    /// Creates an empty dataset over `schema`.
    pub fn new(schema: Schema) -> Self {
        Self { schema, storage: Vec::new(), rows: 0 }
    }

    /// Creates an empty dataset with capacity for `rows` records.
    pub fn with_capacity(schema: Schema, rows: usize) -> Self {
        let arity = schema.arity();
        Self { schema, storage: Vec::with_capacity(rows * arity), rows: 0 }
    }

    /// The dataset's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.rows
    }

    /// Whether the dataset has no records.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Appends a record, validating arity and domain membership.
    pub fn push(&mut self, values: &[Value]) -> Result<(), MicrodataError> {
        if values.len() != self.schema.arity() {
            return Err(MicrodataError::ArityMismatch {
                got: values.len(),
                expected: self.schema.arity(),
            });
        }
        for (attr, &code) in values.iter().enumerate() {
            let card = self.schema.attribute(attr).domain().cardinality();
            if code as usize >= card {
                return Err(MicrodataError::ValueOutOfDomain { attr, code, cardinality: card });
            }
        }
        self.storage.extend_from_slice(values);
        self.rows += 1;
        Ok(())
    }

    /// Appends a record expressed as domain labels (slow path; tests/examples).
    pub fn push_labels(&mut self, labels: &[&str]) -> Result<(), MicrodataError> {
        let mut codes = Vec::with_capacity(labels.len());
        for (attr, label) in labels.iter().enumerate() {
            if attr >= self.schema.arity() {
                break;
            }
            let code = self
                .schema
                .attribute(attr)
                .domain()
                .code(label)
                .ok_or_else(|| MicrodataError::UnknownAttribute((*label).to_string()))?;
            codes.push(code);
        }
        self.push(&codes)
    }

    /// The record at `row`.
    #[inline]
    pub fn record(&self, row: usize) -> RecordRef<'_> {
        let arity = self.schema.arity();
        RecordRef::new(&self.storage[row * arity..(row + 1) * arity])
    }

    /// Iterates all records.
    pub fn records(&self) -> impl Iterator<Item = RecordRef<'_>> + '_ {
        let arity = self.schema.arity();
        self.storage.chunks_exact(arity).map(RecordRef::new)
    }

    /// Returns a new dataset containing the records at `rows`, in order.
    pub fn select(&self, rows: &[usize]) -> Self {
        let arity = self.schema.arity();
        let mut out = Self::with_capacity(self.schema.clone(), rows.len());
        for &r in rows {
            out.storage.extend_from_slice(&self.storage[r * arity..(r + 1) * arity]);
            out.rows += 1;
        }
        out
    }

    /// Returns the first `n` records as a new dataset.
    pub fn head(&self, n: usize) -> Self {
        let n = n.min(self.rows);
        let arity = self.schema.arity();
        let mut out = Self::with_capacity(self.schema.clone(), n);
        out.storage.extend_from_slice(&self.storage[..n * arity]);
        out.rows = n;
        out
    }

    /// Counts records whose projection onto `attrs` equals `vals`.
    pub fn count_matching(&self, attrs: &[AttrId], vals: &[Value]) -> usize {
        debug_assert_eq!(attrs.len(), vals.len());
        self.records()
            .filter(|r| attrs.iter().zip(vals).all(|(&a, &v)| r.get(a) == v))
            .count()
    }

    /// Empirical probability of the projection event `attrs = vals`.
    pub fn probability(&self, attrs: &[AttrId], vals: &[Value]) -> f64 {
        if self.rows == 0 {
            return 0.0;
        }
        self.count_matching(attrs, vals) as f64 / self.rows as f64
    }

    /// Empirical conditional probability `P(sa = s | attrs = vals)`.
    ///
    /// Returns `None` when the conditioning event has zero support.
    pub fn conditional_sa_probability(
        &self,
        attrs: &[AttrId],
        vals: &[Value],
        s: Value,
    ) -> Result<Option<f64>, MicrodataError> {
        let sa = self.schema.sensitive()?;
        let mut cond = 0usize;
        let mut joint = 0usize;
        for r in self.records() {
            if attrs.iter().zip(vals).all(|(&a, &v)| r.get(a) == v) {
                cond += 1;
                if r.get(sa) == s {
                    joint += 1;
                }
            }
        }
        Ok(if cond == 0 { None } else { Some(joint as f64 / cond as f64) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_dataset;
    use crate::schema::paper_example_schema;

    #[test]
    fn figure1_counts() {
        let d = figure1_dataset();
        assert_eq!(d.len(), 10);
        // P(male) = 6/10 as computed in Section 4.1's worked example.
        assert!((d.probability(&[0], &[0]) - 0.6).abs() < 1e-12);
        // q1 = {male, college} appears 3 times (Allen, Brian, Ethan).
        assert_eq!(d.count_matching(&[0, 1], &[0, 0]), 3);
    }

    #[test]
    fn conditional_probability() {
        let d = figure1_dataset();
        let flu = d.schema().attribute(2).domain().code("flu").unwrap();
        // P(flu | male) = 3/6.
        let p = d.conditional_sa_probability(&[0], &[0], flu).unwrap().unwrap();
        assert!((p - 0.5).abs() < 1e-12);
        // Conditioning on an absent event yields None.
        let p = d
            .conditional_sa_probability(&[0, 1], &[1, 1], flu)
            .unwrap();
        assert!(p.is_none());
    }

    #[test]
    fn push_validation() {
        let mut d = Dataset::new(paper_example_schema());
        assert!(matches!(
            d.push(&[0, 0]),
            Err(MicrodataError::ArityMismatch { .. })
        ));
        assert!(matches!(
            d.push(&[0, 9, 0]),
            Err(MicrodataError::ValueOutOfDomain { attr: 1, .. })
        ));
        assert!(d.push(&[0, 0, 0]).is_ok());
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn select_and_head() {
        let d = figure1_dataset();
        let h = d.head(3);
        assert_eq!(h.len(), 3);
        assert_eq!(h.record(2).values(), d.record(2).values());
        let s = d.select(&[9, 0]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.record(0).values(), d.record(9).values());
        assert_eq!(s.record(1).values(), d.record(0).values());
    }

    #[test]
    fn empty_dataset_probability_is_zero() {
        let d = Dataset::new(paper_example_schema());
        assert_eq!(d.probability(&[0], &[0]), 0.0);
        assert!(d.is_empty());
    }
}
