//! # pm-microdata
//!
//! Categorical microdata substrate for the Privacy-MaxEnt reproduction.
//!
//! A *microdata* table (the `D` of the paper) is a collection of records over
//! a fixed [`schema::Schema`] of categorical attributes. Every attribute is
//! assigned a [`schema::AttributeRole`]:
//!
//! * **Identifier (ID)** — names, SSNs; always removed before publication.
//! * **Quasi-identifier (QI)** — demography usable for linking attacks.
//! * **Sensitive attribute (SA)** — the private value (e.g. disease).
//!
//! Values are stored as dense `u16` codes into per-attribute domains, which
//! keeps the 14k-record Adult-scale experiments allocation-free on the hot
//! counting paths.
//!
//! The crate also provides [`qi::QiInterner`], the dense interning of distinct
//! full-QI tuples into the `q1, q2, …` symbols of the paper's abstract form
//! (Figure 1(c)), and the counting utilities every downstream crate uses
//! (joint distributions, conditionals, marginals).

pub mod dataset;
pub mod distribution;
pub mod error;
pub mod fixtures;
pub mod qi;
pub mod record;
pub mod schema;
pub mod text;
pub mod value;

pub use dataset::Dataset;
pub use error::MicrodataError;
pub use schema::{AttributeRole, Schema};
pub use value::{AttrId, Value};
