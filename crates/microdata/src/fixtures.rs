//! Shared fixtures: the paper's running example (Figure 1).

use crate::dataset::Dataset;
use crate::schema::paper_example_schema;

/// Builds the paper's Figure 1(a) original table `D` (10 records,
/// Allen…James), over [`paper_example_schema`].
///
/// Value codes: gender `male=0, female=1`; degree `college=0, high school=1,
/// junior=2, graduate=3`; disease `flu=0, pneumonia=1, breast cancer=2,
/// hiv=3, lung cancer=4`.
pub fn figure1_dataset() -> Dataset {
    let mut d = Dataset::new(paper_example_schema());
    let rows: &[[&str; 3]] = &[
        ["male", "college", "flu"],              // Allen
        ["male", "college", "pneumonia"],        // Brian
        ["female", "college", "breast cancer"],  // Cathy
        ["male", "high school", "flu"],          // David
        ["male", "college", "hiv"],              // Ethan
        ["male", "high school", "pneumonia"],    // Frank
        ["female", "junior", "breast cancer"],   // Grace
        ["female", "college", "hiv"],            // Helen
        ["female", "graduate", "lung cancer"],   // Iris
        ["male", "graduate", "flu"],             // James
    ];
    for r in rows {
        d.push_labels(r).expect("figure 1 rows are schema-valid");
    }
    d
}

/// The paper's bucket layout for Figure 1(b)/(c): records grouped as
/// `{Allen, Brian, Cathy, David}`, `{Ethan, Frank, Grace}`,
/// `{Helen, Iris, James}` (row indices into [`figure1_dataset`]).
///
/// This matches the abstract form of Figure 1(c) — bucket 1 holds
/// `q1, q1, q2, q3` with SA multiset `{s1, s2, s2, s3}`, bucket 2 holds
/// `q1, q3, q4` with `{s1, s3, s4}`, bucket 3 holds `q2, q5, q6` with
/// `{s2, s4, s5}` — and the pseudonym layout of Figure 4 (`{i4, i5}` are
/// the two `q2` records, Cathy in bucket 1 and Helen in bucket 3).
/// In the paper's symbol order: `s1` = breast cancer, `s2` = flu,
/// `s3` = pneumonia, `s4` = HIV, `s5` = lung cancer.
pub fn figure1_bucket_rows() -> Vec<Vec<usize>> {
    vec![vec![0, 1, 2, 3], vec![4, 5, 6], vec![7, 8, 9]]
}
