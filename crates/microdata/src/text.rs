//! Text (CSV-like) import/export of datasets.
//!
//! The evaluation substitutes a synthetic Adult generator (no network
//! access), but users holding the real UCI `adult.data` file can load it
//! through this module and run the identical pipeline: values are matched
//! against the schema's domain labels, unknown labels either error or map
//! to a designated fallback.

use std::io::{BufRead, Write};

use crate::dataset::Dataset;
use crate::error::MicrodataError;
use crate::schema::Schema;
use crate::value::Value;

/// Options for [`read_delimited`].
#[derive(Debug, Clone)]
pub struct ReadOptions {
    /// Field separator (the UCI Adult file uses `", "`; we split on the
    /// character and trim whitespace).
    pub separator: char,
    /// Skip records containing this marker anywhere (UCI uses `?` for
    /// missing values).
    pub skip_marker: Option<String>,
    /// Whether the first line is a header to ignore.
    pub has_header: bool,
    /// Columns (by position) to read, in schema-attribute order. `None`
    /// reads the first `schema.arity()` columns.
    pub columns: Option<Vec<usize>>,
}

impl Default for ReadOptions {
    fn default() -> Self {
        Self {
            separator: ',',
            skip_marker: Some("?".to_string()),
            has_header: false,
            columns: None,
        }
    }
}

/// Reads a delimited text table into a [`Dataset`] over `schema`.
///
/// Unknown labels produce [`MicrodataError::UnknownAttribute`] naming the
/// offending label; rows with the skip marker are dropped silently (the
/// count of dropped rows is returned alongside the data).
pub fn read_delimited<R: BufRead>(
    reader: R,
    schema: Schema,
    options: &ReadOptions,
) -> Result<(Dataset, usize), MicrodataError> {
    let arity = schema.arity();
    let columns: Vec<usize> = options
        .columns
        .clone()
        .unwrap_or_else(|| (0..arity).collect());
    assert_eq!(columns.len(), arity, "column selection must match schema arity");

    let mut data = Dataset::new(schema);
    let mut skipped = 0usize;
    let mut codes: Vec<Value> = Vec::with_capacity(arity);
    for (lineno, line) in reader.lines().enumerate() {
        let line = line.map_err(|_| MicrodataError::UnknownAttribute("<io error>".into()))?;
        if options.has_header && lineno == 0 {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(marker) = &options.skip_marker {
            if trimmed.split(options.separator).any(|f| f.trim() == marker) {
                skipped += 1;
                continue;
            }
        }
        let fields: Vec<&str> = trimmed.split(options.separator).map(str::trim).collect();
        codes.clear();
        let mut ok = true;
        for (attr, &col) in columns.iter().enumerate() {
            let Some(field) = fields.get(col) else {
                return Err(MicrodataError::ArityMismatch {
                    got: fields.len(),
                    expected: columns.iter().copied().max().unwrap_or(0) + 1,
                });
            };
            match data.schema().attribute(attr).domain().code(field) {
                Some(code) => codes.push(code),
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            skipped += 1;
            continue;
        }
        data.push(&codes)?;
    }
    Ok((data, skipped))
}

/// Writes a dataset as delimited text (labels, one record per line).
pub fn write_delimited<W: Write>(
    writer: &mut W,
    data: &Dataset,
    separator: char,
    header: bool,
) -> std::io::Result<()> {
    let schema = data.schema();
    if header {
        let names: Vec<&str> = schema.attributes().iter().map(|a| a.name()).collect();
        writeln!(writer, "{}", names.join(&separator.to_string()))?;
    }
    for r in data.records() {
        let fields: Vec<&str> = r
            .values()
            .iter()
            .enumerate()
            .map(|(attr, &code)| {
                schema
                    .attribute(attr)
                    .domain()
                    .label(code)
                    .expect("stored codes are in-domain")
            })
            .collect();
        writeln!(writer, "{}", fields.join(&separator.to_string()))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_dataset;
    use crate::schema::paper_example_schema;

    #[test]
    fn roundtrip_figure1() {
        let original = figure1_dataset();
        let mut buf = Vec::new();
        write_delimited(&mut buf, &original, ',', true).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("gender,degree,disease\n"));
        let (parsed, skipped) = read_delimited(
            text.as_bytes(),
            paper_example_schema(),
            &ReadOptions { has_header: true, ..Default::default() },
        )
        .unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(parsed.len(), original.len());
        for i in 0..original.len() {
            assert_eq!(parsed.record(i).values(), original.record(i).values());
        }
    }

    #[test]
    fn skip_marker_drops_rows() {
        let text = "male,college,flu\nmale,?,flu\nfemale,junior,hiv\n";
        let (data, skipped) =
            read_delimited(text.as_bytes(), paper_example_schema(), &ReadOptions::default())
                .unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn unknown_labels_are_skipped_not_fatal() {
        let text = "male,college,flu\nmale,college,ebola\n";
        let (data, skipped) =
            read_delimited(text.as_bytes(), paper_example_schema(), &ReadOptions::default())
                .unwrap();
        assert_eq!(data.len(), 1);
        assert_eq!(skipped, 1);
    }

    #[test]
    fn column_selection() {
        // File has an extra leading id column.
        let text = "1,male,college,flu\n2,female,junior,hiv\n";
        let (data, _) = read_delimited(
            text.as_bytes(),
            paper_example_schema(),
            &ReadOptions { columns: Some(vec![1, 2, 3]), ..Default::default() },
        )
        .unwrap();
        assert_eq!(data.len(), 2);
        assert_eq!(data.record(1).get(1), 2); // junior
    }

    #[test]
    fn short_rows_error() {
        let text = "male,college\n";
        let r = read_delimited(text.as_bytes(), paper_example_schema(), &ReadOptions::default());
        assert!(matches!(r, Err(MicrodataError::ArityMismatch { .. })));
    }
}
