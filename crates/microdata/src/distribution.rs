//! Empirical joint and conditional distributions over (QI, SA).
//!
//! These are the "ground truth" distributions computed from the original data
//! `D`; the evaluation (Section 7.1) compares the MaxEnt estimate `P*(S|Q)`
//! against [`QiSaDistribution::conditional`].

use crate::dataset::Dataset;
use crate::error::MicrodataError;
use crate::qi::{project_qi_sa, QiId, QiInterner};
use crate::value::Value;

/// The empirical joint distribution `P(q, s)` of a dataset, indexed by
/// interned [`QiId`] and SA code, plus the marginals needed downstream.
#[derive(Debug, Clone)]
pub struct QiSaDistribution {
    interner: QiInterner,
    sa_cardinality: usize,
    /// joint counts, `counts[q * sa_cardinality + s]`
    counts: Vec<usize>,
    total: usize,
}

impl QiSaDistribution {
    /// Computes the distribution of `data`.
    pub fn from_dataset(data: &Dataset) -> Result<Self, MicrodataError> {
        let sa_cardinality = data.schema().sa_cardinality()?;
        let (interner, pairs) = project_qi_sa(data)?;
        let mut counts = vec![0usize; interner.distinct() * sa_cardinality];
        for &(q, s) in &pairs {
            counts[q * sa_cardinality + s as usize] += 1;
        }
        Ok(Self { interner, sa_cardinality, counts, total: pairs.len() })
    }

    /// The QI interner (symbol table) underlying this distribution.
    pub fn interner(&self) -> &QiInterner {
        &self.interner
    }

    /// SA domain cardinality.
    pub fn sa_cardinality(&self) -> usize {
        self.sa_cardinality
    }

    /// Total records.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Joint count `#(q, s)`.
    pub fn joint_count(&self, q: QiId, s: Value) -> usize {
        self.counts[q * self.sa_cardinality + s as usize]
    }

    /// Joint probability `P(q, s)`.
    pub fn joint(&self, q: QiId, s: Value) -> f64 {
        self.joint_count(q, s) as f64 / self.total as f64
    }

    /// Marginal probability `P(q)`.
    pub fn qi_marginal(&self, q: QiId) -> f64 {
        self.interner.probability(q)
    }

    /// Marginal probability `P(s)`.
    pub fn sa_marginal(&self, s: Value) -> f64 {
        let c: usize = (0..self.interner.distinct())
            .map(|q| self.joint_count(q, s))
            .sum();
        c as f64 / self.total as f64
    }

    /// Conditional probability `P(s | q)` — the ground truth of Section 7.1.
    pub fn conditional(&self, q: QiId, s: Value) -> f64 {
        let qc = self.interner.count(q);
        if qc == 0 {
            0.0
        } else {
            self.joint_count(q, s) as f64 / qc as f64
        }
    }

    /// The full conditional row `P(· | q)` as a dense vector over SA codes.
    pub fn conditional_row(&self, q: QiId) -> Vec<f64> {
        (0..self.sa_cardinality)
            .map(|s| self.conditional(q, s as Value))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_dataset;

    #[test]
    fn figure1_distribution() {
        let d = figure1_dataset();
        let dist = QiSaDistribution::from_dataset(&d).unwrap();
        assert_eq!(dist.total(), 10);
        let q1 = dist.interner().lookup(&[0, 0]).unwrap();
        let flu = 0u16;
        // Of the three {male, college} records, exactly one has flu.
        assert!((dist.conditional(q1, flu) - 1.0 / 3.0).abs() < 1e-12);
        assert!((dist.joint(q1, flu) - 0.1).abs() < 1e-12);
        // P(flu) = 3/10.
        assert!((dist.sa_marginal(flu) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn conditional_rows_sum_to_one() {
        let d = figure1_dataset();
        let dist = QiSaDistribution::from_dataset(&d).unwrap();
        for q in 0..dist.interner().distinct() {
            let row = dist.conditional_row(q);
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {q} sums to {sum}");
        }
    }

    #[test]
    fn marginals_consistent_with_joint() {
        let d = figure1_dataset();
        let dist = QiSaDistribution::from_dataset(&d).unwrap();
        for q in 0..dist.interner().distinct() {
            let sum: f64 = (0..dist.sa_cardinality())
                .map(|s| dist.joint(q, s as Value))
                .sum();
            assert!((sum - dist.qi_marginal(q)).abs() < 1e-12);
        }
    }
}
