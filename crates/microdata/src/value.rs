//! Dense value codes and attribute identifiers.

/// Index of an attribute within a [`crate::schema::Schema`].
pub type AttrId = usize;

/// A categorical value, stored as a dense code into the attribute's domain.
///
/// `u16` bounds every domain at 65,536 categories, which is far beyond any
/// attribute in the paper's workloads (the largest, `native-country` in the
/// Adult schema, has 41).
pub type Value = u16;

/// A named categorical domain: the ordered list of category labels.
///
/// The code of a label is its position in the list. Domains are immutable
/// once built; datasets index into them with [`Value`] codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    labels: Vec<String>,
}

impl Domain {
    /// Builds a domain from category labels. Labels must be unique.
    pub fn new<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let labels: Vec<String> = labels.into_iter().map(Into::into).collect();
        debug_assert!(
            {
                let mut seen = std::collections::HashSet::new();
                labels.iter().all(|l| seen.insert(l))
            },
            "domain labels must be unique"
        );
        assert!(
            labels.len() <= Value::MAX as usize + 1,
            "domain exceeds Value capacity"
        );
        Self { labels }
    }

    /// Builds an anonymous domain `v0..v{n-1}` of the given cardinality.
    pub fn anonymous(cardinality: usize) -> Self {
        Self::new((0..cardinality).map(|i| format!("v{i}")))
    }

    /// Number of categories.
    #[inline]
    pub fn cardinality(&self) -> usize {
        self.labels.len()
    }

    /// Label of the given code, if in range.
    #[inline]
    pub fn label(&self, code: Value) -> Option<&str> {
        self.labels.get(code as usize).map(String::as_str)
    }

    /// Code of the given label, if present (linear scan; domains are small).
    pub fn code(&self, label: &str) -> Option<Value> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|p| p as Value)
    }

    /// Iterates `(code, label)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Value, &str)> {
        self.labels
            .iter()
            .enumerate()
            .map(|(i, l)| (i as Value, l.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_roundtrip() {
        let d = Domain::new(["male", "female"]);
        assert_eq!(d.cardinality(), 2);
        assert_eq!(d.label(0), Some("male"));
        assert_eq!(d.label(1), Some("female"));
        assert_eq!(d.label(2), None);
        assert_eq!(d.code("female"), Some(1));
        assert_eq!(d.code("other"), None);
    }

    #[test]
    fn anonymous_domain_labels() {
        let d = Domain::anonymous(3);
        assert_eq!(d.cardinality(), 3);
        assert_eq!(d.label(2), Some("v2"));
    }

    #[test]
    fn domain_iter_order() {
        let d = Domain::new(["a", "b", "c"]);
        let collected: Vec<_> = d.iter().collect();
        assert_eq!(collected, vec![(0, "a"), (1, "b"), (2, "c")]);
    }
}
