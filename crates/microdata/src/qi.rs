//! Interning of distinct full-QI tuples into the `q1, q2, …` symbols of the
//! paper's abstract form (Figure 1(c)), and SA value aliases.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

use crate::dataset::Dataset;
use crate::error::MicrodataError;
use crate::value::Value;

/// Dense id of a distinct full-QI tuple (`q1, q2, …` in the paper).
pub type QiId = usize;

/// Dense id of a distinct SA value (`s1, s2, …` in the paper).
///
/// SA values are already dense codes in the SA domain, so `SaId == Value as
/// usize`; the alias exists for readability at API boundaries.
pub type SaId = usize;

/// The append-only symbol table behind [`QiInterner`]: tuple storage plus
/// the reverse map. Split out so interner clones — one per table epoch in a
/// live-table deployment — share it behind an [`Arc`] instead of re-hashing
/// every distinct tuple; it is only deep-copied when a *new* tuple is
/// observed on a shared interner.
///
/// The reverse map is derived state — `tuples` is ground truth — so it is
/// built lazily on first lookup. An interner deserialized from a snapshot
/// that only ever serves by id never pays for hashing the symbol table.
#[derive(Debug, Clone, Default)]
struct TupleTable {
    tuples: Vec<Vec<Value>>,
    lookup: OnceLock<HashMap<Vec<Value>, QiId>>,
}

impl TupleTable {
    /// The reverse map, built from `tuples` on first use.
    fn map(&self) -> &HashMap<Vec<Value>, QiId> {
        self.lookup.get_or_init(|| {
            self.tuples.iter().enumerate().map(|(i, t)| (t.clone(), i)).collect()
        })
    }

    /// Mutable access for [`QiInterner::observe`]; hydrates first so the
    /// insert lands in a complete map.
    fn map_mut(&mut self) -> &mut HashMap<Vec<Value>, QiId> {
        self.map();
        self.lookup.get_mut().expect("hydrated by map()")
    }
}

/// Interner mapping full-QI tuples to dense [`QiId`]s, with occurrence counts.
///
/// "If two people have the same QI value, their QI values will be denoted by
/// the same symbol" — the interner is exactly that symbol table.
///
/// Ids are **stable for the lifetime of the interner** (and any clone
/// lineage): [`QiInterner::retract`] can drive a tuple's count to zero, but
/// its id is never reused, so handles and estimates indexed by `QiId`
/// survive record deltas.
#[derive(Debug, Clone, Default)]
pub struct QiInterner {
    table: Arc<TupleTable>,
    counts: Vec<usize>,
    total: usize,
}

impl QiInterner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the interner from a dataset's QI projection, counting
    /// occurrences. Ids are assigned in first-appearance order, matching the
    /// paper's `q1, q2, …` numbering of Figure 1(c).
    pub fn from_dataset(data: &Dataset) -> Self {
        let qi_attrs = data.schema().qi_attrs();
        let mut interner = Self::new();
        let mut buf = Vec::with_capacity(qi_attrs.len());
        for r in data.records() {
            r.project_into(qi_attrs, &mut buf);
            interner.observe(&buf);
        }
        interner
    }

    /// Reassembles an interner from its persisted parts: the tuple storage
    /// in id order and the per-id occurrence counts. The total and the
    /// reverse lookup map are derived (the latter lazily, on the first
    /// [`QiInterner::lookup`] or [`QiInterner::observe`]).
    ///
    /// # Panics
    /// If `tuples` and `counts` disagree on the number of distinct ids —
    /// callers decoding untrusted bytes must validate lengths first.
    pub fn from_parts(tuples: Vec<Vec<Value>>, counts: Vec<usize>) -> Self {
        assert_eq!(tuples.len(), counts.len(), "one count per interned tuple");
        let total = counts.iter().sum();
        QiInterner {
            table: Arc::new(TupleTable { tuples, lookup: OnceLock::new() }),
            counts,
            total,
        }
    }

    /// Interns one tuple occurrence, returning its id.
    pub fn observe(&mut self, tuple: &[Value]) -> QiId {
        self.total += 1;
        if let Some(&id) = self.table.map().get(tuple) {
            self.counts[id] += 1;
            return id;
        }
        // New tuple: copy-on-write the shared storage (cheap when this
        // interner is the sole owner, a full copy only when an epoch clone
        // actually grows the symbol table).
        let table = Arc::make_mut(&mut self.table);
        let id = table.tuples.len();
        table.map_mut().insert(tuple.to_vec(), id);
        table.tuples.push(tuple.to_vec());
        self.counts.push(1);
        id
    }

    /// Removes one occurrence of `id` (a record retraction). The tuple stays
    /// interned — ids are never reused — with its count decremented.
    ///
    /// # Errors
    /// [`MicrodataError::NoOccurrences`] if the tuple has no occurrences
    /// left (or `id` was never issued).
    pub fn retract(&mut self, id: QiId) -> Result<(), MicrodataError> {
        if self.counts.get(id).copied().unwrap_or(0) == 0 {
            return Err(MicrodataError::NoOccurrences { id });
        }
        self.counts[id] -= 1;
        self.total -= 1;
        Ok(())
    }

    /// Looks up an already-interned tuple.
    pub fn lookup(&self, tuple: &[Value]) -> Option<QiId> {
        self.table.map().get(tuple).copied()
    }

    /// The tuple behind `id`.
    pub fn tuple(&self, id: QiId) -> &[Value] {
        &self.table.tuples[id]
    }

    /// Number of distinct tuples ever observed (retracted-to-zero tuples
    /// keep their slot — ids are stable).
    pub fn distinct(&self) -> usize {
        self.table.tuples.len()
    }

    /// Occurrences of `id` across all observed records.
    pub fn count(&self, id: QiId) -> usize {
        self.counts[id]
    }

    /// Total observed records.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Empirical `P(q)` — the sample distribution the paper uses to
    /// approximate the population QI distribution (Section 4.1).
    pub fn probability(&self, id: QiId) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.counts[id] as f64 / self.total as f64
        }
    }

    /// Iterates `(id, tuple, count)`.
    pub fn iter(&self) -> impl Iterator<Item = (QiId, &[Value], usize)> {
        self.table
            .tuples
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t.as_slice(), self.counts[i]))
    }
}

/// Projects every record of `data` onto `(QiId, sa_value)` pairs, building
/// the interner along the way. This is the canonical preprocessing step
/// before bucketization.
pub fn project_qi_sa(data: &Dataset) -> Result<(QiInterner, Vec<(QiId, Value)>), MicrodataError> {
    let sa = data.schema().sensitive()?;
    let qi_attrs = data.schema().qi_attrs();
    let mut interner = QiInterner::new();
    let mut pairs = Vec::with_capacity(data.len());
    let mut buf = Vec::with_capacity(qi_attrs.len());
    for r in data.records() {
        r.project_into(qi_attrs, &mut buf);
        let q = interner.observe(&buf);
        pairs.push((q, r.get(sa)));
    }
    Ok((interner, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::figure1_dataset;

    #[test]
    fn figure1_interning_matches_paper() {
        let d = figure1_dataset();
        let (interner, pairs) = project_qi_sa(&d).unwrap();
        // Figure 1(c): six distinct QI symbols q1..q6.
        assert_eq!(interner.distinct(), 6);
        assert_eq!(pairs.len(), 10);
        // q1 = {male, college} appears three times.
        let q1 = interner.lookup(&[0, 0]).unwrap();
        assert_eq!(q1, 0, "first-appearance order: Allen defines q1");
        assert_eq!(interner.count(q1), 3);
        assert!((interner.probability(q1) - 0.3).abs() < 1e-12);
        // q3 = {male, high school} appears twice (David, Frank).
        let q3 = interner.lookup(&[0, 1]).unwrap();
        assert_eq!(interner.count(q3), 2);
    }

    #[test]
    fn observe_is_idempotent_on_ids() {
        let mut i = QiInterner::new();
        let a = i.observe(&[1, 2]);
        let b = i.observe(&[3, 4]);
        let a2 = i.observe(&[1, 2]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.total(), 3);
        assert_eq!(i.count(a), 2);
        assert_eq!(i.tuple(b), &[3, 4]);
    }

    #[test]
    fn empty_interner() {
        let i = QiInterner::new();
        assert_eq!(i.distinct(), 0);
        assert_eq!(i.total(), 0);
        assert_eq!(i.lookup(&[0]), None);
    }

    /// Retraction keeps ids stable: the count drops (possibly to zero), the
    /// tuple stays interned, and re-observing it revives the same id.
    #[test]
    fn retract_keeps_ids_stable() {
        let mut i = QiInterner::new();
        let a = i.observe(&[1, 2]);
        let b = i.observe(&[3, 4]);
        i.retract(a).unwrap();
        assert_eq!(i.count(a), 0);
        assert_eq!(i.total(), 1);
        assert_eq!(i.distinct(), 2, "retracted tuples keep their slot");
        assert_eq!(i.lookup(&[1, 2]), Some(a));
        assert!(i.retract(a).is_err(), "cannot retract below zero");
        assert_eq!(i.observe(&[1, 2]), a, "revived under the same id");
        let _ = b;
    }

    /// Epoch clones share the tuple table until one of them observes a new
    /// tuple; counts are always private to each clone.
    #[test]
    fn clones_share_storage_copy_on_write() {
        let mut base = QiInterner::new();
        base.observe(&[1]);
        base.observe(&[2]);
        let mut clone = base.clone();
        assert!(Arc::ptr_eq(&base.table, &clone.table));
        // Observing an existing tuple touches only counts: still shared.
        clone.observe(&[1]);
        assert!(Arc::ptr_eq(&base.table, &clone.table));
        assert_eq!(base.count(0), 1);
        assert_eq!(clone.count(0), 2);
        // A new tuple forces the copy; the base is unaffected.
        let c = clone.observe(&[9]);
        assert!(!Arc::ptr_eq(&base.table, &clone.table));
        assert_eq!(base.distinct(), 2);
        assert_eq!(clone.distinct(), 3);
        assert_eq!(clone.tuple(c), &[9]);
    }

    /// `from_parts` reproduces an interner observably identical to the one
    /// it was decomposed from, and keeps growing correctly afterwards (the
    /// lazily-derived reverse map must agree with the tuple storage).
    #[test]
    fn from_parts_is_equivalent_and_growable() {
        let mut orig = QiInterner::new();
        orig.observe(&[1, 2]);
        orig.observe(&[3, 4]);
        orig.observe(&[1, 2]);
        orig.retract(1).unwrap();

        let tuples: Vec<Vec<Value>> = (0..orig.distinct()).map(|i| orig.tuple(i).to_vec()).collect();
        let counts: Vec<usize> = (0..orig.distinct()).map(|i| orig.count(i)).collect();
        let mut rebuilt = QiInterner::from_parts(tuples, counts);

        assert_eq!(rebuilt.distinct(), orig.distinct());
        assert_eq!(rebuilt.total(), orig.total());
        assert_eq!(rebuilt.lookup(&[1, 2]), Some(0));
        assert_eq!(rebuilt.lookup(&[3, 4]), Some(1));
        assert_eq!(rebuilt.lookup(&[9, 9]), None);
        assert_eq!(rebuilt.count(1), 0, "retracted-to-zero counts persist");
        assert_eq!(rebuilt.observe(&[1, 2]), 0, "revives the persisted id");
        assert_eq!(rebuilt.observe(&[7, 7]), 2, "fresh tuples extend the id space");
    }
}
