//! Attribute schemas: names, domains, and publication roles.

use crate::error::MicrodataError;
use crate::value::{AttrId, Domain};

/// The role an attribute plays in privacy-preserving publication.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttributeRole {
    /// Identity information (names, SSNs). Removed before publication.
    Identifier,
    /// Quasi-identifier: published in the clear, usable for linking attacks.
    QuasiIdentifier,
    /// Sensitive attribute: the private value the adversary wants to learn.
    Sensitive,
}

/// One attribute: a name, a categorical [`Domain`], and a role.
#[derive(Debug, Clone)]
pub struct Attribute {
    name: String,
    domain: Domain,
    role: AttributeRole,
}

impl Attribute {
    /// Creates an attribute.
    pub fn new(name: impl Into<String>, domain: Domain, role: AttributeRole) -> Self {
        Self { name: name.into(), domain, role }
    }

    /// Attribute name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Categorical domain.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Publication role.
    pub fn role(&self) -> AttributeRole {
        self.role
    }
}

/// An ordered collection of attributes describing a microdata table.
///
/// The paper's model has a set of QI attributes and a *single* SA attribute;
/// [`Schema::sensitive`] enforces that shape. Identifier attributes may be
/// present in the original data and are dropped by the anonymizer.
#[derive(Debug, Clone)]
pub struct Schema {
    attributes: Vec<Attribute>,
    qi: Vec<AttrId>,
    sensitive: Option<AttrId>,
}

impl Schema {
    /// Builds a schema, validating the single-SA invariant.
    pub fn new(attributes: Vec<Attribute>) -> Result<Self, MicrodataError> {
        let qi: Vec<AttrId> = attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == AttributeRole::QuasiIdentifier)
            .map(|(i, _)| i)
            .collect();
        let sa: Vec<AttrId> = attributes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.role == AttributeRole::Sensitive)
            .map(|(i, _)| i)
            .collect();
        let sensitive = match sa.len() {
            0 => None,
            1 => Some(sa[0]),
            _ => return Err(MicrodataError::MultipleSensitiveAttributes),
        };
        Ok(Self { attributes, qi, sensitive })
    }

    /// Number of attributes (all roles).
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// All attributes in declaration order.
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// The attribute at `id`.
    pub fn attribute(&self, id: AttrId) -> &Attribute {
        &self.attributes[id]
    }

    /// Ids of the quasi-identifier attributes, in declaration order.
    pub fn qi_attrs(&self) -> &[AttrId] {
        &self.qi
    }

    /// Id of the sensitive attribute.
    pub fn sensitive(&self) -> Result<AttrId, MicrodataError> {
        self.sensitive.ok_or(MicrodataError::NoSensitiveAttribute)
    }

    /// Looks up an attribute id by name.
    pub fn attr_by_name(&self, name: &str) -> Result<AttrId, MicrodataError> {
        self.attributes
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| MicrodataError::UnknownAttribute(name.to_string()))
    }

    /// Cardinality of the SA domain.
    pub fn sa_cardinality(&self) -> Result<usize, MicrodataError> {
        Ok(self.attribute(self.sensitive()?).domain().cardinality())
    }
}

/// Convenience builder for schemas used across tests and examples.
#[derive(Debug, Default)]
pub struct SchemaBuilder {
    attributes: Vec<Attribute>,
}

impl SchemaBuilder {
    /// Starts an empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a quasi-identifier attribute.
    pub fn qi(mut self, name: &str, domain: Domain) -> Self {
        self.attributes
            .push(Attribute::new(name, domain, AttributeRole::QuasiIdentifier));
        self
    }

    /// Adds the sensitive attribute.
    pub fn sensitive(mut self, name: &str, domain: Domain) -> Self {
        self.attributes
            .push(Attribute::new(name, domain, AttributeRole::Sensitive));
        self
    }

    /// Adds an identifier attribute.
    pub fn identifier(mut self, name: &str, domain: Domain) -> Self {
        self.attributes
            .push(Attribute::new(name, domain, AttributeRole::Identifier));
        self
    }

    /// Finalises the schema.
    pub fn build(self) -> Result<Schema, MicrodataError> {
        Schema::new(self.attributes)
    }
}

/// The paper's running-example schema (Figure 1): `Gender`, `Degree` QI and
/// `Disease` SA.
pub fn paper_example_schema() -> Schema {
    SchemaBuilder::new()
        .qi("gender", Domain::new(["male", "female"]))
        .qi(
            "degree",
            Domain::new(["college", "high school", "junior", "graduate"]),
        )
        .sensitive(
            "disease",
            Domain::new([
                "flu",
                "pneumonia",
                "breast cancer",
                "hiv",
                "lung cancer",
            ]),
        )
        .build()
        .expect("paper example schema is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assigns_roles_and_indices() {
        let s = paper_example_schema();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.qi_attrs(), &[0, 1]);
        assert_eq!(s.sensitive().unwrap(), 2);
        assert_eq!(s.sa_cardinality().unwrap(), 5);
        assert_eq!(s.attr_by_name("degree").unwrap(), 1);
        assert!(matches!(
            s.attr_by_name("zip"),
            Err(MicrodataError::UnknownAttribute(_))
        ));
    }

    #[test]
    fn multiple_sensitive_rejected() {
        let r = SchemaBuilder::new()
            .sensitive("a", Domain::anonymous(2))
            .sensitive("b", Domain::anonymous(2))
            .build();
        assert!(matches!(r, Err(MicrodataError::MultipleSensitiveAttributes)));
    }

    #[test]
    fn missing_sensitive_is_queryable() {
        let s = SchemaBuilder::new()
            .qi("g", Domain::anonymous(2))
            .build()
            .unwrap();
        assert!(matches!(s.sensitive(), Err(MicrodataError::NoSensitiveAttribute)));
    }

    #[test]
    fn identifier_not_counted_as_qi() {
        let s = SchemaBuilder::new()
            .identifier("name", Domain::anonymous(10))
            .qi("g", Domain::anonymous(2))
            .sensitive("d", Domain::anonymous(3))
            .build()
            .unwrap();
        assert_eq!(s.qi_attrs(), &[1]);
    }
}
