//! Error type for microdata construction and access.

use std::fmt;

/// Errors raised while building or querying datasets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicrodataError {
    /// A record's arity does not match the schema's attribute count.
    ArityMismatch {
        /// Number of values in the offending record.
        got: usize,
        /// Number of attributes in the schema.
        expected: usize,
    },
    /// A value code is outside its attribute's domain.
    ValueOutOfDomain {
        /// Attribute position.
        attr: usize,
        /// Offending code.
        code: u16,
        /// Domain cardinality.
        cardinality: usize,
    },
    /// The schema has no attribute with the requested name.
    UnknownAttribute(String),
    /// The schema declares no sensitive attribute where one is required.
    NoSensitiveAttribute,
    /// The schema declares more than one sensitive attribute.
    ///
    /// The paper (and this reproduction) model a single SA column; multiple
    /// SA columns must be combined into a product domain by the caller.
    MultipleSensitiveAttributes,
    /// A retraction targeted an interned symbol with no occurrences left.
    NoOccurrences {
        /// The offending symbol id.
        id: usize,
    },
}

impl fmt::Display for MicrodataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ArityMismatch { got, expected } => {
                write!(f, "record has {got} values but schema has {expected} attributes")
            }
            Self::ValueOutOfDomain { attr, code, cardinality } => write!(
                f,
                "value code {code} out of domain for attribute {attr} (cardinality {cardinality})"
            ),
            Self::UnknownAttribute(name) => write!(f, "unknown attribute `{name}`"),
            Self::NoSensitiveAttribute => write!(f, "schema declares no sensitive attribute"),
            Self::MultipleSensitiveAttributes => {
                write!(f, "schema declares multiple sensitive attributes")
            }
            Self::NoOccurrences { id } => {
                write!(f, "symbol {id} has no occurrences left to retract")
            }
        }
    }
}

impl std::error::Error for MicrodataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = MicrodataError::ArityMismatch { got: 3, expected: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
        let e = MicrodataError::ValueOutOfDomain { attr: 1, code: 9, cardinality: 4 };
        assert!(e.to_string().contains('9'));
        let e = MicrodataError::UnknownAttribute("zip".into());
        assert!(e.to_string().contains("zip"));
    }
}
