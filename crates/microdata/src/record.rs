//! Record views over a dataset's flat storage.

use crate::value::{AttrId, Value};

/// A borrowed view of one record's values (one `Value` per attribute, in
/// schema order).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordRef<'a> {
    values: &'a [Value],
}

impl<'a> RecordRef<'a> {
    /// Wraps a value slice. Callers guarantee it matches the schema arity.
    #[inline]
    pub(crate) fn new(values: &'a [Value]) -> Self {
        Self { values }
    }

    /// Value of attribute `attr`.
    #[inline]
    pub fn get(&self, attr: AttrId) -> Value {
        self.values[attr]
    }

    /// All values in schema order.
    #[inline]
    pub fn values(&self) -> &'a [Value] {
        self.values
    }

    /// Projects the record onto the given attribute ids, writing into `out`.
    ///
    /// Reusing an output buffer keeps the per-record projection done millions
    /// of times during mining allocation-free.
    #[inline]
    pub fn project_into(&self, attrs: &[AttrId], out: &mut Vec<Value>) {
        out.clear();
        out.extend(attrs.iter().map(|&a| self.values[a]));
    }

    /// Projects the record onto the given attribute ids, allocating.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        let mut out = Vec::with_capacity(attrs.len());
        self.project_into(attrs, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection() {
        let vals = [3u16, 1, 4, 1, 5];
        let r = RecordRef::new(&vals);
        assert_eq!(r.get(2), 4);
        assert_eq!(r.project(&[0, 2, 4]), vec![3, 4, 5]);
        let mut buf = Vec::new();
        r.project_into(&[4, 0], &mut buf);
        assert_eq!(buf, vec![5, 3]);
        r.project_into(&[1], &mut buf);
        assert_eq!(buf, vec![1]); // buffer reuse clears prior content
    }
}
