//! Thread-sweep benchmark of the parallel component solver.
//!
//! Section 5.5 decomposes the Adult workload (14,210 records, 2,842
//! buckets) into many small independent maxent systems; the engine solves
//! them on a `pm-parallel` worker pool. This module measures the wall-time
//! trajectory over a thread sweep and emits one machine-readable JSON
//! report (`BENCH_parallel.json` by convention) so the perf history of the
//! repo has comparable data points: wall time, component structure,
//! threads, speedup — and a paranoid bit-identity check of every run
//! against the single-thread baseline.

use std::time::{Duration, Instant};

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::KnowledgeBase;

use crate::pipeline::Scale;

/// Configuration of one benchmark sweep.
#[derive(Debug, Clone)]
pub struct ParallelBenchConfig {
    /// Workload scale (record count).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Thread counts to sweep (a `threads = 1` baseline always runs first).
    pub threads: Vec<usize>,
    /// Exact antecedent arity of the mined knowledge (the paper's `T`).
    /// Specific (high-arity) antecedents touch few buckets each, which is
    /// what makes the Section 5.5 decomposition fragment into many
    /// independent components; arity-1 rules span ~every bucket and fuse
    /// the system into one giant component with nothing to parallelise.
    pub arity: usize,
    /// Top-(K+, K−) rule budget supplying the background knowledge.
    pub k_positive: usize,
    /// Negative-rule budget.
    pub k_negative: usize,
    /// Batching cost floors to sweep (`EngineConfig::batch_min_cost`). The
    /// bit-identity anchor — and the speedup denominator — is always the
    /// unbatched (`batch_cost = 0`) single-thread run; the sweep is
    /// `threads × batch_costs`.
    pub batch_costs: Vec<u64>,
}

impl Default for ParallelBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 1,
            threads: vec![1, 2, 4],
            arity: 4,
            k_positive: 50,
            k_negative: 50,
            batch_costs: vec![0, EngineConfig::default().batch_min_cost],
        }
    }
}

/// The generated workload a sweep runs against.
struct BenchWorkload {
    records: usize,
    table: PublishedTable,
    kb: KnowledgeBase,
    rules: usize,
}

fn build_workload(cfg: &ParallelBenchConfig) -> BenchWorkload {
    let data = AdultGenerator::new(AdultGeneratorConfig {
        records: cfg.scale.records(),
        seed: cfg.seed,
    })
    .generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at bench scale");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![cfg.arity] })
        .mine(&data);
    let picked = rules.top_k(cfg.k_positive, cfg.k_negative);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema())
        .expect("mined rules are valid knowledge");
    BenchWorkload { records: data.len(), table, kb, rules: picked.len() }
}

/// One measured run of the sweep.
#[derive(Debug, Clone)]
pub struct ParallelRun {
    /// Worker threads requested (`EngineConfig::threads`).
    pub threads: usize,
    /// Batching cost floor (`EngineConfig::batch_min_cost`; 0 = unbatched).
    pub batch_cost: u64,
    /// Wall time of the full `estimate` call.
    pub wall: Duration,
    /// Summed per-component solver time (exceeds `wall` when parallel).
    pub solver: Duration,
    /// `baseline wall / this wall`.
    pub speedup: f64,
    /// `this solver Σ / baseline solver Σ` — above 1 the threads *added*
    /// solver work (contention / oversubscription), the honest explanation
    /// when a threaded run's wall time regresses.
    pub solver_ratio: f64,
    /// Whether the estimate is bit-identical to the 1-thread baseline.
    pub identical_to_baseline: bool,
}

impl ParallelRun {
    /// Whether this run regressed against the baseline: slower wall clock,
    /// or markedly (>10%) more total solver work than one thread did.
    #[must_use]
    pub fn regressed(&self) -> bool {
        self.threads > 1 && (self.speedup < 1.0 || self.solver_ratio > 1.10)
    }
}

/// The full report — everything `BENCH_parallel.json` records.
#[derive(Debug, Clone)]
pub struct ParallelBenchReport {
    /// Workload scale label (`"quick"` / `"full"`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Records in the workload.
    pub records: usize,
    /// Buckets in the publication.
    pub buckets: usize,
    /// Antecedent arity of the mined knowledge.
    pub arity: usize,
    /// Background-knowledge rules applied (K+ + K−).
    pub rules: usize,
    /// Independent connected components.
    pub components: usize,
    /// Components solved closed-form (irrelevant, Theorem 5).
    pub irrelevant_components: usize,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// Baseline (1-thread) wall time.
    pub baseline_wall: Duration,
    /// Baseline (1-thread) summed per-component solver time.
    pub baseline_solver: Duration,
    /// The sweep, in the order run.
    pub runs: Vec<ParallelRun>,
}

fn bench_engine_config(threads: usize, batch_cost: u64) -> EngineConfig {
    // Mirrors the figure experiments: mined knowledge is always feasible
    // but boundary-heavy systems converge asymptotically, so the residual
    // gate is left open (see `crate::figures::engine_config`).
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(threads)
        .batch_min_cost(batch_cost)
        .build()
}

fn estimate(w: &BenchWorkload, threads: usize, batch_cost: u64) -> (Estimate, Duration) {
    let engine = Engine::new(bench_engine_config(threads, batch_cost));
    let start = Instant::now();
    let est = engine.estimate(&w.table, &w.kb).expect("mined knowledge is feasible");
    (est, start.elapsed())
}

/// Runs the sweep: an unbatched 1-thread baseline, then every configured
/// `threads × batch_costs` combination.
pub fn run(cfg: &ParallelBenchConfig) -> ParallelBenchReport {
    let w = build_workload(cfg);

    // Warmup: page the workload in and stabilise allocator/caches so the
    // measured baseline isn't charged for first-touch costs.
    let _ = estimate(&w, 1, 0);
    let (baseline, baseline_wall) = estimate(&w, 1, 0);
    let baseline_solver = baseline.stats.solver_elapsed();
    let mut report = ParallelBenchReport {
        scale: match cfg.scale {
            Scale::Full => "full".to_string(),
            Scale::Quick => "quick".to_string(),
        },
        seed: cfg.seed,
        records: w.records,
        buckets: w.table.num_buckets(),
        arity: cfg.arity,
        rules: w.rules,
        components: baseline.stats.num_components,
        irrelevant_components: baseline.stats.num_irrelevant,
        available_parallelism: pm_parallel::available_parallelism(),
        baseline_wall,
        baseline_solver,
        runs: Vec::new(),
    };

    for &threads in &cfg.threads {
        for &batch_cost in &cfg.batch_costs {
            let (est, wall) = estimate(&w, threads, batch_cost);
            let solver = est.stats.solver_elapsed();
            report.runs.push(ParallelRun {
                threads,
                batch_cost,
                wall,
                solver,
                speedup: baseline_wall.as_secs_f64() / wall.as_secs_f64(),
                solver_ratio: if baseline_solver.as_secs_f64() > 0.0 {
                    solver.as_secs_f64() / baseline_solver.as_secs_f64()
                } else {
                    1.0
                },
                identical_to_baseline: est.term_values() == baseline.term_values(),
            });
        }
    }
    report
}

impl ParallelBenchReport {
    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"parallel_components\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"records\": {},\n", self.records));
        s.push_str(&format!("  \"buckets\": {},\n", self.buckets));
        s.push_str(&format!("  \"arity\": {},\n", self.arity));
        s.push_str(&format!("  \"rules\": {},\n", self.rules));
        s.push_str(&format!("  \"components\": {},\n", self.components));
        s.push_str(&format!(
            "  \"irrelevant_components\": {},\n",
            self.irrelevant_components
        ));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!(
            "  \"baseline_wall_seconds\": {:.6},\n",
            self.baseline_wall.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"baseline_solver_seconds\": {:.6},\n",
            self.baseline_solver.as_secs_f64()
        ));
        s.push_str("  \"runs\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"threads\": {}, \"batch_cost\": {}, \
                 \"wall_seconds\": {:.6}, \
                 \"solver_seconds\": {:.6}, \"speedup\": {:.3}, \
                 \"solver_ratio\": {:.3}, \"regressed\": {}, \
                 \"identical_to_baseline\": {}}}{}\n",
                r.threads,
                r.batch_cost,
                r.wall.as_secs_f64(),
                r.solver.as_secs_f64(),
                r.speedup,
                r.solver_ratio,
                r.regressed(),
                r.identical_to_baseline,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable sweep table (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "parallel component solver — {} scale, seed {}: {} records, \
             {} buckets, {} arity-{} rules",
            self.scale, self.seed, self.records, self.buckets, self.rules, self.arity
        );
        println!(
            "{} components ({} irrelevant → closed form), {} cores available",
            self.components, self.irrelevant_components, self.available_parallelism
        );
        println!(
            "{:>8}  {:>10}  {:>12}  {:>14}  {:>8}  {:>10}  {:>10}",
            "threads", "batch", "wall (s)", "solver Σ (s)", "speedup", "solver ×", "identical"
        );
        for r in &self.runs {
            println!(
                "{:>8}  {:>10}  {:>12.4}  {:>14.4}  {:>7.2}x  {:>9.2}x  {:>10}",
                r.threads,
                r.batch_cost,
                r.wall.as_secs_f64(),
                r.solver.as_secs_f64(),
                r.speedup,
                r.solver_ratio,
                r.identical_to_baseline,
            );
        }
        // Regressions are reported loudly, not buried in the table: a
        // threaded run that went *slower* than one thread (or burned >10%
        // more total solver time) is exactly the result this bench exists
        // to catch.
        for r in self.runs.iter().filter(|r| r.regressed()) {
            println!(
                "REGRESSION: {} threads (batch cost {}) ran at {:.2}x baseline \
                 wall and spent {:.2}x the baseline solver time (host has {} \
                 core(s))",
                r.threads,
                r.batch_cost,
                r.speedup,
                r.solver_ratio,
                self.available_parallelism,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ParallelBenchReport {
        ParallelBenchReport {
            scale: "quick".into(),
            seed: 7,
            records: 100,
            buckets: 20,
            arity: 4,
            rules: 10,
            components: 5,
            irrelevant_components: 2,
            available_parallelism: 8,
            baseline_wall: Duration::from_millis(500),
            baseline_solver: Duration::from_millis(450),
            runs: vec![
                ParallelRun {
                    threads: 1,
                    batch_cost: 0,
                    wall: Duration::from_millis(500),
                    solver: Duration::from_millis(450),
                    speedup: 1.0,
                    solver_ratio: 1.0,
                    identical_to_baseline: true,
                },
                ParallelRun {
                    threads: 2,
                    batch_cost: 1024,
                    wall: Duration::from_millis(260),
                    solver: Duration::from_millis(450),
                    speedup: 500.0 / 260.0,
                    solver_ratio: 1.0,
                    identical_to_baseline: true,
                },
            ],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"parallel_components\""));
        assert!(j.contains("\"buckets\": 20"));
        assert!(j.contains("\"baseline_wall_seconds\": 0.500000"));
        assert!(j.contains("\"baseline_solver_seconds\": 0.450000"));
        assert!(j.contains("\"threads\": 2"));
        assert!(j.contains("\"batch_cost\": 0"));
        assert!(j.contains("\"batch_cost\": 1024"));
        assert!(j.contains("\"solver_ratio\": 1.000"));
        assert!(j.contains("\"regressed\": false"));
        assert!(j.contains("\"identical_to_baseline\": true"));
        // Exactly one trailing comma between the two runs.
        assert_eq!(j.matches("},\n").count(), 1);
    }

    #[test]
    fn regression_flags_slow_or_oversubscribed_runs() {
        let healthy = ParallelRun {
            threads: 2,
            batch_cost: 1024,
            wall: Duration::from_millis(260),
            solver: Duration::from_millis(450),
            speedup: 1.9,
            solver_ratio: 1.0,
            identical_to_baseline: true,
        };
        assert!(!healthy.regressed());
        // The committed-JSON embarrassment this check exists for: 2 threads
        // slower than 1, solver time doubled.
        let slower = ParallelRun { speedup: 0.92, solver_ratio: 2.0, ..healthy.clone() };
        assert!(slower.regressed());
        let oversubscribed = ParallelRun { solver_ratio: 1.5, ..healthy.clone() };
        assert!(oversubscribed.regressed());
        // The 1-thread baseline never flags itself.
        let baseline = ParallelRun { threads: 1, speedup: 0.92, ..healthy };
        assert!(!baseline.regressed());
    }

    #[test]
    fn table_print_does_not_panic() {
        tiny_report().print_table();
    }
}
