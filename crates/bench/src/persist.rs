//! Persistence benchmark: cold snapshot load + WAL replay vs rebuilding
//! the artifact from the published table.
//!
//! The persist layer claims that a restarted server which finds a
//! `snapshot.pmx` on disk gets back to serving far faster than one that
//! recompiles the `CompiledTable` from scratch — the ISSUE's bar is ≥ 10×
//! at Adult scale, the gate lives in the `persist_bench` binary. This
//! module measures the full story:
//!
//! 1. **Rebuild cost**: median wall time of `CompiledTable::build` over the
//!    publication — what every restart paid before persistence existed.
//! 2. **Cold-load cost**: median wall time of `CompiledTable::load` on the
//!    saved snapshot (header + every section checksum verified eagerly; the
//!    heavy sections hydrate on first use). Because the load itself defers
//!    materialization, the sweep also times **first estimate** — the first
//!    `baseline_estimate()` on a fresh load, which pays hydration plus
//!    assembly — so `cold_load + first_estimate` is the honest
//!    restart-to-first-answer cost.
//! 3. **WAL replay**: a journal of single-record epochs is written, then
//!    `recover` (load + replay to the committed tip) is timed, yielding a
//!    per-epoch replay cost.
//!
//! The speedup claim is only meaningful if the recovered bits are the
//! served bits, so the run always bit-compares the loaded artifact against
//! the built one and the recovered artifact against the live epoch chain.
//!
//! One machine-readable JSON report (`BENCH_persist.json` by convention)
//! records it all.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::persist::{recover, EpochWal, SNAPSHOT_FILE, WAL_FILE};

use crate::pipeline::Scale;

/// Configuration of one persistence sweep.
#[derive(Debug, Clone)]
pub struct PersistBenchConfig {
    /// Workload scale (record count).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Timing repeats for the build / load / recover medians.
    pub repeats: usize,
    /// Single-record epochs journaled into the WAL and replayed.
    pub epochs: usize,
    /// Engine worker threads for the builds and replays.
    pub threads: usize,
}

impl Default for PersistBenchConfig {
    fn default() -> Self {
        Self { scale: Scale::Quick, seed: 1, repeats: 3, epochs: 6, threads: 1 }
    }
}

fn engine_config(threads: usize) -> EngineConfig {
    // Mirrors the other benches: mined knowledge is always feasible but
    // boundary-heavy systems converge asymptotically, so the residual gate
    // is left open.
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(threads)
        .build()
}

/// Deterministically picks the `i`-th single-record delta from the current
/// table, rotating insert / retract / move over records drawn from the
/// table's own multisets (same scheme as the table-delta bench).
fn pick_delta(table: &PublishedTable, i: usize) -> TableDelta {
    let m = table.num_buckets();
    let b = (i * 379 + 17) % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[(i * 53) % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[(i * 31) % bucket.distinct_sa()].0;
    let tuple = table.interner().tuple(q).to_vec();
    match i % 3 {
        0 => TableDelta::new().insert(tuple, s, (b + 1) % m),
        1 => TableDelta::new().retract(tuple, s, b),
        _ => TableDelta::new().move_record(tuple, s, b, (b + 1) % m),
    }
}

fn median(mut times: Vec<Duration>) -> Duration {
    times.sort();
    times[times.len() / 2]
}

/// The full report — everything `BENCH_persist.json` records.
#[derive(Debug, Clone)]
pub struct PersistBenchReport {
    /// Workload scale label (`"quick"` / `"full"`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Records in the workload (at epoch 0).
    pub records: usize,
    /// Buckets in the publication.
    pub buckets: usize,
    /// Engine worker threads.
    pub threads: usize,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// Timing repeats behind each median.
    pub repeats: usize,
    /// Median wall time of `CompiledTable::build` — the no-persistence
    /// restart cost.
    pub build: Duration,
    /// Wall time of `CompiledTable::save`.
    pub save: Duration,
    /// Snapshot size on disk.
    pub snapshot_bytes: u64,
    /// Median wall time of `CompiledTable::load` on the snapshot.
    pub cold_load: Duration,
    /// Median wall time of the first `baseline_estimate()` on a fresh
    /// load — hydration of the deferred sections plus estimate assembly.
    pub first_estimate: Duration,
    /// `build / cold_load` — the persistence payoff.
    pub load_speedup: f64,
    /// Epochs journaled into the WAL and replayed by `recover`.
    pub epochs: usize,
    /// WAL size on disk after journaling every epoch.
    pub wal_bytes: u64,
    /// Median wall time of `recover` (snapshot load + full WAL replay).
    pub recover: Duration,
    /// `(recover - cold_load) / epochs` — marginal cost of recovery over a
    /// bare load, per epoch (includes the first-use hydration the replay
    /// triggers, so it overstates the pure per-record replay slightly).
    pub replay_per_epoch: Duration,
    /// Whether the loaded artifact reproduced the built artifact's bits AND
    /// the recovered artifact reproduced the live epoch chain's bits.
    pub identical: bool,
}

impl PersistBenchReport {
    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"persist\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"records\": {},\n", self.records));
        s.push_str(&format!("  \"buckets\": {},\n", self.buckets));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"repeats\": {},\n", self.repeats));
        s.push_str(&format!(
            "  \"build_seconds\": {:.6},\n",
            self.build.as_secs_f64()
        ));
        s.push_str(&format!("  \"save_seconds\": {:.6},\n", self.save.as_secs_f64()));
        s.push_str(&format!("  \"snapshot_bytes\": {},\n", self.snapshot_bytes));
        s.push_str(&format!(
            "  \"cold_load_seconds\": {:.6},\n",
            self.cold_load.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"first_estimate_seconds\": {:.6},\n",
            self.first_estimate.as_secs_f64()
        ));
        s.push_str(&format!("  \"load_speedup\": {:.1},\n", self.load_speedup));
        s.push_str(&format!("  \"epochs\": {},\n", self.epochs));
        s.push_str(&format!("  \"wal_bytes\": {},\n", self.wal_bytes));
        s.push_str(&format!(
            "  \"recover_seconds\": {:.6},\n",
            self.recover.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"replay_per_epoch_seconds\": {:.6},\n",
            self.replay_per_epoch.as_secs_f64()
        ));
        s.push_str(&format!("  \"identical\": {}\n", self.identical));
        s.push_str("}\n");
        s
    }

    /// Human-readable table (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "persist — {} scale, seed {}: {} records, {} buckets, {} thread(s), \
             medians over {} repeat(s)",
            self.scale, self.seed, self.records, self.buckets, self.threads, self.repeats
        );
        println!(
            "CompiledTable::build: {:.3} ms | save: {:.3} ms ({} bytes) | \
             cold load: {:.3} ms",
            self.build.as_secs_f64() * 1e3,
            self.save.as_secs_f64() * 1e3,
            self.snapshot_bytes,
            self.cold_load.as_secs_f64() * 1e3,
        );
        println!(
            "first estimate after a fresh load (hydrate + assemble): {:.3} ms",
            self.first_estimate.as_secs_f64() * 1e3
        );
        println!("load speedup (build / cold load): {:.1}x", self.load_speedup);
        println!(
            "recover over {} WAL epoch(s) ({} bytes): {:.3} ms total, \
             {:.3} ms marginal per epoch",
            self.epochs,
            self.wal_bytes,
            self.recover.as_secs_f64() * 1e3,
            self.replay_per_epoch.as_secs_f64() * 1e3,
        );
        println!("bit-identical (load and recover): {}", self.identical);
    }
}

/// Runs the sweep: build (median), save, cold-load (median), journal a
/// delta tape, recover (median), bit-compare everything.
pub fn run(cfg: &PersistBenchConfig) -> PersistBenchReport {
    let data = AdultGenerator::new(AdultGeneratorConfig {
        records: cfg.scale.records(),
        seed: cfg.seed,
    })
    .generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at bench scale");
    let config = engine_config(cfg.threads);
    let repeats = cfg.repeats.max(1);

    // Warmup build (page everything in), then the measured rebuild cost:
    // what a restart pays when there is no snapshot.
    let _ = CompiledTable::build(table.clone(), config.clone()).expect("baseline solves");
    let mut artifact = None;
    let build = median(
        (0..repeats)
            .map(|_| {
                let t = Instant::now();
                let built = CompiledTable::build(table.clone(), config.clone())
                    .expect("baseline solves");
                let elapsed = t.elapsed();
                artifact = Some(built);
                elapsed
            })
            .collect(),
    );
    let artifact = Arc::new(artifact.expect("at least one build ran"));

    let dir: PathBuf = std::env::temp_dir()
        .join(format!("pmx-persist-bench-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("bench temp dir");
    let snapshot = dir.join(SNAPSHOT_FILE);

    let t = Instant::now();
    let snapshot_bytes = artifact.save(&snapshot).expect("save succeeds");
    let save = t.elapsed();

    // Cold load, repeated: verify-and-decode the snapshot from scratch each
    // time (the page cache is warm on every repeat, as it is for the
    // builds). Each repeat also times the first `baseline_estimate()` on
    // its fresh load — the deferred hydration plus assembly that first use
    // pays — separately from the load itself.
    let mut loaded = None;
    let mut load_times = Vec::with_capacity(repeats);
    let mut estimate_times = Vec::with_capacity(repeats);
    for _ in 0..repeats {
        let t = Instant::now();
        let l = CompiledTable::load(&snapshot).expect("load succeeds");
        load_times.push(t.elapsed());
        let t = Instant::now();
        let _ = l.baseline_estimate();
        estimate_times.push(t.elapsed());
        loaded = Some(l);
    }
    let cold_load = median(load_times);
    let first_estimate = median(estimate_times);
    let loaded = loaded.expect("at least one load ran");
    let load_identical = loaded.baseline_estimate().term_values()
        == artifact.baseline_estimate().term_values();

    // Journal a delta tape, one epoch per record, then time recovery.
    let mut wal = EpochWal::create(&dir, artifact.epoch()).expect("wal create");
    let mut tip = Arc::clone(&artifact);
    for i in 0..cfg.epochs {
        let delta = pick_delta(tip.table(), i);
        let next = Arc::new(tip.apply(&delta).expect("delta picks valid records"));
        wal.append(next.epoch(), &delta, next.applied_delta().expect("apply records"))
            .expect("append succeeds");
        tip = next;
    }
    drop(wal);
    let wal_bytes = fs::metadata(dir.join(WAL_FILE)).expect("wal exists").len();

    let mut recovered_tip = None;
    let recover_time = median(
        (0..repeats)
            .map(|_| {
                let t = Instant::now();
                let r = recover(&dir).expect("clean WAL recovers");
                let elapsed = t.elapsed();
                assert_eq!(r.replayed, cfg.epochs, "recover replayed the whole tape");
                recovered_tip = Some(r.artifact);
                elapsed
            })
            .collect(),
    );
    let recover_identical = recovered_tip
        .expect("at least one recover ran")
        .baseline_estimate()
        .term_values()
        == tip.baseline_estimate().term_values();
    let replay_per_epoch = recover_time
        .saturating_sub(cold_load)
        .checked_div(cfg.epochs.max(1) as u32)
        .unwrap_or_default();

    let _ = fs::remove_dir_all(&dir);
    PersistBenchReport {
        scale: match cfg.scale {
            Scale::Full => "full".to_string(),
            Scale::Quick => "quick".to_string(),
        },
        seed: cfg.seed,
        records: artifact.table().total_records(),
        buckets: artifact.table().num_buckets(),
        threads: cfg.threads,
        available_parallelism: pm_parallel::available_parallelism(),
        repeats,
        build,
        save,
        snapshot_bytes,
        cold_load,
        first_estimate,
        load_speedup: build.as_secs_f64() / cold_load.as_secs_f64().max(1e-12),
        epochs: cfg.epochs,
        wal_bytes,
        recover: recover_time,
        replay_per_epoch,
        identical: load_identical && recover_identical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> PersistBenchReport {
        PersistBenchReport {
            scale: "quick".into(),
            seed: 7,
            records: 100,
            buckets: 20,
            threads: 1,
            available_parallelism: 8,
            repeats: 3,
            build: Duration::from_millis(40),
            save: Duration::from_millis(2),
            snapshot_bytes: 96_000,
            cold_load: Duration::from_millis(2),
            first_estimate: Duration::from_millis(4),
            load_speedup: 20.0,
            epochs: 6,
            wal_bytes: 500,
            recover: Duration::from_millis(8),
            replay_per_epoch: Duration::from_millis(1),
            identical: true,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"persist\""));
        assert!(j.contains("\"build_seconds\": 0.040000"));
        assert!(j.contains("\"snapshot_bytes\": 96000"));
        assert!(j.contains("\"cold_load_seconds\": 0.002000"));
        assert!(j.contains("\"first_estimate_seconds\": 0.004000"));
        assert!(j.contains("\"load_speedup\": 20.0"));
        assert!(j.contains("\"replay_per_epoch_seconds\": 0.001000"));
        assert!(j.contains("\"identical\": true"));
    }

    #[test]
    fn table_print_does_not_panic() {
        tiny_report().print_table();
    }

    /// A miniature end-to-end sweep: the snapshot loads bit-identically,
    /// recovery replays the whole tape, and the JSON serialises.
    #[test]
    fn quick_sweep_is_exact() {
        let cfg = PersistBenchConfig { repeats: 1, epochs: 3, ..Default::default() };
        let report = run(&cfg);
        assert!(report.identical, "loaded or recovered bits diverged");
        assert_eq!(report.epochs, 3);
        assert!(report.snapshot_bytes > 0);
        assert!(report.wal_bytes > 0);
        assert!(!report.to_json().is_empty());
    }
}
