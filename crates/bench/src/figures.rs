//! Reproductions of the paper's result figures.
//!
//! Each function prints the same series the paper plots and returns the
//! numbers for programmatic use (EXPERIMENTS.md records the paper-vs-
//! measured comparison). Absolute numbers differ — our substrate is a
//! synthetic Adult stand-in on different hardware — but the *shapes* are
//! the reproduction target (see DESIGN.md §4).

use std::time::Duration;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;
use privacy_maxent::metrics::estimation_accuracy;

use crate::pipeline::{accuracy_for_rules, prepare, ExperimentData, Scale};

/// One point of an accuracy-vs-K curve.
#[derive(Debug, Clone)]
pub struct AccuracyPoint {
    /// Number of rules (K).
    pub k: usize,
    /// Estimation accuracy (weighted KL).
    pub accuracy: f64,
    /// Total solver time.
    pub solve_time: Duration,
}

/// A named curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Legend label (`K+`, `K-`, `(K+, K-)`, `T=3`, …).
    pub label: String,
    /// The series.
    pub points: Vec<AccuracyPoint>,
}

fn engine_config() -> EngineConfig {
    // The accuracy experiments tolerate asymptotic boundary residuals; the
    // worst observed is ~1e-1 of one record on the largest K, ≈ 1e-5 in
    // probability — invisible in the KL metric (see EXPERIMENTS.md).
    EngineConfig::builder().residual_limit(f64::INFINITY).build()
}

/// Performance-experiment config: the paper's timing runs report solves
/// that *converge*, so the dual tolerance is the practical 1e-4 (count
/// space) rather than the accuracy experiments' 1e-9 — boundary-heavy
/// systems then terminate inside the iteration budget instead of polishing
/// digits the timing axis cannot show.
fn perf_config() -> EngineConfig {
    EngineConfig::builder()
        .decompose(false)
        .tolerance(1e-4)
        .residual_limit(f64::INFINITY)
        .build()
}

fn k_grid(scale: Scale) -> Vec<usize> {
    match scale {
        Scale::Full => vec![0, 100, 500, 1000, 5000, 10_000, 20_000, 50_000],
        Scale::Quick => vec![0, 20, 50, 100, 250, 500, 1000, 2000],
    }
}

fn curve_for(
    exp: &ExperimentData,
    label: &str,
    ks: &[usize],
    pick: impl Fn(usize) -> (usize, usize),
) -> Curve {
    let mut points = Vec::new();
    for &k in ks {
        let (kp, kn) = pick(k);
        let picked = exp.rules.top_k(kp, kn);
        let (accuracy, stats) = accuracy_for_rules(exp, &picked, engine_config());
        points.push(AccuracyPoint { k, accuracy, solve_time: stats.total_elapsed });
    }
    Curve { label: label.to_string(), points }
}

fn print_curves(title: &str, xlabel: &str, curves: &[Curve]) {
    println!("\n=== {title} ===");
    print!("{xlabel:>10}");
    for c in curves {
        print!("  {:>12}", c.label);
    }
    println!();
    let xs: Vec<usize> = curves[0].points.iter().map(|p| p.k).collect();
    for (i, x) in xs.iter().enumerate() {
        print!("{x:>10}");
        for c in curves {
            print!("  {:>12.4}", c.points[i].accuracy);
        }
        println!();
    }
}

/// **Figure 5** — Estimation Accuracy vs. number of association rules, for
/// the `K+`, `K−` and mixed `(K+, K−)` bounds.
pub fn figure5(scale: Scale, seed: u64) -> Vec<Curve> {
    let exp = prepare(scale, seed);
    let ks = k_grid(scale);
    let curves = vec![
        curve_for(&exp, "K+", &ks, |k| (k, 0)),
        curve_for(&exp, "K-", &ks, |k| (0, k)),
        curve_for(&exp, "(K+,K-)", &ks, |k| (k / 2, k - k / 2)),
    ];
    print_curves(
        "Figure 5: positive and negative association rules",
        "K",
        &curves,
    );
    curves
}

/// **Figure 6** — Estimation Accuracy vs. K for rules whose antecedents
/// contain exactly `T` QI attributes, `T = 1..=max_t`.
pub fn figure6(scale: Scale, seed: u64) -> Vec<Curve> {
    let max_t = match scale {
        Scale::Full => 8,
        Scale::Quick => 4,
    };
    // Shared data; per-T rule mining.
    let exp = prepare(scale, seed);
    let ks = k_grid(scale);
    let mut curves = Vec::new();
    for t in 1..=max_t {
        let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![t] })
            .mine(&exp.data);
        let mut points = Vec::new();
        for &k in &ks {
            let picked = rules.top_k(k / 2, k - k / 2);
            let kb = KnowledgeBase::from_rules(picked.iter().copied(), exp.data.schema())
                .expect("mined rules valid");
            let est = Engine::new(engine_config())
                .estimate(&exp.table, &kb)
                .expect("mined knowledge feasible");
            points.push(AccuracyPoint {
                k,
                accuracy: estimation_accuracy(&exp.truth, &est),
                solve_time: est.stats.total_elapsed,
            });
        }
        curves.push(Curve { label: format!("T={t}"), points });
    }
    print_curves(
        "Figure 6: number of QI attributes in knowledge",
        "K",
        &curves,
    );
    curves
}

/// One point of a performance sweep.
#[derive(Debug, Clone)]
pub struct PerfPoint {
    /// X value (constraints for 7(a), buckets for 7(b)/(c)).
    pub x: usize,
    /// Solver wall time.
    pub time: Duration,
    /// Solver iterations (single joint solve: the Section 5.5 optimisation
    /// is disabled here, matching the paper's performance runs).
    pub iterations: usize,
}

/// **Figure 7(a)** — running time and iterations vs. number of
/// background-knowledge constraints (log-spaced), fixed dataset.
pub fn figure7a(scale: Scale, seed: u64) -> Vec<PerfPoint> {
    let exp = prepare(scale, seed);
    let grid: Vec<usize> = match scale {
        Scale::Full => vec![100, 300, 1000, 3000, 10_000, 30_000],
        Scale::Quick => vec![30, 100, 300, 1000, 3000],
    };
    let mut out = Vec::new();
    println!("\n=== Figure 7(a): performance vs knowledge ===");
    println!("{:>12}  {:>12}  {:>10}", "#constraints", "time(s)", "iterations");
    for &k in &grid {
        let picked = exp.rules.top_k(k / 2, k - k / 2);
        let (_, stats) = accuracy_for_rules(&exp, &picked, perf_config());
        let point = PerfPoint {
            x: k,
            time: stats.solver_elapsed(),
            iterations: stats.max_iterations(),
        };
        println!(
            "{:>12}  {:>12.3}  {:>10}",
            point.x,
            point.time.as_secs_f64(),
            point.iterations
        );
        out.push(point);
    }
    out
}

/// **Figures 7(b) & 7(c)** — running time (b) and iterations (c) vs. number
/// of buckets, one curve per background-knowledge size.
///
/// Each dataset size is generated, bucketized and mined independently so
/// its constraint system is self-consistent (the paper varies "the size of
/// dataset, i.e., the number of buckets").
pub fn figure7bc(scale: Scale, seed: u64) -> Vec<(usize, Vec<PerfPoint>)> {
    let (max_records, constraint_curves): (usize, Vec<usize>) = match scale {
        Scale::Full => (14_210, vec![0, 100, 1000, 10_000]),
        Scale::Quick => (2_500, vec![0, 50, 200, 1000]),
    };
    let sizes: Vec<usize> = (1..=5)
        .map(|i| max_records * i / 5 / 5 * 5) // multiples of 5 records
        .collect();
    let full = AdultGenerator::new(AdultGeneratorConfig { records: max_records, seed })
        .generate();

    let mut results = Vec::new();
    println!("\n=== Figure 7(b)/(c): performance vs data size ===");
    println!(
        "{:>12} {:>9} {:>12} {:>11}",
        "#constraints", "#buckets", "time(s)", "iterations"
    );
    for &kc in &constraint_curves {
        let mut series = Vec::new();
        for &n in &sizes {
            let data = full.head(n);
            let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
                .publish(&data)
                .expect("bucketization succeeds");
            let rules = RuleMiner::new(MinerConfig {
                min_support: 3,
                arities: scale.arities(),
            })
            .mine(&data);
            let picked = rules.top_k(kc / 2, kc - kc / 2);
            let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema())
                .expect("mined rules valid");
            let est = Engine::new(perf_config()).estimate(&table, &kb).expect("feasible");
            let point = PerfPoint {
                x: table.num_buckets(),
                time: est.stats.solver_elapsed(),
                iterations: est.stats.max_iterations(),
            };
            println!(
                "{kc:>12} {:>9} {:>12.3} {:>11}",
                point.x,
                point.time.as_secs_f64(),
                point.iterations
            );
            series.push(point);
        }
        results.push((kc, series));
    }
    results
}
