//! Closed-loop benchmark of the `pmx serve` network front-end.
//!
//! Boots a real [`pm_serve::server::Server`] on a loopback port, drives it
//! with the deterministic tape workload from [`pm_serve::loadgen`] — one
//! connection per tenant, batched query storms punctuated by knowledge
//! add/remove steps, refreshes and table-delta epochs — and measures
//! end-to-end mixed throughput (queries/s through the full
//! encode → TCP → decode → dispatch → respond path).
//!
//! Throughput without correctness is noise, so the run then **replays
//! every recorded phase against a direct [`Analyst`] on the reconstructed
//! epoch chain** and bit-compares each sampled response. The loadgen tapes
//! are pure functions of the seed, worker 0 is the sole delta driver (so
//! the server's epoch order equals the tape order), and each
//! [`PhaseRecord`] carries the epoch its refresh landed on plus whether
//! its add was rolled back — which is exactly enough to rebuild each
//! tenant's session state offline with zero tolerance for drift.
//!
//! One machine-readable JSON report (`BENCH_serve.json` by convention)
//! records it all.

use std::sync::Arc;
use std::time::Duration;

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_serve::loadgen::{self, LoadgenOptions, PhaseRecord};
use pm_serve::protocol::{WireDeltaOp, WireKnowledge};
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::{Backend, Server};
use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;

use crate::pipeline::Scale;

/// Configuration of one serve sweep.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Workload scale (record count).
    pub scale: Scale,
    /// Generator seed (data, mining and every loadgen tape).
    pub seed: u64,
    /// Tenants (one client thread + one connection each).
    pub tenants: usize,
    /// Phases per tenant (each ends with a knowledge step + refresh).
    pub phases: usize,
    /// Batched query frames per phase.
    pub batches_per_phase: usize,
    /// Queries per batch frame.
    pub batch: usize,
    /// Sampled single queries verified after each refresh.
    pub samples_per_phase: usize,
    /// Mined rules in the knowledge pool the tapes draw from.
    pub rules: usize,
    /// Table-delta epochs driven through the server (≤ `phases`; worker 0
    /// applies one at each of its first `deltas` phase boundaries).
    pub deltas: usize,
    /// Engine worker threads (server side).
    pub threads: usize,
    /// Serving backend under measurement.
    pub backend: Backend,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 1,
            tenants: 8,
            phases: 4,
            batches_per_phase: 50,
            batch: 256,
            samples_per_phase: 4,
            rules: 40,
            deltas: 3,
            threads: 1,
            backend: Backend::default(),
        }
    }
}

fn engine_config(threads: usize) -> EngineConfig {
    // Mirrors the other benches: mined knowledge is always feasible but
    // boundary-heavy systems converge asymptotically, so the residual gate
    // is left open.
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(threads)
        .build()
}

/// Deterministically picks the `i`-th single-record delta from the current
/// table, rotating insert / retract / move over records drawn from the
/// table's own multisets (same scheme as the table-delta and persist
/// benches), as wire ops.
fn pick_delta(table: &PublishedTable, i: usize) -> Vec<WireDeltaOp> {
    let m = table.num_buckets();
    let b = (i * 379 + 17) % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[(i * 53) % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[(i * 31) % bucket.distinct_sa()].0;
    let tuple = table.interner().tuple(q).to_vec();
    let delta = match i % 3 {
        0 => TableDelta::new().insert(tuple, s, (b + 1) % m),
        1 => TableDelta::new().retract(tuple, s, b),
        _ => TableDelta::new().move_record(tuple, s, b, (b + 1) % m),
    };
    delta.ops().iter().map(WireDeltaOp::from_op).collect()
}

/// The full report — everything `BENCH_serve.json` records.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    /// Workload scale label (`"quick"` / `"full"`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Records in the workload (at the base epoch).
    pub records: usize,
    /// Buckets in the publication.
    pub buckets: usize,
    /// Engine worker threads on the server.
    pub threads: usize,
    /// Serving backend, rendered (`reactor(N workers)` / `threaded`).
    pub backend: String,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// Tenants driven.
    pub tenants: usize,
    /// Phases per tenant.
    pub phases: usize,
    /// Rules in the knowledge pool.
    pub pool: usize,
    /// Total queries answered over the wire.
    pub queries: u64,
    /// Batch frames served.
    pub batches: u64,
    /// Single-query frames served.
    pub singles: u64,
    /// Knowledge add/remove steps applied.
    pub knowledge_ops: u64,
    /// Refreshes completed.
    pub refreshes: u64,
    /// Table-delta epochs advanced.
    pub deltas: u64,
    /// Wall time of the whole closed loop, seconds.
    pub wall: Duration,
    /// End-to-end mixed throughput, queries per second.
    pub qps: f64,
    /// Sampled responses bit-compared against the direct Analyst replay.
    pub samples: usize,
    /// Samples whose replay disagreed bitwise (must be 0).
    pub mismatches: usize,
    /// `mismatches == 0` over a non-empty sample set.
    pub identical: bool,
}

/// Runs the closed loop and the replay verification.
///
/// # Panics
///
/// Panics when the workload cannot be built or the server cannot bind —
/// bench-harness conditions, not measurable outcomes.
pub fn run(cfg: &ServeBenchConfig) -> ServeBenchReport {
    // The workload: Adult-scale publication + mined knowledge pool.
    let data = AdultGenerator::new(AdultGeneratorConfig {
        records: cfg.scale.records(),
        seed: cfg.seed,
    })
    .generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at bench scale");
    let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
        .mine(&data);
    let pool: Vec<WireKnowledge> = mined
        .top_k(cfg.rules.div_ceil(2), cfg.rules / 2)
        .into_iter()
        .filter_map(|r| {
            let k = Knowledge::from_rule(r, data.schema()).ok()?;
            WireKnowledge::from_knowledge(&k)
        })
        .collect();

    let base = Arc::new(
        CompiledTable::build(table, engine_config(cfg.threads))
            .expect("bench workload compiles"),
    );

    // Delta tapes, one per phase boundary worker 0 hits (picked against
    // the *evolving* table so retract/move claims hold at apply time).
    let mut tapes: Vec<Vec<WireDeltaOp>> = Vec::new();
    let mut evolving = Arc::clone(&base);
    for i in 0..cfg.deltas.min(cfg.phases) {
        let ops = pick_delta(evolving.table(), i);
        let delta = WireDeltaOp::into_delta(ops.clone());
        evolving = Arc::new(evolving.apply(&delta).expect("bench delta applies"));
        tapes.push(ops);
    }

    // Boot the real server on a loopback port and drive it.
    let registry = Arc::new(Registry::new(Arc::clone(&base), None, Limits::default()));
    let mut server = Server::bind_with("127.0.0.1:0", registry, cfg.backend)
        .expect("loopback bind succeeds");
    let opts = LoadgenOptions {
        tenants: cfg.tenants,
        phases: cfg.phases,
        batches_per_phase: cfg.batches_per_phase,
        batch: cfg.batch,
        samples_per_phase: cfg.samples_per_phase,
        seed: cfg.seed,
    };
    let report = loadgen::run(server.addr(), &pool, &tapes, &opts)
        .expect("closed loop completes");
    server.shutdown();

    // Replay verification against the reconstructed epoch chain.
    let chain = reconstruct_chain(&base, &tapes);
    let mut samples = 0usize;
    let mut mismatches = 0usize;
    for tenant in 0..cfg.tenants {
        let records: Vec<&PhaseRecord> = report
            .phases
            .iter()
            .filter(|p| p.tenant == tenant as u32)
            .collect();
        assert_eq!(records.len(), cfg.phases, "every phase is recorded");
        let (s, m) = replay_tenant(&chain, &pool, tenant, &records, cfg.seed);
        samples += s;
        mismatches += m;
    }

    ServeBenchReport {
        scale: match cfg.scale {
            Scale::Full => "full".to_string(),
            Scale::Quick => "quick".to_string(),
        },
        seed: cfg.seed,
        records: data.len(),
        buckets: base.table().num_buckets(),
        threads: cfg.threads,
        backend: cfg.backend.to_string(),
        available_parallelism: pm_parallel::available_parallelism(),
        tenants: cfg.tenants,
        phases: cfg.phases,
        pool: pool.len(),
        queries: report.queries,
        batches: report.batches,
        singles: report.singles,
        knowledge_ops: report.knowledge_ops,
        refreshes: report.refreshes,
        deltas: report.deltas,
        wall: Duration::from_secs_f64(report.wall_seconds),
        qps: report.qps,
        samples,
        mismatches,
        identical: samples > 0 && mismatches == 0,
    }
}

/// Rebuilds the server's epoch chain: the base artifact plus one epoch per
/// delta tape, in tape order (worker 0 is the sole driver, so this is the
/// order the server observed).
fn reconstruct_chain(
    base: &Arc<CompiledTable>,
    tapes: &[Vec<WireDeltaOp>],
) -> Vec<Arc<CompiledTable>> {
    let mut chain = vec![Arc::clone(base)];
    for tape in tapes {
        let delta = WireDeltaOp::into_delta(tape.clone());
        let next = chain
            .last()
            .expect("chain is never empty")
            .apply(&delta)
            .expect("replay applies the same deltas the server accepted");
        chain.push(Arc::new(next));
    }
    chain
}

/// Replays one tenant's deterministic tape on a direct [`Analyst`] and
/// bit-compares every recorded sample. Returns `(samples, mismatches)`.
///
/// The recorded `rolled_back` flag is **forced**, not re-derived: the
/// server decided feasibility at a precise interleaving of deltas and
/// refreshes that an offline replay cannot reconstruct from the tape
/// alone. A rolled-back add leaves the knowledge set unchanged, and the
/// Analyst's determinism contract (refresh ≡ from-scratch estimate of the
/// same final knowledge set on the same artifact) makes the phase estimate
/// a pure function of `(epoch artifact, final knowledge set)` — so forcing
/// the recorded decision reproduces the served bits exactly.
fn replay_tenant(
    chain: &[Arc<CompiledTable>],
    pool: &[WireKnowledge],
    tenant: usize,
    records: &[&PhaseRecord],
    seed: u64,
) -> (usize, usize) {
    let base_epoch = chain[0].epoch();
    let tape = loadgen::tenant_tape(pool, tenant, records.len(), seed);
    let mut analyst = Analyst::open(Arc::clone(&chain[0]));
    let mut handles: Vec<KnowledgeHandle> = Vec::new();
    let mut samples = 0usize;
    let mut mismatches = 0usize;

    for (record, op) in records.iter().zip(&tape) {
        assert!(record.epoch >= base_epoch, "epochs never precede the base");
        while analyst.epoch() < record.epoch {
            let next = &chain[usize::try_from(analyst.epoch() - base_epoch + 1)
                .expect("chain index fits")];
            analyst.rebase(next).expect("stepwise rebase follows the chain");
        }
        match op {
            loadgen::TapeOp::Add(item) if !record.rolled_back => {
                let h = analyst
                    .add_knowledge(item.clone().into_knowledge())
                    .expect("replayed add registers");
                handles.push(h);
            }
            loadgen::TapeOp::Add(_) => {
                // Rolled back on the server: add + remove cancel out.
            }
            loadgen::TapeOp::Remove(index) => {
                if !handles.is_empty() {
                    let h = handles.remove(index % handles.len());
                    analyst.remove_knowledge(h).expect("replayed remove resolves");
                }
            }
        }
        analyst.refresh().expect("replayed refresh succeeds");
        assert_eq!(analyst.epoch(), record.epoch, "replay lands on the recorded epoch");
        for &(q, s, p) in &record.samples {
            let direct = analyst.conditional(q as usize, s);
            samples += 1;
            if direct.to_bits() != p.to_bits() {
                mismatches += 1;
            }
        }
    }
    (samples, mismatches)
}

impl ServeBenchReport {
    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"serve\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"records\": {},\n", self.records));
        s.push_str(&format!("  \"buckets\": {},\n", self.buckets));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"backend\": \"{}\",\n", self.backend));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        s.push_str(&format!("  \"phases\": {},\n", self.phases));
        s.push_str(&format!("  \"pool_rules\": {},\n", self.pool));
        s.push_str(&format!("  \"queries\": {},\n", self.queries));
        s.push_str(&format!("  \"batch_frames\": {},\n", self.batches));
        s.push_str(&format!("  \"single_frames\": {},\n", self.singles));
        s.push_str(&format!("  \"knowledge_ops\": {},\n", self.knowledge_ops));
        s.push_str(&format!("  \"refreshes\": {},\n", self.refreshes));
        s.push_str(&format!("  \"delta_epochs\": {},\n", self.deltas));
        s.push_str(&format!("  \"wall_seconds\": {:.6},\n", self.wall.as_secs_f64()));
        s.push_str(&format!("  \"queries_per_second\": {:.0},\n", self.qps));
        s.push_str(&format!("  \"verified_samples\": {},\n", self.samples));
        s.push_str(&format!("  \"mismatches\": {},\n", self.mismatches));
        s.push_str(&format!("  \"identical\": {}\n", self.identical));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "pmx serve closed loop — {} scale, seed {}: {} records, {} buckets, \
             {} pool rule(s), {} engine thread(s) on {} core(s), {} backend",
            self.scale,
            self.seed,
            self.records,
            self.buckets,
            self.pool,
            self.threads,
            self.available_parallelism,
            self.backend,
        );
        println!(
            "{} tenant(s) x {} phase(s): {} queries ({} batch frames + {} singles), \
             {} knowledge op(s), {} refresh(es), {} delta epoch(s)",
            self.tenants,
            self.phases,
            self.queries,
            self.batches,
            self.singles,
            self.knowledge_ops,
            self.refreshes,
            self.deltas,
        );
        println!(
            "{:.3} s wall -> {:.0} queries/s; replay: {} sample(s), {} mismatch(es), \
             identical = {}",
            self.wall.as_secs_f64(),
            self.qps,
            self.samples,
            self.mismatches,
            self.identical,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ServeBenchReport {
        ServeBenchReport {
            scale: "quick".into(),
            seed: 7,
            records: 100,
            buckets: 20,
            threads: 1,
            backend: Backend::default().to_string(),
            available_parallelism: 8,
            tenants: 2,
            phases: 2,
            pool: 10,
            queries: 1_000,
            batches: 8,
            singles: 8,
            knowledge_ops: 3,
            refreshes: 4,
            deltas: 1,
            wall: Duration::from_millis(10),
            qps: 100_000.0,
            samples: 8,
            mismatches: 0,
            identical: true,
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"serve\""));
        assert!(j.contains("\"queries\": 1000"));
        assert!(j.contains("\"queries_per_second\": 100000"));
        assert!(j.contains("\"wall_seconds\": 0.010000"));
        assert!(j.contains("\"verified_samples\": 8"));
        assert!(j.contains("\"identical\": true"));
    }

    #[test]
    fn table_print_does_not_panic() {
        tiny_report().print_table();
    }

    // The real thing, scaled down: a live server, a two-tenant closed loop
    // with one delta epoch, and the full bit-identity replay.
    #[test]
    fn quick_sweep_replays_bit_identically() {
        let cfg = ServeBenchConfig {
            tenants: 2,
            phases: 2,
            batches_per_phase: 2,
            batch: 16,
            samples_per_phase: 2,
            rules: 12,
            deltas: 1,
            ..ServeBenchConfig::default()
        };
        let report = run(&cfg);
        assert_eq!(report.deltas, 1);
        assert_eq!(report.samples, 2 * 2 * 2);
        assert_eq!(report.mismatches, 0, "a served sample diverged from its replay");
        assert!(report.identical);
        assert!(report.queries >= 2 * 2 * 2 * 16);
    }
}
