//! Compile-once / serve-many benchmark of the shared [`CompiledTable`]
//! artifact.
//!
//! The artifact redesign claims two things, and this module measures both
//! at Adult scale:
//!
//! 1. **Cheap session open**: `Analyst::open(Arc<CompiledTable>)` skips the
//!    whole knowledge-independent compile (term index, invariants, inverted
//!    index, baseline solve), so opening the N-th session over one
//!    publication must be far cheaper than the N-th full `Analyst::new` —
//!    the ISSUE's bar is ≥ 10×, the gate lives in the `concurrent_bench`
//!    binary.
//! 2. **Concurrent what-if forks are exact**: N threads each fork a base
//!    session from the shared artifact, apply their own disjoint rule
//!    delta, refresh, and every fork's estimate must be bit-identical to an
//!    independent from-scratch `Engine::estimate` of that fork's knowledge
//!    set. The speedup claim is only meaningful if the concurrent answers
//!    are the exact answers.
//!
//! One machine-readable JSON report (`BENCH_concurrent.json` by
//! convention) records it all.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};

use crate::pipeline::Scale;

/// Configuration of one concurrent-sessions sweep.
#[derive(Debug, Clone)]
pub struct ConcurrentBenchConfig {
    /// Workload scale (record count).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Exact antecedent arity of the mined knowledge (the paper's `T`).
    pub arity: usize,
    /// Top-K+ rule budget.
    pub k_positive: usize,
    /// Top-K− rule budget.
    pub k_negative: usize,
    /// Concurrent forked sessions (one OS thread each); also how many
    /// single-rule deltas are reserved from the positive tail, one per
    /// fork.
    pub sessions: usize,
    /// Timed `Analyst::open` iterations (opens are sub-microsecond, so the
    /// mean over many is reported).
    pub opens: usize,
    /// Full `Analyst::new` timing repeats (the median is reported).
    pub new_repeats: usize,
    /// Engine worker threads inside each solve (kept at 1 so the session
    /// threads themselves are the only concurrency).
    pub threads: usize,
}

impl Default for ConcurrentBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 1,
            arity: 4,
            k_positive: 150,
            k_negative: 150,
            sessions: 4,
            opens: 1000,
            new_repeats: 3,
            threads: 1,
        }
    }
}

fn engine_config(threads: usize) -> EngineConfig {
    // Mirrors the incremental bench: mined knowledge is always feasible but
    // boundary-heavy systems converge asymptotically, so the residual gate
    // is left open.
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(threads)
        .build()
}

/// The generated workload: publication, shared base knowledge, and one
/// disjoint single-rule delta per concurrent session.
struct Workload {
    records: usize,
    table: PublishedTable,
    base: Vec<Knowledge>,
    deltas: Vec<Knowledge>,
    rules: usize,
}

fn build_workload(cfg: &ConcurrentBenchConfig) -> Workload {
    let data = AdultGenerator::new(AdultGeneratorConfig {
        records: cfg.scale.records(),
        seed: cfg.seed,
    })
    .generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at bench scale");
    let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![cfg.arity] })
        .mine(&data);
    let picked = mined.top_k(cfg.k_positive, cfg.k_negative);
    let items: Vec<Knowledge> = picked
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    let rules = items.len();
    // One informative delta per session, taken from the tail of the
    // positive block so each fork re-solves a real component; the base is
    // everything else, in session insertion order.
    let k_pos = cfg.k_positive.min(mined.positive.len());
    let n_deltas = cfg.sessions.min(k_pos);
    let delta_start = k_pos - n_deltas;
    let deltas: Vec<Knowledge> = items[delta_start..k_pos].to_vec();
    let base: Vec<Knowledge> = items[..delta_start]
        .iter()
        .chain(&items[k_pos..])
        .cloned()
        .collect();
    Workload { records: data.len(), table, base, deltas, rules }
}

/// One concurrent fork's measurements, produced on its own thread.
#[derive(Debug, Clone)]
pub struct ForkRun {
    /// Wall time of `fork + add_knowledge + refresh` on the session thread.
    pub fork_delta: Duration,
    /// Wall time of the independent from-scratch `Engine::estimate` with
    /// the same final knowledge set (base + this fork's delta).
    pub from_scratch: Duration,
    /// Whether the fork's estimate is bit-identical to the from-scratch
    /// solve.
    pub identical_to_scratch: bool,
}

/// The full report — everything `BENCH_concurrent.json` records.
#[derive(Debug, Clone)]
pub struct ConcurrentBenchReport {
    /// Workload scale label (`"quick"` / `"full"`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Records in the workload.
    pub records: usize,
    /// Buckets in the publication.
    pub buckets: usize,
    /// Antecedent arity of the mined knowledge.
    pub arity: usize,
    /// Background-knowledge rules in the shared base set + deltas.
    pub rules: usize,
    /// Engine worker threads inside each solve.
    pub threads: usize,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// Median wall time of a full `Analyst::new` (compile + baseline).
    pub analyst_new: Duration,
    /// Wall time of the one `CompiledTable::build` the sessions share.
    pub artifact_build: Duration,
    /// Mean wall time of one `Analyst::open` over the shared artifact.
    pub session_open: Duration,
    /// Timed open iterations behind `session_open`.
    pub opens: usize,
    /// `analyst_new / session_open` — the compile-once payoff.
    pub open_speedup: f64,
    /// The concurrent fork runs, in session order.
    pub forks: Vec<ForkRun>,
}

impl ConcurrentBenchReport {
    /// Whether every concurrent fork reproduced its from-scratch bits.
    pub fn all_identical(&self) -> bool {
        self.forks.iter().all(|f| f.identical_to_scratch)
    }

    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"concurrent_sessions\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"records\": {},\n", self.records));
        s.push_str(&format!("  \"buckets\": {},\n", self.buckets));
        s.push_str(&format!("  \"arity\": {},\n", self.arity));
        s.push_str(&format!("  \"rules\": {},\n", self.rules));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!(
            "  \"analyst_new_seconds\": {:.6},\n",
            self.analyst_new.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"artifact_build_seconds\": {:.6},\n",
            self.artifact_build.as_secs_f64()
        ));
        s.push_str(&format!(
            "  \"session_open_seconds\": {:.9},\n",
            self.session_open.as_secs_f64()
        ));
        s.push_str(&format!("  \"opens\": {},\n", self.opens));
        s.push_str(&format!("  \"open_speedup\": {:.1},\n", self.open_speedup));
        s.push_str(&format!("  \"sessions\": {},\n", self.forks.len()));
        s.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        s.push_str("  \"forks\": [\n");
        for (i, f) in self.forks.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"fork_delta_seconds\": {:.6}, \"from_scratch_seconds\": {:.6}, \
                 \"identical_to_scratch\": {}}}{}\n",
                f.fork_delta.as_secs_f64(),
                f.from_scratch.as_secs_f64(),
                f.identical_to_scratch,
                if i + 1 < self.forks.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable table (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "concurrent sessions — {} scale, seed {}: {} records, {} buckets, \
             {} arity-{} rules, {} engine thread(s)",
            self.scale, self.seed, self.records, self.buckets, self.rules, self.arity,
            self.threads
        );
        println!(
            "full Analyst::new (median): {:.3} ms | CompiledTable::build: {:.3} ms | \
             Analyst::open (mean of {}): {:.6} ms",
            self.analyst_new.as_secs_f64() * 1e3,
            self.artifact_build.as_secs_f64() * 1e3,
            self.opens,
            self.session_open.as_secs_f64() * 1e3,
        );
        println!("open speedup (new / open): {:.0}x", self.open_speedup);
        println!(
            "{:>7}  {:>15}  {:>12}  {:>9}",
            "session", "fork+delta (ms)", "scratch (ms)", "identical"
        );
        for (i, f) in self.forks.iter().enumerate() {
            println!(
                "{:>7}  {:>15.3}  {:>12.3}  {:>9}",
                i + 1,
                f.fork_delta.as_secs_f64() * 1e3,
                f.from_scratch.as_secs_f64() * 1e3,
                f.identical_to_scratch,
            );
        }
    }
}

/// Runs the sweep: time full session construction vs artifact-backed opens,
/// then fan the forks out across threads and bit-compare each against an
/// independent from-scratch solve.
pub fn run(cfg: &ConcurrentBenchConfig) -> ConcurrentBenchReport {
    let w = build_workload(cfg);
    let config = engine_config(cfg.threads);

    // Full `Analyst::new` — what every user of the old API paid per
    // session. Median over repeats (the first run also warms the workload
    // pages so the artifact path is not advantaged).
    let mut new_times: Vec<Duration> = (0..cfg.new_repeats.max(1))
        .map(|_| {
            let table = w.table.clone();
            let t = Instant::now();
            let analyst = Analyst::new(table, config.clone()).expect("baseline solves");
            let elapsed = t.elapsed();
            std::hint::black_box(&analyst);
            elapsed
        })
        .collect();
    new_times.sort();
    let analyst_new = new_times[new_times.len() / 2];

    // The shared artifact, built once…
    let build_start = Instant::now();
    let artifact = Arc::new(
        CompiledTable::build(w.table.clone(), config.clone()).expect("baseline solves"),
    );
    let artifact_build = build_start.elapsed();

    // …then opened over and over: the per-session cost of the new API.
    let opens = cfg.opens.max(1);
    let open_start = Instant::now();
    for _ in 0..opens {
        let session = Analyst::open(Arc::clone(&artifact));
        std::hint::black_box(&session);
    }
    let session_open = open_start.elapsed() / opens as u32;
    let open_speedup = analyst_new.as_secs_f64() / session_open.as_secs_f64().max(1e-12);

    // The shared base session every thread forks from.
    let mut base = Analyst::open(Arc::clone(&artifact));
    base.add_knowledge_batch(&w.base).expect("base knowledge compiles");
    base.refresh().expect("base knowledge is feasible");

    // One thread per fork: apply a disjoint single-rule delta, refresh,
    // and verify bitwise against an independent from-scratch solve.
    let engine = Engine::new(config.clone());
    let base_ref = &base;
    let forks = pm_parallel::broadcast(w.deltas.len(), |i| {
        let delta = w.deltas[i].clone();
        let t = Instant::now();
        let mut fork = base_ref.fork();
        let _ = fork.add_knowledge(delta.clone()).expect("delta compiles");
        fork.refresh().expect("delta is feasible");
        let fork_delta = t.elapsed();

        let mut kb = KnowledgeBase::new();
        for item in &w.base {
            kb.push(item.clone()).expect("valid knowledge");
        }
        kb.push(delta).expect("valid knowledge");
        let t = Instant::now();
        let scratch = engine.estimate(&w.table, &kb).expect("feasible");
        let from_scratch = t.elapsed();

        ForkRun {
            fork_delta,
            from_scratch,
            identical_to_scratch: fork.estimate().term_values() == scratch.term_values(),
        }
    });

    ConcurrentBenchReport {
        scale: match cfg.scale {
            Scale::Full => "full".to_string(),
            Scale::Quick => "quick".to_string(),
        },
        seed: cfg.seed,
        records: w.records,
        buckets: w.table.num_buckets(),
        arity: cfg.arity,
        rules: w.rules,
        threads: cfg.threads,
        available_parallelism: pm_parallel::available_parallelism(),
        analyst_new,
        artifact_build,
        session_open,
        opens,
        open_speedup,
        forks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> ConcurrentBenchReport {
        ConcurrentBenchReport {
            scale: "quick".into(),
            seed: 7,
            records: 100,
            buckets: 20,
            arity: 4,
            rules: 10,
            threads: 1,
            available_parallelism: 8,
            analyst_new: Duration::from_millis(40),
            artifact_build: Duration::from_millis(41),
            session_open: Duration::from_micros(2),
            opens: 1000,
            open_speedup: 20_000.0,
            forks: vec![
                ForkRun {
                    fork_delta: Duration::from_millis(1),
                    from_scratch: Duration::from_millis(30),
                    identical_to_scratch: true,
                },
                ForkRun {
                    fork_delta: Duration::from_millis(2),
                    from_scratch: Duration::from_millis(31),
                    identical_to_scratch: true,
                },
            ],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"concurrent_sessions\""));
        assert!(j.contains("\"analyst_new_seconds\": 0.040000"));
        assert!(j.contains("\"session_open_seconds\": 0.000002000"));
        assert!(j.contains("\"open_speedup\": 20000.0"));
        assert!(j.contains("\"sessions\": 2"));
        assert!(j.contains("\"all_identical\": true"));
        // Exactly one trailing comma between the two fork rows.
        assert_eq!(j.matches("},\n").count(), 1);
    }

    #[test]
    fn identity_helper_and_table_print() {
        let mut r = tiny_report();
        assert!(r.all_identical());
        r.print_table();
        r.forks[0].identical_to_scratch = false;
        assert!(!r.all_identical());
    }

    /// A miniature end-to-end sweep: opens are cheaper than full news, and
    /// every concurrent fork reproduces its from-scratch bits.
    #[test]
    fn quick_sweep_is_exact() {
        let cfg = ConcurrentBenchConfig {
            k_positive: 20,
            k_negative: 20,
            sessions: 3,
            opens: 50,
            new_repeats: 1,
            ..Default::default()
        };
        let report = run(&cfg);
        assert_eq!(report.forks.len(), 3);
        assert!(report.all_identical(), "a concurrent fork diverged from from-scratch");
        assert!(
            report.open_speedup > 1.0,
            "open ({:?}) should beat full new ({:?})",
            report.session_open,
            report.analyst_new
        );
        assert!(!report.to_json().is_empty());
    }
}
