//! Experiment driver: regenerates every result figure of the paper.
//!
//! ```text
//! cargo run --release -p pm-bench --bin experiments -- [fig5|fig6|fig7a|fig7b|fig7c|all] [--full] [--seed N]
//! ```
//!
//! Default scale is `quick` (2,500 records, arities ≤ 3, minutes);
//! `--full` runs the paper's scale (14,210 records / 2,842 buckets /
//! arities ≤ 8), which takes substantially longer on the Figure 5/6
//! sweeps. See `EXPERIMENTS.md` for recorded outputs.

use pm_bench::figures;
use pm_bench::pipeline::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = if args.iter().any(|a| a == "--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let seed = args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1u64);
    let seed_value_pos = args.iter().position(|a| a == "--seed").map(|i| i + 1);
    let which: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && Some(i) != seed_value_pos)
        .map(|(_, a)| a.as_str())
        .collect();
    let run_all = which.is_empty() || which.contains(&"all");

    println!(
        "Privacy-MaxEnt experiment harness — scale: {scale:?}, seed: {seed}\n\
         (accuracy = weighted KL distance; lower = adversary closer to truth)"
    );
    if run_all || which.contains(&"fig5") {
        figures::figure5(scale, seed);
    }
    if run_all || which.contains(&"fig6") {
        figures::figure6(scale, seed);
    }
    if run_all || which.contains(&"fig7a") {
        figures::figure7a(scale, seed);
    }
    if run_all || which.contains(&"fig7b") || which.contains(&"fig7c") {
        // 7(b) and 7(c) share one sweep: time and iterations per point.
        figures::figure7bc(scale, seed);
    }
}
