//! `serve_bench` — closed-loop throughput + bit-identity sweep of `pmx serve`.
//!
//! ```text
//! cargo run --release -p pm-bench --bin serve_bench -- [options]
//!
//!     --scale quick|full  workload scale (2,500 / 14,210 records) [default: quick]
//!     --seed N            generator + tape seed                   [default: 1]
//!     --tenants N         client connections                      [default: 8]
//!     --phases N          knowledge phases per tenant             [default: 4]
//!     --batches N         batch frames per phase                  [default: 50]
//!     --batch N           queries per batch frame                 [default: 256]
//!     --samples N         verified singles per phase              [default: 4]
//!     --rules N           mined knowledge pool size               [default: 40]
//!     --deltas N          table-delta epochs driven (≤ phases)    [default: 3]
//!     --threads N         server engine threads                   [default: 1]
//!     --backend B         serving backend: reactor|threaded  [default: reactor]
//!     --out PATH          JSON report path           [default: BENCH_serve.json]
//!     --min-qps X         fail unless mixed throughput reaches X queries/s.
//!                         Self-skips with a note when the run is too short to
//!                         time honestly (wall below the 250 ms floor), so
//!                         smoke-sized runs don't flake the gate.
//!                                                                 [default: off]
//! ```
//!
//! Always exits non-zero if any sampled response diverges bitwise from the
//! direct `Analyst` replay — throughput never buys back correctness.

use std::process::ExitCode;

use pm_bench::pipeline::Scale;
use pm_bench::serve::{run, ServeBenchConfig};
use pm_serve::server::Backend;

/// Below this wall time the qps figure is quantisation noise, so an armed
/// `--min-qps` gate self-skips (with a note) instead of flaking.
const GATE_FLOOR_SECONDS: f64 = 0.25;

fn parse(argv: &[String]) -> Result<(ServeBenchConfig, String, Option<f64>), String> {
    let mut cfg = ServeBenchConfig::default();
    let mut out = "BENCH_serve.json".to_string();
    let mut min_qps = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                cfg.seed = value("--seed")?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--tenants" => {
                cfg.tenants =
                    value("--tenants")?.parse().map_err(|_| "bad --tenants".to_string())?;
            }
            "--phases" => {
                cfg.phases =
                    value("--phases")?.parse().map_err(|_| "bad --phases".to_string())?;
            }
            "--batches" => {
                cfg.batches_per_phase =
                    value("--batches")?.parse().map_err(|_| "bad --batches".to_string())?;
            }
            "--batch" => {
                cfg.batch = value("--batch")?.parse().map_err(|_| "bad --batch".to_string())?;
            }
            "--samples" => {
                cfg.samples_per_phase =
                    value("--samples")?.parse().map_err(|_| "bad --samples".to_string())?;
            }
            "--rules" => {
                cfg.rules = value("--rules")?.parse().map_err(|_| "bad --rules".to_string())?;
            }
            "--deltas" => {
                cfg.deltas =
                    value("--deltas")?.parse().map_err(|_| "bad --deltas".to_string())?;
            }
            "--threads" => {
                cfg.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads".to_string())?;
            }
            "--backend" => {
                cfg.backend = match value("--backend")?.as_str() {
                    "reactor" => Backend::default(),
                    "threaded" => Backend::Threaded,
                    other => return Err(format!("unknown backend `{other}`")),
                };
            }
            "--out" => out = value("--out")?,
            "--min-qps" => {
                min_qps = Some(
                    value("--min-qps")?
                        .parse::<f64>()
                        .map_err(|_| "bad --min-qps".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.tenants == 0 || cfg.phases == 0 || cfg.batch == 0 {
        return Err("--tenants, --phases and --batch must be positive".to_string());
    }
    if cfg.samples_per_phase == 0 {
        return Err("--samples must be positive (the replay needs samples to verify)".to_string());
    }
    Ok((cfg, out, min_qps))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out, min_qps) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("serve_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&cfg);
    report.print_table();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("serve_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    if !report.identical {
        eprintln!(
            "serve_bench: {} of {} sampled response(s) diverged bitwise from the \
             direct Analyst replay!",
            report.mismatches, report.samples
        );
        return ExitCode::FAILURE;
    }
    if let Some(bar) = min_qps {
        let wall = report.wall.as_secs_f64();
        if wall < GATE_FLOOR_SECONDS {
            println!(
                "min-qps gate skipped: {wall:.3} s wall is below the \
                 {GATE_FLOOR_SECONDS:.2} s timing floor"
            );
        } else if report.qps < bar {
            eprintln!(
                "serve_bench: {:.0} queries/s is below the --min-qps bar {bar:.0}",
                report.qps
            );
            return ExitCode::FAILURE;
        } else {
            println!("min-qps gate passed: {:.0} queries/s >= {bar:.0}", report.qps);
        }
    }
    ExitCode::SUCCESS
}
