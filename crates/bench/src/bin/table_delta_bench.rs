//! `table_delta_bench` — live-table epoch sweep: single-record deltas
//! (`CompiledTable::apply` + `Analyst::rebase` + `refresh`) vs compiling
//! the post-delta table from scratch and replaying the knowledge set.
//!
//! ```text
//! cargo run --release -p pm-bench --bin table_delta_bench -- [options]
//!
//!     --scale quick|full      workload scale (2,500 / 14,210 records) [default: quick]
//!     --seed N                generator seed                          [default: 1]
//!     --arity T               exact antecedent arity of mined rules   [default: 4]
//!     --rules N               knowledge rules, split (N/2)+ (N/2)−    [default: 300]
//!     --deltas N              single-record deltas to measure         [default: 6]
//!     --threads N             worker threads for both paths           [default: 1]
//!     --out PATH              JSON report path     [default: BENCH_table_delta.json]
//!     --min-delta-speedup X   fail unless the median speedup of the delta path
//!                             (apply + rebase + refresh) over the from-scratch
//!                             path (CompiledTable::build of the post-delta table
//!                             + knowledge replay + refresh) reaches X.
//!                             Self-skipping: when the from-scratch baseline is
//!                             too fast to time reliably (< 20 ms) the gate is
//!                             skipped with a note, so tiny smoke workloads
//!                             don't flake — the Adult-scale CI run enforces it.
//!                                                         [default: off]
//! ```
//!
//! Always fails if any epoch's rebased estimate is not bit-identical to the
//! from-scratch compile-and-replay of the same post-delta table.

use std::process::ExitCode;

use pm_bench::pipeline::Scale;
use pm_bench::table_delta::{run, TableDeltaBenchConfig};

/// Minimum from-scratch wall time for the speedup gate to be meaningful.
const GATE_FLOOR_SECONDS: f64 = 0.020;

fn parse(argv: &[String]) -> Result<(TableDeltaBenchConfig, String, Option<f64>), String> {
    let mut cfg = TableDeltaBenchConfig::default();
    let mut rules = 300usize;
    let mut out = "BENCH_table_delta.json".to_string();
    let mut min_speedup = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                cfg.seed = value("--seed")?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--arity" => {
                cfg.arity = value("--arity")?.parse().map_err(|_| "bad --arity".to_string())?;
            }
            "--rules" => {
                rules = value("--rules")?.parse().map_err(|_| "bad --rules".to_string())?;
            }
            "--deltas" => {
                cfg.deltas =
                    value("--deltas")?.parse().map_err(|_| "bad --deltas".to_string())?;
            }
            "--threads" => {
                cfg.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads".to_string())?;
            }
            "--out" => out = value("--out")?,
            "--min-delta-speedup" => {
                min_speedup = Some(
                    value("--min-delta-speedup")?
                        .parse::<f64>()
                        .map_err(|_| "bad --min-delta-speedup".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.arity == 0 {
        return Err("--arity must be positive".to_string());
    }
    if cfg.deltas == 0 {
        return Err("--deltas must be positive".to_string());
    }
    cfg.k_positive = rules / 2;
    cfg.k_negative = rules - rules / 2;
    Ok((cfg, out, min_speedup))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out, min_speedup) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("table_delta_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&cfg);
    report.print_table();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("table_delta_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    if !report.all_identical() {
        eprintln!(
            "table_delta_bench: a rebased epoch diverged bitwise from the \
             from-scratch compile-and-replay!"
        );
        return ExitCode::FAILURE;
    }
    if let Some(bar) = min_speedup {
        let scratch_floor = report
            .runs
            .iter()
            .map(|r| r.from_scratch.as_secs_f64())
            .fold(f64::INFINITY, f64::min);
        if scratch_floor < GATE_FLOOR_SECONDS {
            println!(
                "min-delta-speedup gate skipped: from-scratch baseline \
                 ({:.1} ms) is below the {:.0} ms timing floor",
                scratch_floor * 1e3,
                GATE_FLOOR_SECONDS * 1e3
            );
        } else {
            let median = report.median_speedup();
            if median < bar {
                eprintln!(
                    "table_delta_bench: median delta speedup {median:.2}x is below \
                     the --min-delta-speedup bar {bar:.2}x"
                );
                return ExitCode::FAILURE;
            }
            println!("min-delta-speedup gate passed: median {median:.2}x >= {bar:.2}x");
        }
    }
    ExitCode::SUCCESS
}
