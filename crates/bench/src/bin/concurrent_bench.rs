//! `concurrent_bench` — compile-once / serve-many sweep of the shared
//! `CompiledTable` artifact.
//!
//! ```text
//! cargo run --release -p pm-bench --bin concurrent_bench -- [options]
//!
//!     --scale quick|full      workload scale (2,500 / 14,210 records) [default: quick]
//!     --seed N                generator seed                          [default: 1]
//!     --arity T               exact antecedent arity of mined rules   [default: 4]
//!     --rules N               knowledge rules, split (N/2)+ (N/2)−    [default: 300]
//!     --sessions N            concurrent forked sessions (threads)    [default: 4]
//!     --opens N               timed Analyst::open iterations          [default: 1000]
//!     --threads N             engine worker threads per solve         [default: 1]
//!     --out PATH              JSON report path      [default: BENCH_concurrent.json]
//!     --min-open-speedup X    fail unless open is X times faster than a full
//!                             Analyst::new. Self-skipping: when the full
//!                             Analyst::new baseline is too fast to time
//!                             reliably (< 20 ms) the gate is skipped with a
//!                             note, so tiny smoke workloads don't flake — the
//!                             Adult-scale CI run enforces it.  [default: off]
//! ```
//!
//! Always fails if any concurrent fork's estimate is not bit-identical to
//! the independent from-scratch solve of the same knowledge set.

use std::process::ExitCode;

use pm_bench::concurrent::{run, ConcurrentBenchConfig};
use pm_bench::pipeline::Scale;

/// Minimum full-`Analyst::new` wall time for the speedup gate to be
/// meaningful.
const GATE_FLOOR_SECONDS: f64 = 0.020;

fn parse(argv: &[String]) -> Result<(ConcurrentBenchConfig, String, Option<f64>), String> {
    let mut cfg = ConcurrentBenchConfig::default();
    let mut rules = 300usize;
    let mut out = "BENCH_concurrent.json".to_string();
    let mut min_speedup = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                cfg.seed = value("--seed")?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--arity" => {
                cfg.arity = value("--arity")?.parse().map_err(|_| "bad --arity".to_string())?;
            }
            "--rules" => {
                rules = value("--rules")?.parse().map_err(|_| "bad --rules".to_string())?;
            }
            "--sessions" => {
                cfg.sessions =
                    value("--sessions")?.parse().map_err(|_| "bad --sessions".to_string())?;
            }
            "--opens" => {
                cfg.opens = value("--opens")?.parse().map_err(|_| "bad --opens".to_string())?;
            }
            "--threads" => {
                cfg.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads".to_string())?;
            }
            "--out" => out = value("--out")?,
            "--min-open-speedup" => {
                min_speedup = Some(
                    value("--min-open-speedup")?
                        .parse::<f64>()
                        .map_err(|_| "bad --min-open-speedup".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.arity == 0 {
        return Err("--arity must be positive".to_string());
    }
    if cfg.sessions == 0 {
        return Err("--sessions must be positive".to_string());
    }
    if cfg.opens == 0 {
        return Err("--opens must be positive".to_string());
    }
    cfg.k_positive = rules / 2;
    cfg.k_negative = rules - rules / 2;
    if cfg.sessions >= cfg.k_positive {
        return Err("--sessions must be smaller than the positive rule budget".to_string());
    }
    Ok((cfg, out, min_speedup))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out, min_speedup) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("concurrent_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&cfg);
    report.print_table();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("concurrent_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    if !report.all_identical() {
        eprintln!(
            "concurrent_bench: a concurrent fork diverged bitwise from its \
             independent from-scratch estimate!"
        );
        return ExitCode::FAILURE;
    }
    if let Some(bar) = min_speedup {
        let new_secs = report.analyst_new.as_secs_f64();
        if new_secs < GATE_FLOOR_SECONDS {
            println!(
                "min-open-speedup gate skipped: full Analyst::new baseline \
                 ({:.1} ms) is below the {:.0} ms timing floor",
                new_secs * 1e3,
                GATE_FLOOR_SECONDS * 1e3
            );
        } else if report.open_speedup < bar {
            eprintln!(
                "concurrent_bench: open speedup {:.1}x is below the \
                 --min-open-speedup bar {bar:.1}x",
                report.open_speedup
            );
            return ExitCode::FAILURE;
        } else {
            println!(
                "min-open-speedup gate passed: {:.0}x >= {bar:.1}x",
                report.open_speedup
            );
        }
    }
    ExitCode::SUCCESS
}
