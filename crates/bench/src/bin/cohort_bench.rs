//! `cohort_bench` — open-loop idle-cohort scaling bench of the reactor
//! backend.
//!
//! ```text
//! cargo run --release -p pm-bench --bin cohort_bench -- [options]
//!
//!     --connections N     handshaken connections to hold     [default: 5000]
//!     --tenants N         tenant ids the cohort hashes into  [default: 64]
//!     --rounds N          ping sweeps over the full cohort   [default: 3]
//!     --workers N         reactor dispatch workers           [default: 4]
//!     --out PATH          JSON report path      [default: BENCH_cohort.json]
//!     --min-conns N       fail unless the cohort reached N connections
//!                                                            [default: off]
//!     --max-threads N     fail unless the server held the cohort on at
//!                         most N fixed threads               [default: off]
//!     --max-accept-ratio X  fail when accept p50 (last decile / first
//!                         decile) exceeds X                  [default: off]
//!     --max-ping-ratio X  fail when ping p50 (last sweep / first sweep)
//!                         exceeds X                          [default: off]
//! ```
//!
//! The ratio gates measure *flatness*: a server whose accept or ping cost
//! grows with cohort size fails them long before it runs out of anything.
//! Bounds should stay generous — `poll(2)` rescans every registered fd per
//! cycle, so some O(n) drift is inherent to the backend; the gate exists to
//! catch super-linear regressions (lock convoys, per-connection threads
//! sneaking back in), not scheduler noise.

use std::process::ExitCode;

use pm_bench::cohort::{run, CohortBenchConfig};

struct Gates {
    min_conns: Option<usize>,
    max_threads: Option<usize>,
    max_accept_ratio: Option<f64>,
    max_ping_ratio: Option<f64>,
}

fn parse(argv: &[String]) -> Result<(CohortBenchConfig, String, Gates), String> {
    let mut cfg = CohortBenchConfig::default();
    let mut out = "BENCH_cohort.json".to_string();
    let mut gates = Gates {
        min_conns: None,
        max_threads: None,
        max_accept_ratio: None,
        max_ping_ratio: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--connections" => {
                cfg.connections = value("--connections")?
                    .parse()
                    .map_err(|_| "bad --connections".to_string())?;
            }
            "--tenants" => {
                cfg.tenants =
                    value("--tenants")?.parse().map_err(|_| "bad --tenants".to_string())?;
            }
            "--rounds" => {
                cfg.rounds =
                    value("--rounds")?.parse().map_err(|_| "bad --rounds".to_string())?;
            }
            "--workers" => {
                cfg.workers =
                    value("--workers")?.parse().map_err(|_| "bad --workers".to_string())?;
            }
            "--out" => out = value("--out")?,
            "--min-conns" => {
                gates.min_conns = Some(
                    value("--min-conns")?.parse().map_err(|_| "bad --min-conns".to_string())?,
                );
            }
            "--max-threads" => {
                gates.max_threads = Some(
                    value("--max-threads")?
                        .parse()
                        .map_err(|_| "bad --max-threads".to_string())?,
                );
            }
            "--max-accept-ratio" => {
                gates.max_accept_ratio = Some(
                    value("--max-accept-ratio")?
                        .parse()
                        .map_err(|_| "bad --max-accept-ratio".to_string())?,
                );
            }
            "--max-ping-ratio" => {
                gates.max_ping_ratio = Some(
                    value("--max-ping-ratio")?
                        .parse()
                        .map_err(|_| "bad --max-ping-ratio".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.connections == 0 || cfg.tenants == 0 || cfg.workers == 0 {
        return Err("--connections, --tenants and --workers must be positive".to_string());
    }
    Ok((cfg, out, gates))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out, gates) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("cohort_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&cfg);
    report.print_table();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("cohort_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");

    let mut failed = false;
    if let Some(bar) = gates.min_conns {
        if report.idle.connections < bar {
            eprintln!(
                "cohort_bench: held {} connection(s), below the --min-conns bar {bar}",
                report.idle.connections
            );
            failed = true;
        } else {
            println!("min-conns gate passed: {} >= {bar}", report.idle.connections);
        }
    }
    if let Some(bar) = gates.max_threads {
        if report.io_threads > bar {
            eprintln!(
                "cohort_bench: {} fixed server thread(s) exceeds the --max-threads bar {bar}",
                report.io_threads
            );
            failed = true;
        } else {
            println!("max-threads gate passed: {} <= {bar}", report.io_threads);
        }
    }
    if let Some(bar) = gates.max_accept_ratio {
        if report.accept_ratio > bar {
            eprintln!(
                "cohort_bench: accept flatness ratio {:.2} exceeds the \
                 --max-accept-ratio bar {bar:.2}",
                report.accept_ratio
            );
            failed = true;
        } else {
            println!(
                "max-accept-ratio gate passed: {:.2} <= {bar:.2}",
                report.accept_ratio
            );
        }
    }
    if let Some(bar) = gates.max_ping_ratio {
        if report.ping_ratio > bar {
            eprintln!(
                "cohort_bench: ping drift ratio {:.2} exceeds the --max-ping-ratio \
                 bar {bar:.2}",
                report.ping_ratio
            );
            failed = true;
        } else {
            println!("max-ping-ratio gate passed: {:.2} <= {bar:.2}", report.ping_ratio);
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
