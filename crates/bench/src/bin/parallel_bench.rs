//! `parallel_bench` — thread sweep of the parallel component solver.
//!
//! ```text
//! cargo run --release -p pm-bench --bin parallel_bench -- [options]
//!
//!     --scale quick|full  workload scale (2,500 / 14,210 records) [default: quick]
//!     --seed N            generator seed                          [default: 1]
//!     --threads LIST      comma-separated thread counts to sweep  [default: 1,2,4]
//!     --batch-costs LIST  comma-separated batching cost floors
//!                         (`EngineConfig::batch_min_cost`) to sweep; the
//!                         sweep runs every threads × batch-costs combo
//!                         against the unbatched 1-thread baseline
//!                                                          [default: 0,1024]
//!     --arity T           exact antecedent arity of mined rules   [default: 4]
//!     --rules N           knowledge rules, split (N/2)+ (N/2)−    [default: 100]
//!     --out PATH          JSON report path        [default: BENCH_parallel.json]
//!     --min-speedup X     fail unless some sweep run with a thread count the
//!                         host can actually supply (available_parallelism ≥
//!                         threads) reaches speedup ≥ X. If no run is
//!                         eligible — e.g. a single-core host asked to gate a
//!                         multi-thread sweep — the gate FAILS rather than
//!                         skipping: a gate that cannot observe what it gates
//!                         has not passed. Arming the gate also fails the run
//!                         on any eligible regression (a threaded run slower
//!                         than one thread, or >10% extra total solver time).
//!                         Run gateless hosts without this flag.
//!                                                          [default: off]
//! ```
//!
//! Prints the sweep table to stdout and writes the machine-readable report
//! (wall time, components, threads, speedup, bit-identity) to `--out`.

use std::process::ExitCode;

use pm_bench::parallel::{run, ParallelBenchConfig};
use pm_bench::pipeline::Scale;

fn parse(argv: &[String]) -> Result<(ParallelBenchConfig, String, Option<f64>), String> {
    let mut cfg = ParallelBenchConfig::default();
    let mut rules = 100usize;
    let mut out = "BENCH_parallel.json".to_string();
    let mut min_speedup = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                cfg.seed = value("--seed")?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--threads" => {
                cfg.threads = value("--threads")?
                    .split(',')
                    .map(|s| s.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --threads list".to_string())?;
            }
            "--batch-costs" => {
                cfg.batch_costs = value("--batch-costs")?
                    .split(',')
                    .map(|s| s.trim().parse::<u64>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "bad --batch-costs list".to_string())?;
            }
            "--arity" => {
                cfg.arity = value("--arity")?.parse().map_err(|_| "bad --arity".to_string())?;
            }
            "--rules" => {
                rules = value("--rules")?.parse().map_err(|_| "bad --rules".to_string())?;
            }
            "--out" => out = value("--out")?,
            "--min-speedup" => {
                min_speedup = Some(
                    value("--min-speedup")?
                        .parse::<f64>()
                        .map_err(|_| "bad --min-speedup".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.threads.is_empty() {
        return Err("--threads list must be non-empty".to_string());
    }
    if cfg.batch_costs.is_empty() {
        return Err("--batch-costs list must be non-empty".to_string());
    }
    if cfg.arity == 0 {
        return Err("--arity must be positive".to_string());
    }
    cfg.k_positive = rules / 2;
    cfg.k_negative = rules - rules / 2;
    Ok((cfg, out, min_speedup))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out, min_speedup) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("parallel_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&cfg);
    report.print_table();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("parallel_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    if report.runs.iter().any(|r| !r.identical_to_baseline) {
        eprintln!("parallel_bench: a run diverged from the 1-thread baseline!");
        return ExitCode::FAILURE;
    }
    if let Some(bar) = min_speedup {
        // Only runs the host can genuinely parallelise count toward the gate.
        let eligible: Vec<_> = report
            .runs
            .iter()
            .filter(|r| r.threads > 1 && r.threads <= report.available_parallelism)
            .collect();
        if eligible.is_empty() {
            // An armed gate that cannot observe a single eligible run has
            // not passed — fail loudly instead of the old silent self-skip,
            // which let a 1-core recording masquerade as a green sweep.
            eprintln!(
                "parallel_bench: --min-speedup {bar:.2} is armed but the host has \
                 {} core(s) and no multi-threaded run is eligible; run this gate \
                 on a multi-core host (or drop --min-speedup for a gateless \
                 recording)",
                report.available_parallelism
            );
            return ExitCode::FAILURE;
        }
        if let Some(r) = eligible.iter().find(|r| r.regressed()) {
            eprintln!(
                "parallel_bench: {} threads (batch cost {}) REGRESSED — {:.2}x \
                 baseline wall, {:.2}x baseline solver time",
                r.threads, r.batch_cost, r.speedup, r.solver_ratio
            );
            return ExitCode::FAILURE;
        }
        let best = eligible.iter().map(|r| r.speedup).fold(0.0f64, f64::max);
        if best < bar {
            eprintln!(
                "parallel_bench: best eligible speedup {best:.2}x is below the \
                 --min-speedup bar {bar:.2}x"
            );
            return ExitCode::FAILURE;
        }
        println!("min-speedup gate passed: best eligible speedup {best:.2}x >= {bar:.2}x");
    }
    ExitCode::SUCCESS
}
