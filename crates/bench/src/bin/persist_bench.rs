//! `persist_bench` — cold snapshot load + WAL replay vs artifact rebuild.
//!
//! ```text
//! cargo run --release -p pm-bench --bin persist_bench -- [options]
//!
//!     --scale quick|full      workload scale (2,500 / 14,210 records) [default: quick]
//!     --seed N                generator seed                          [default: 1]
//!     --repeats N             timing repeats behind each median       [default: 3]
//!     --epochs N              WAL epochs journaled then replayed      [default: 6]
//!     --threads N             engine worker threads                   [default: 1]
//!     --out PATH              JSON report path         [default: BENCH_persist.json]
//!     --min-load-speedup X    fail unless the cold snapshot load is X times
//!                             faster than CompiledTable::build. Self-skipping:
//!                             when the build baseline is too fast to time
//!                             reliably (< 20 ms) the gate is skipped with a
//!                             note, so tiny smoke workloads don't flake — the
//!                             Adult-scale CI run enforces it.   [default: off]
//! ```
//!
//! Always fails if the loaded artifact is not bit-identical to the built
//! one, or the recovered artifact is not bit-identical to the live epoch
//! chain it journals.

use std::process::ExitCode;

use pm_bench::persist::{run, PersistBenchConfig};
use pm_bench::pipeline::Scale;

/// Minimum `CompiledTable::build` wall time for the speedup gate to be
/// meaningful.
const GATE_FLOOR_SECONDS: f64 = 0.020;

fn parse(argv: &[String]) -> Result<(PersistBenchConfig, String, Option<f64>), String> {
    let mut cfg = PersistBenchConfig::default();
    let mut out = "BENCH_persist.json".to_string();
    let mut min_speedup = None;
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next().cloned().ok_or_else(|| format!("{name} expects a value"))
        };
        match flag.as_str() {
            "--scale" => {
                cfg.scale = match value("--scale")?.as_str() {
                    "quick" => Scale::Quick,
                    "full" => Scale::Full,
                    other => return Err(format!("unknown scale `{other}`")),
                };
            }
            "--seed" => {
                cfg.seed = value("--seed")?.parse().map_err(|_| "bad --seed".to_string())?;
            }
            "--repeats" => {
                cfg.repeats =
                    value("--repeats")?.parse().map_err(|_| "bad --repeats".to_string())?;
            }
            "--epochs" => {
                cfg.epochs =
                    value("--epochs")?.parse().map_err(|_| "bad --epochs".to_string())?;
            }
            "--threads" => {
                cfg.threads =
                    value("--threads")?.parse().map_err(|_| "bad --threads".to_string())?;
            }
            "--out" => out = value("--out")?,
            "--min-load-speedup" => {
                min_speedup = Some(
                    value("--min-load-speedup")?
                        .parse::<f64>()
                        .map_err(|_| "bad --min-load-speedup".to_string())?,
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if cfg.repeats == 0 {
        return Err("--repeats must be positive".to_string());
    }
    if cfg.epochs == 0 {
        return Err("--epochs must be positive".to_string());
    }
    Ok((cfg, out, min_speedup))
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (cfg, out, min_speedup) = match parse(&argv) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("persist_bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = run(&cfg);
    report.print_table();
    if let Err(e) = std::fs::write(&out, report.to_json()) {
        eprintln!("persist_bench: cannot write {out}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out}");
    if !report.identical {
        eprintln!(
            "persist_bench: the loaded or recovered artifact diverged bitwise \
             from the in-memory one!"
        );
        return ExitCode::FAILURE;
    }
    if let Some(bar) = min_speedup {
        let build_secs = report.build.as_secs_f64();
        if build_secs < GATE_FLOOR_SECONDS {
            println!(
                "min-load-speedup gate skipped: CompiledTable::build baseline \
                 ({:.1} ms) is below the {:.0} ms timing floor",
                build_secs * 1e3,
                GATE_FLOOR_SECONDS * 1e3
            );
        } else if report.load_speedup < bar {
            eprintln!(
                "persist_bench: load speedup {:.1}x is below the \
                 --min-load-speedup bar {bar:.1}x",
                report.load_speedup
            );
            return ExitCode::FAILURE;
        } else {
            println!(
                "min-load-speedup gate passed: {:.1}x >= {bar:.1}x",
                report.load_speedup
            );
        }
    }
    ExitCode::SUCCESS
}
