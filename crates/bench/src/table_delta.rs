//! Live-table epoch benchmark: `TableDelta` + rebase vs from-scratch
//! recompilation.
//!
//! The live-table design claims that a single-record delta at Adult scale —
//! `CompiledTable::apply` (recompile only the touched buckets) +
//! `Analyst::rebase` (recompile only the rules the delta could have
//! changed) + `refresh` (re-solve only the components the delta dirtied) —
//! beats compiling the post-delta table from scratch and replaying the
//! session's knowledge set by an order of magnitude. This module measures
//! exactly that: it opens a session holding an Adult-scale Top-(K+, K−)
//! workload, then applies single-record deltas (inserts, retractions, bucket
//! moves in rotation), timing each `apply + rebase + refresh` against a
//! from-scratch `CompiledTable::build` + knowledge replay + refresh of the
//! same post-delta table — and bit-compares the two estimates, because the
//! speedup claim is only meaningful if the answers are identical.
//!
//! One machine-readable JSON report (`BENCH_table_delta.json` by
//! convention) records it all.

use std::sync::Arc;
use std::time::{Duration, Instant};

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::Analyst;
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::delta::TableDelta;
use privacy_maxent::engine::EngineConfig;
use privacy_maxent::knowledge::Knowledge;

use crate::pipeline::Scale;

/// Configuration of one table-delta sweep.
#[derive(Debug, Clone)]
pub struct TableDeltaBenchConfig {
    /// Workload scale (record count).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Exact antecedent arity of the mined knowledge (the paper's `T`).
    pub arity: usize,
    /// Top-K+ rule budget.
    pub k_positive: usize,
    /// Top-K− rule budget.
    pub k_negative: usize,
    /// How many single-record deltas to measure (inserts, retractions and
    /// moves in rotation).
    pub deltas: usize,
    /// Worker threads for both paths.
    pub threads: usize,
}

impl Default for TableDeltaBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 1,
            arity: 4,
            k_positive: 150,
            k_negative: 150,
            deltas: 6,
            threads: 1,
        }
    }
}

fn engine_config(threads: usize) -> EngineConfig {
    // Mirrors the figure experiments: mined knowledge is always feasible
    // but boundary-heavy systems converge asymptotically, so the residual
    // gate is left open (see `crate::figures::engine_config`).
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(threads)
        .build()
}

/// Deterministically picks the `i`-th single-record delta from the current
/// table: records are drawn from the table's own multisets (so retraction
/// and move claims hold), rotating insert / retract / move.
fn pick_delta(table: &PublishedTable, i: usize) -> (TableDelta, &'static str) {
    let m = table.num_buckets();
    let b = (i * 379 + 17) % m;
    let bucket = table.bucket(b);
    let q = bucket.qi_counts()[(i * 53) % bucket.distinct_qi()].0;
    let s = bucket.sa_counts()[(i * 31) % bucket.distinct_sa()].0;
    let tuple = table.interner().tuple(q).to_vec();
    match i % 3 {
        0 => (TableDelta::new().insert(tuple, s, (b + 1) % m), "insert"),
        1 => (TableDelta::new().retract(tuple, s, b), "retract"),
        _ => (TableDelta::new().move_record(tuple, s, b, (b + 1) % m), "move"),
    }
}

/// One measured single-record delta.
#[derive(Debug, Clone)]
pub struct DeltaEpochRun {
    /// Which operation the delta performed (`insert` / `retract` / `move`).
    pub kind: String,
    /// Wall time of `CompiledTable::apply` (epoch advance).
    pub apply: Duration,
    /// Wall time of `Analyst::rebase`.
    pub rebase: Duration,
    /// Wall time of the follow-up `refresh`.
    pub refresh: Duration,
    /// Wall time of the from-scratch comparator: `CompiledTable::build` of
    /// the post-delta table + knowledge replay + refresh.
    pub from_scratch: Duration,
    /// Portion of `from_scratch` spent in `CompiledTable::build` alone.
    pub from_scratch_build: Duration,
    /// `from_scratch / (apply + rebase + refresh)`.
    pub speedup: f64,
    /// Buckets the epoch advance recompiled.
    pub recompiled_buckets: usize,
    /// Knowledge rules the rebase recompiled.
    pub recompiled_rules: usize,
    /// Components the refresh re-solved numerically.
    pub resolved: usize,
    /// Dirty irrelevant components refilled closed-form.
    pub closed_form: usize,
    /// Clean components reused verbatim.
    pub reused: usize,
    /// Whether the rebased estimate is bit-identical to the from-scratch
    /// compile-and-replay of the post-delta table.
    pub identical_to_scratch: bool,
}

impl DeltaEpochRun {
    /// The full incremental path: `apply + rebase + refresh`.
    pub fn incremental(&self) -> Duration {
        self.apply + self.rebase + self.refresh
    }
}

/// The full report — everything `BENCH_table_delta.json` records.
#[derive(Debug, Clone)]
pub struct TableDeltaBenchReport {
    /// Workload scale label (`"quick"` / `"full"`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Records in the workload (at epoch 0).
    pub records: usize,
    /// Buckets in the publication.
    pub buckets: usize,
    /// Antecedent arity of the mined knowledge.
    pub arity: usize,
    /// Background-knowledge rules held by the session.
    pub rules: usize,
    /// Worker threads used by both paths.
    pub threads: usize,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// Components in the session partition before the first delta.
    pub components: usize,
    /// Wall time of the epoch-0 `CompiledTable::build`.
    pub initial_build: Duration,
    /// The measured deltas, in application order.
    pub runs: Vec<DeltaEpochRun>,
}

impl TableDeltaBenchReport {
    /// Median over the per-delta speedups (robust to one noisy run).
    pub fn median_speedup(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let mut s: Vec<f64> = self.runs.iter().map(|r| r.speedup).collect();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    /// Whether every delta reproduced the from-scratch bits.
    pub fn all_identical(&self) -> bool {
        self.runs.iter().all(|r| r.identical_to_scratch)
    }

    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"table_delta\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"records\": {},\n", self.records));
        s.push_str(&format!("  \"buckets\": {},\n", self.buckets));
        s.push_str(&format!("  \"arity\": {},\n", self.arity));
        s.push_str(&format!("  \"rules\": {},\n", self.rules));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"components\": {},\n", self.components));
        s.push_str(&format!(
            "  \"initial_build_seconds\": {:.6},\n",
            self.initial_build.as_secs_f64()
        ));
        s.push_str(&format!("  \"median_speedup\": {:.3},\n", self.median_speedup()));
        s.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        s.push_str("  \"deltas\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"kind\": \"{}\", \"apply_seconds\": {:.6}, \
                 \"rebase_seconds\": {:.6}, \"refresh_seconds\": {:.6}, \
                 \"incremental_seconds\": {:.6}, \"from_scratch_seconds\": {:.6}, \
                 \"from_scratch_build_seconds\": {:.6}, \"speedup\": {:.3}, \
                 \"recompiled_buckets\": {}, \"recompiled_rules\": {}, \
                 \"resolved\": {}, \"closed_form\": {}, \"reused\": {}, \
                 \"identical_to_scratch\": {}}}{}\n",
                r.kind,
                r.apply.as_secs_f64(),
                r.rebase.as_secs_f64(),
                r.refresh.as_secs_f64(),
                r.incremental().as_secs_f64(),
                r.from_scratch.as_secs_f64(),
                r.from_scratch_build.as_secs_f64(),
                r.speedup,
                r.recompiled_buckets,
                r.recompiled_rules,
                r.resolved,
                r.closed_form,
                r.reused,
                r.identical_to_scratch,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable table (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "table-delta epochs — {} scale, seed {}: {} records, {} buckets, \
             {} arity-{} rules, {} thread(s)",
            self.scale, self.seed, self.records, self.buckets, self.rules, self.arity,
            self.threads
        );
        println!(
            "{} components; epoch-0 CompiledTable::build: {:.1} ms",
            self.components,
            self.initial_build.as_secs_f64() * 1e3
        );
        println!(
            "{:>6}  {:>8}  {:>10}  {:>11}  {:>12}  {:>12}  {:>8}  {:>13}  {:>9}",
            "delta", "kind", "incr (ms)", "apply (ms)", "refresh (ms)", "scratch (ms)",
            "speedup", "bkts/rules", "identical"
        );
        for (i, r) in self.runs.iter().enumerate() {
            println!(
                "{:>6}  {:>8}  {:>10.3}  {:>11.3}  {:>12.3}  {:>12.3}  {:>7.1}x  {:>6}/{:<6}  {:>9}",
                i + 1,
                r.kind,
                r.incremental().as_secs_f64() * 1e3,
                r.apply.as_secs_f64() * 1e3,
                r.refresh.as_secs_f64() * 1e3,
                r.from_scratch.as_secs_f64() * 1e3,
                r.speedup,
                r.recompiled_buckets,
                r.recompiled_rules,
                r.identical_to_scratch,
            );
        }
        println!("median speedup: {:.1}x", self.median_speedup());
    }
}

/// Runs the sweep: open a session with the full knowledge set, then advance
/// the table one single-record delta at a time, comparing each epoch's
/// `apply + rebase + refresh` against a from-scratch compile-and-replay of
/// the post-delta table.
pub fn run(cfg: &TableDeltaBenchConfig) -> TableDeltaBenchReport {
    let data = AdultGenerator::new(AdultGeneratorConfig {
        records: cfg.scale.records(),
        seed: cfg.seed,
    })
    .generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at bench scale");
    let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![cfg.arity] })
        .mine(&data);
    let items: Vec<Knowledge> = mined
        .top_k(cfg.k_positive, cfg.k_negative)
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    let config = engine_config(cfg.threads);

    // Warmup build (page everything in), then the measured epoch-0 build.
    let _ = CompiledTable::build(table.clone(), config.clone()).expect("baseline solves");
    let t = Instant::now();
    let mut artifact = Arc::new(
        CompiledTable::build(table, config.clone()).expect("baseline solves"),
    );
    let initial_build = t.elapsed();

    let mut session = Analyst::open(Arc::clone(&artifact));
    session.add_knowledge_batch(&items).expect("mined knowledge compiles");
    session.refresh().expect("mined knowledge is feasible");

    let mut report = TableDeltaBenchReport {
        scale: match cfg.scale {
            Scale::Full => "full".to_string(),
            Scale::Quick => "quick".to_string(),
        },
        seed: cfg.seed,
        records: artifact.table().total_records(),
        buckets: artifact.table().num_buckets(),
        arity: cfg.arity,
        rules: items.len(),
        threads: cfg.threads,
        available_parallelism: pm_parallel::available_parallelism(),
        components: session.num_components(),
        initial_build,
        runs: Vec::new(),
    };

    for i in 0..cfg.deltas {
        let (delta, kind) = pick_delta(artifact.table(), i);

        // Incremental: epoch advance + rebase + refresh.
        let t = Instant::now();
        let next = Arc::new(artifact.apply(&delta).expect("delta picks valid records"));
        let apply = t.elapsed();
        let t = Instant::now();
        let rebase_stats = session.rebase(&next).expect("mined rules survive the delta");
        let rebase = t.elapsed();
        let t = Instant::now();
        let refresh_stats = session.refresh().expect("delta is feasible");
        let refresh = t.elapsed();
        artifact = next;

        // From scratch: build the post-delta table, replay the knowledge.
        let final_items: Vec<Knowledge> =
            session.knowledge().map(|(_, k)| k.clone()).collect();
        let t = Instant::now();
        let scratch_artifact = Arc::new(
            CompiledTable::build(artifact.table().clone(), config.clone())
                .expect("baseline solves"),
        );
        let from_scratch_build = t.elapsed();
        let mut scratch = Analyst::open(Arc::clone(&scratch_artifact));
        scratch.add_knowledge_batch(&final_items).expect("knowledge compiles");
        scratch.refresh().expect("feasible");
        let from_scratch = t.elapsed();

        let incremental = apply + rebase + refresh;
        report.runs.push(DeltaEpochRun {
            kind: kind.to_string(),
            apply,
            rebase,
            refresh,
            from_scratch,
            from_scratch_build,
            speedup: from_scratch.as_secs_f64() / incremental.as_secs_f64(),
            recompiled_buckets: artifact.stats().recompiled_buckets,
            recompiled_rules: rebase_stats.recompiled,
            resolved: refresh_stats.resolved,
            closed_form: refresh_stats.closed_form,
            reused: refresh_stats.reused,
            identical_to_scratch: session.estimate().term_values()
                == scratch.estimate().term_values(),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> TableDeltaBenchReport {
        TableDeltaBenchReport {
            scale: "quick".into(),
            seed: 7,
            records: 100,
            buckets: 20,
            arity: 4,
            rules: 10,
            threads: 1,
            available_parallelism: 8,
            components: 15,
            initial_build: Duration::from_millis(12),
            runs: vec![
                DeltaEpochRun {
                    kind: "insert".into(),
                    apply: Duration::from_micros(100),
                    rebase: Duration::from_micros(150),
                    refresh: Duration::from_micros(250),
                    from_scratch: Duration::from_millis(25),
                    from_scratch_build: Duration::from_millis(11),
                    speedup: 50.0,
                    recompiled_buckets: 2,
                    recompiled_rules: 1,
                    resolved: 1,
                    closed_form: 1,
                    reused: 13,
                    identical_to_scratch: true,
                },
                DeltaEpochRun {
                    kind: "move".into(),
                    apply: Duration::from_micros(120),
                    rebase: Duration::from_micros(130),
                    refresh: Duration::from_micros(750),
                    from_scratch: Duration::from_millis(20),
                    from_scratch_build: Duration::from_millis(10),
                    speedup: 20.0,
                    recompiled_buckets: 2,
                    recompiled_rules: 0,
                    resolved: 2,
                    closed_form: 0,
                    reused: 13,
                    identical_to_scratch: true,
                },
            ],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"table_delta\""));
        assert!(j.contains("\"initial_build_seconds\": 0.012000"));
        assert!(j.contains("\"median_speedup\": 50.000"));
        assert!(j.contains("\"all_identical\": true"));
        assert!(j.contains("\"kind\": \"insert\""));
        assert!(j.contains("\"incremental_seconds\": 0.000500"));
        assert!(j.contains("\"recompiled_buckets\": 2"));
        // Exactly one trailing comma between the two delta rows.
        assert_eq!(j.matches("},\n").count(), 1);
    }

    #[test]
    fn median_and_identity_helpers() {
        let mut r = tiny_report();
        assert_eq!(r.median_speedup(), 50.0, "upper median of two");
        assert!(r.all_identical());
        r.runs[1].identical_to_scratch = false;
        assert!(!r.all_identical());
        r.runs.clear();
        assert_eq!(r.median_speedup(), 0.0);
    }

    #[test]
    fn table_print_does_not_panic() {
        tiny_report().print_table();
    }

    /// A miniature end-to-end sweep: every epoch recompiles a strict subset
    /// of the buckets and reproduces the from-scratch bits, and the JSON
    /// serialises.
    #[test]
    fn quick_sweep_is_exact() {
        let cfg = TableDeltaBenchConfig {
            scale: Scale::Quick,
            k_positive: 20,
            k_negative: 20,
            deltas: 3,
            ..Default::default()
        };
        let report = run(&cfg);
        assert_eq!(report.runs.len(), 3);
        assert!(report.all_identical(), "an epoch diverged from from-scratch bits");
        for r in &report.runs {
            assert!(
                r.recompiled_buckets < report.buckets / 4,
                "a single-record delta recompiled {} of {} buckets",
                r.recompiled_buckets,
                report.buckets
            );
            assert!(r.reused > 0, "nothing was reused across the epoch");
        }
        assert!(!report.to_json().is_empty());
    }
}
