//! Shared experiment pipeline: generate → bucketize → mine → estimate.

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinedRules, MinerConfig, RuleMiner};
use pm_assoc::rule::AssociationRule;
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use pm_microdata::dataset::Dataset;
use pm_microdata::distribution::QiSaDistribution;
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;
use privacy_maxent::metrics::estimation_accuracy;

/// Scale of an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Paper scale: 14,210 records / 2,842 buckets / arities 1..=8.
    Full,
    /// Laptop-quick scale for CI and iteration: 2,500 records.
    Quick,
}

impl Scale {
    /// Records generated at this scale.
    pub fn records(self) -> usize {
        match self {
            Self::Full => 14_210,
            Self::Quick => 2_500,
        }
    }

    /// Antecedent arities mined at this scale.
    pub fn arities(self) -> Vec<usize> {
        match self {
            Self::Full => (1..=8).collect(),
            Self::Quick => (1..=3).collect(),
        }
    }
}

/// Everything the figure experiments need, computed once.
pub struct ExperimentData {
    /// The original (synthetic Adult) data.
    pub data: Dataset,
    /// Its ground-truth joint distribution.
    pub truth: QiSaDistribution,
    /// The bucketized publication (5-diversity, buckets of five).
    pub table: PublishedTable,
    /// All mined rules, both polarities, strongest-first.
    pub rules: MinedRules,
}

/// Builds the shared experiment inputs.
pub fn prepare(scale: Scale, seed: u64) -> ExperimentData {
    let data = AdultGenerator::new(AdultGeneratorConfig { records: scale.records(), seed })
        .generate();
    let truth = QiSaDistribution::from_dataset(&data).expect("dataset has an SA");
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at paper scale");
    let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: scale.arities() })
        .mine(&data);
    ExperimentData { data, truth, table, rules }
}

/// Runs the maxent estimate for a rule selection and returns the
/// estimation accuracy plus solve statistics.
pub fn accuracy_for_rules(
    exp: &ExperimentData,
    rules: &[&AssociationRule],
    config: EngineConfig,
) -> (f64, privacy_maxent::engine::EngineStats) {
    let kb = KnowledgeBase::from_rules(rules.iter().copied(), exp.data.schema())
        .expect("mined rules are valid knowledge");
    let engine = Engine::new(config);
    let est = engine.estimate(&exp.table, &kb).expect("mined knowledge is feasible");
    let acc = estimation_accuracy(&exp.truth, &est);
    (acc, est.stats.clone())
}
