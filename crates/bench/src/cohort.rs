//! Open-loop idle-cohort benchmark of the reactor serving backend.
//!
//! The closed-loop `serve` bench measures throughput under saturation;
//! this one measures the opposite regime — the workload the readiness
//! loop exists for. It boots a real [`pm_serve::server::Server`] on the
//! reactor backend, opens thousands of handshaken connections that then
//! sit **idle**, and asks two questions the threads-per-connection
//! backend cannot answer well:
//!
//! 1. **Fixed threads.** Does the server hold the whole cohort on
//!    `workers + 1` threads, independent of connection count? (The
//!    threaded backend would need `2 × connections`.)
//! 2. **Flat latency.** Does accepting connection 4,500 cost what
//!    accepting connection 50 cost, and does a ping round-trip stay flat
//!    while thousands of other sockets are registered with the event
//!    loop?
//!
//! The driver is [`pm_serve::loadgen::run_idle`]; one machine-readable
//! JSON report (`BENCH_cohort.json` by convention) records the accept
//! deciles and per-sweep ping percentiles, plus the flatness ratios the
//! CI gate arms.

use std::sync::Arc;

use pm_anonymize::fixtures::paper_example;
use pm_serve::loadgen::{run_idle, IdleOptions, IdleReport};
use pm_serve::registry::{Limits, Registry};
use pm_serve::server::{Backend, Server};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::EngineConfig;

/// Configuration of one cohort run.
#[derive(Debug, Clone)]
pub struct CohortBenchConfig {
    /// Connections to open, handshake and hold.
    pub connections: usize,
    /// Distinct tenant ids the connections hash into.
    pub tenants: usize,
    /// Ping sweeps over the assembled cohort.
    pub rounds: usize,
    /// Reactor dispatch workers (total server threads = workers + 1).
    pub workers: usize,
}

impl Default for CohortBenchConfig {
    fn default() -> Self {
        Self { connections: 5000, tenants: 64, rounds: 3, workers: 4 }
    }
}

/// The full report — everything `BENCH_cohort.json` records.
#[derive(Debug, Clone)]
pub struct CohortBenchReport {
    /// Fixed server thread count (event loop + workers), from
    /// [`Server::io_threads`].
    pub io_threads: usize,
    /// Reactor dispatch workers configured.
    pub workers: usize,
    /// Tenant ids the cohort hashed into.
    pub tenants: usize,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// `accept_late_p50 / accept_early_p50` — ~1.0 when accepting into a
    /// ~full cohort costs what accepting into an empty one did. The early
    /// median is floored at 1 µs so timer quantisation cannot explode the
    /// ratio.
    pub accept_ratio: f64,
    /// `last sweep p50 / first sweep p50` — ping drift across sweeps,
    /// same 1 µs floor.
    pub ping_ratio: f64,
    /// What the driver observed (connections, accept deciles, sweeps).
    pub idle: IdleReport,
}

/// Runs the cohort: a tiny Figure 1 artifact (hellos should be cheap — the
/// subject is socket scale, not solver scale), a reactor server sized for
/// the cohort, then [`run_idle`].
///
/// # Panics
///
/// Panics when the workload cannot be built, the server cannot bind, or a
/// connection/ping fails mid-run — bench-harness conditions, not
/// measurable outcomes.
#[must_use]
pub fn run(cfg: &CohortBenchConfig) -> CohortBenchReport {
    let (_, table) = paper_example();
    let config = EngineConfig::builder().threads(1).residual_limit(f64::INFINITY).build();
    let artifact = Arc::new(CompiledTable::build(table, config).expect("baseline solves"));
    let limits = Limits {
        max_connections: cfg.connections + 16,
        max_tenants: cfg.tenants.max(1) + 16,
        ..Limits::default()
    };
    let registry = Arc::new(Registry::new(artifact, None, limits));
    let mut server = Server::bind_with(
        "127.0.0.1:0",
        registry,
        Backend::Reactor { workers: cfg.workers },
    )
    .expect("loopback bind succeeds");
    let io_threads = server.io_threads().expect("the reactor reports a fixed thread count");

    let opts = IdleOptions {
        connections: cfg.connections,
        tenants: cfg.tenants,
        rounds: cfg.rounds,
    };
    let idle = run_idle(server.addr(), &opts).expect("idle cohort completes");
    server.shutdown();

    let floor = |us: f64| us.max(1.0);
    let accept_ratio = floor(idle.accept_late_p50_us) / floor(idle.accept_early_p50_us);
    let ping_ratio = match (idle.rounds.first(), idle.rounds.last()) {
        (Some(first), Some(last)) => floor(last.p50_us) / floor(first.p50_us),
        _ => 1.0,
    };

    CohortBenchReport {
        io_threads,
        workers: cfg.workers,
        tenants: cfg.tenants,
        available_parallelism: pm_parallel::available_parallelism(),
        accept_ratio,
        ping_ratio,
        idle,
    }
}

impl CohortBenchReport {
    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"cohort\",\n");
        s.push_str(&format!("  \"connections\": {},\n", self.idle.connections));
        s.push_str(&format!("  \"tenants\": {},\n", self.tenants));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"io_threads\": {},\n", self.io_threads));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!(
            "  \"accept_early_p50_us\": {:.1},\n",
            self.idle.accept_early_p50_us
        ));
        s.push_str(&format!(
            "  \"accept_late_p50_us\": {:.1},\n",
            self.idle.accept_late_p50_us
        ));
        s.push_str(&format!("  \"accept_p99_us\": {:.1},\n", self.idle.accept_p99_us));
        s.push_str(&format!("  \"accept_ratio\": {:.3},\n", self.accept_ratio));
        s.push_str(&format!("  \"ping_ratio\": {:.3},\n", self.ping_ratio));
        s.push_str("  \"ping_rounds\": [\n");
        for (i, round) in self.idle.rounds.iter().enumerate() {
            let comma = if i + 1 < self.idle.rounds.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"p50_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}{comma}\n",
                round.p50_us, round.p99_us, round.max_us
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!("  \"wall_seconds\": {:.6}\n", self.idle.wall_seconds));
        s.push_str("}\n");
        s
    }

    /// Human-readable summary (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "pmx serve idle cohort — {} connection(s) over {} tenant(s), held on \
             {} fixed thread(s) ({} worker(s) + 1 event loop) on {} core(s)",
            self.idle.connections,
            self.tenants,
            self.io_threads,
            self.workers,
            self.available_parallelism,
        );
        println!(
            "accept p50: {:.0} us (first decile) -> {:.0} us (last decile), ratio \
             {:.2}; accept p99 {:.0} us",
            self.idle.accept_early_p50_us,
            self.idle.accept_late_p50_us,
            self.accept_ratio,
            self.idle.accept_p99_us,
        );
        for (i, round) in self.idle.rounds.iter().enumerate() {
            println!(
                "ping sweep {i}: p50 {:.0} us, p99 {:.0} us, max {:.0} us",
                round.p50_us, round.p99_us, round.max_us
            );
        }
        println!(
            "ping drift (last/first sweep p50): {:.2}; {:.3} s wall",
            self.ping_ratio, self.idle.wall_seconds
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The real thing, scaled down: the shape every CI gate reads must hold
    // at 64 connections exactly as it does at 5,000.
    #[test]
    fn small_cohort_holds_on_fixed_threads() {
        let cfg = CohortBenchConfig { connections: 64, tenants: 8, rounds: 2, workers: 2 };
        let report = run(&cfg);
        assert_eq!(report.idle.connections, 64);
        assert_eq!(report.io_threads, 3, "2 workers + 1 event loop");
        assert_eq!(report.idle.rounds.len(), 2);
        assert!(report.accept_ratio.is_finite() && report.accept_ratio > 0.0);
        let j = report.to_json();
        assert!(j.contains("\"bench\": \"cohort\""));
        assert!(j.contains("\"connections\": 64"));
        assert!(j.contains("\"io_threads\": 3"));
        assert!(j.contains("\"ping_rounds\": ["));
        report.print_table();
    }
}
