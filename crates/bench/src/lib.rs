//! # pm-bench
//!
//! Experiment harness reproducing the evaluation of the Privacy-MaxEnt
//! paper (Figures 5, 6 and 7(a)–(c)), plus criterion micro-benches and
//! ablations. See `EXPERIMENTS.md` for paper-vs-measured results and
//! `DESIGN.md` for the per-experiment index.

pub mod pipeline;
pub mod figures;
pub mod incremental;
pub mod parallel;
pub mod concurrent;
pub mod table_delta;
pub mod persist;
pub mod serve;
pub mod cohort;
