//! Incremental-vs-from-scratch benchmark of the `Analyst` session.
//!
//! The resident-session redesign claims that a single-rule knowledge delta
//! at Adult scale re-solves ~1 dirty component instead of all ~950 relevant
//! ones. This module measures exactly that: it opens a session holding all
//! but the last few rules of an Adult-scale Top-(K+, K−) workload, then
//! feeds the remaining rules one at a time, timing each
//! `add_knowledge + refresh` against a from-scratch `Engine::estimate`
//! with the same final knowledge set — and bit-compares the two estimates,
//! because the speedup claim is only meaningful if the answers are
//! identical. A warm-started session (`EngineConfig::warm_start`) runs the
//! same deltas for comparison, reporting its maximum deviation from the
//! exact path.
//!
//! One machine-readable JSON report (`BENCH_incremental.json` by
//! convention) records it all.

use std::time::{Duration, Instant};

use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_anonymize::published::PublishedTable;
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::analyst::Analyst;
use privacy_maxent::engine::{Engine, EngineConfig, Estimate};
use privacy_maxent::knowledge::{Knowledge, KnowledgeBase};

use crate::pipeline::Scale;

/// Configuration of one incremental sweep.
#[derive(Debug, Clone)]
pub struct IncrementalBenchConfig {
    /// Workload scale (record count).
    pub scale: Scale,
    /// Generator seed.
    pub seed: u64,
    /// Exact antecedent arity of the mined knowledge (the paper's `T`).
    pub arity: usize,
    /// Top-K+ rule budget.
    pub k_positive: usize,
    /// Top-K− rule budget.
    pub k_negative: usize,
    /// How many single-rule deltas to measure (taken from the tail of the
    /// positive rules so each delta actually re-solves a component).
    pub deltas: usize,
    /// Worker threads for both the session and the from-scratch engine.
    pub threads: usize,
}

impl Default for IncrementalBenchConfig {
    fn default() -> Self {
        Self {
            scale: Scale::Quick,
            seed: 1,
            arity: 4,
            k_positive: 150,
            k_negative: 150,
            deltas: 5,
            threads: 1,
        }
    }
}

fn engine_config(threads: usize, warm_start: bool) -> EngineConfig {
    // Mirrors the figure experiments: mined knowledge is always feasible
    // but boundary-heavy systems converge asymptotically, so the residual
    // gate is left open (see `crate::figures::engine_config`).
    EngineConfig::builder()
        .residual_limit(f64::INFINITY)
        .threads(threads)
        .warm_start(warm_start)
        .build()
}

/// The generated workload: publication, session-order base knowledge, and
/// the single-rule deltas.
struct Workload {
    records: usize,
    table: PublishedTable,
    /// Knowledge held by the session before the measured deltas, in
    /// insertion order.
    base: Vec<Knowledge>,
    /// The measured single-rule deltas, applied in order after `base`.
    deltas: Vec<Knowledge>,
    rules: usize,
}

fn build_workload(cfg: &IncrementalBenchConfig) -> Workload {
    let data = AdultGenerator::new(AdultGeneratorConfig {
        records: cfg.scale.records(),
        seed: cfg.seed,
    })
    .generate();
    let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
        .publish(&data)
        .expect("bucketization succeeds at bench scale");
    let mined = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![cfg.arity] })
        .mine(&data);
    let picked = mined.top_k(cfg.k_positive, cfg.k_negative);
    let items: Vec<Knowledge> = picked
        .iter()
        .map(|r| Knowledge::from_rule(r, data.schema()).expect("mined rules are valid"))
        .collect();
    let rules = items.len();
    // Deltas come from the tail of the *positive* block (strong informative
    // rules that re-solve a real component); the split keeps session
    // insertion order = base order + delta order, which the from-scratch
    // comparator reproduces.
    let k_pos = cfg.k_positive.min(mined.positive.len());
    let n_deltas = cfg.deltas.min(k_pos);
    let delta_start = k_pos - n_deltas;
    let deltas: Vec<Knowledge> = items[delta_start..k_pos].to_vec();
    let base: Vec<Knowledge> = items[..delta_start]
        .iter()
        .chain(&items[k_pos..])
        .cloned()
        .collect();
    Workload { records: data.len(), table, base, deltas, rules }
}

/// One measured single-rule delta.
#[derive(Debug, Clone)]
pub struct DeltaRun {
    /// Wall time of `add_knowledge + refresh` on the resident session.
    pub incremental: Duration,
    /// Wall time of a from-scratch `Engine::estimate` with the same final
    /// knowledge set.
    pub from_scratch: Duration,
    /// `from_scratch / incremental`.
    pub speedup: f64,
    /// Components the refresh re-solved numerically.
    pub resolved: usize,
    /// Dirty irrelevant components refilled closed-form.
    pub closed_form: usize,
    /// Clean components reused verbatim.
    pub reused: usize,
    /// Whether the refreshed estimate is bit-identical to the from-scratch
    /// solve.
    pub identical_to_scratch: bool,
    /// Wall time of the same delta on the warm-started session.
    pub warm_incremental: Duration,
    /// Max absolute term-value deviation of the warm session from exact.
    pub warm_max_abs_delta: f64,
}

/// The full report — everything `BENCH_incremental.json` records.
#[derive(Debug, Clone)]
pub struct IncrementalBenchReport {
    /// Workload scale label (`"quick"` / `"full"`).
    pub scale: String,
    /// Generator seed.
    pub seed: u64,
    /// Records in the workload.
    pub records: usize,
    /// Buckets in the publication.
    pub buckets: usize,
    /// Antecedent arity of the mined knowledge.
    pub arity: usize,
    /// Background-knowledge rules in the final set.
    pub rules: usize,
    /// Worker threads used by both paths.
    pub threads: usize,
    /// Cores the host reports.
    pub available_parallelism: usize,
    /// Components in the session partition before the first delta.
    pub components: usize,
    /// Wall time to open the session with the base knowledge (compile +
    /// partition + full solve), i.e. the one-time cost deltas amortise.
    pub session_open: Duration,
    /// The measured deltas, in application order.
    pub runs: Vec<DeltaRun>,
}

impl IncrementalBenchReport {
    /// Median over the per-delta speedups (robust to one noisy run).
    pub fn median_speedup(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        let mut s: Vec<f64> = self.runs.iter().map(|r| r.speedup).collect();
        s.sort_by(|a, b| a.total_cmp(b));
        s[s.len() / 2]
    }

    /// Whether every delta reproduced the from-scratch bits.
    pub fn all_identical(&self) -> bool {
        self.runs.iter().all(|r| r.identical_to_scratch)
    }

    /// Serialises the report as pretty-printed JSON (hand-rolled: the
    /// offline workspace has no serde).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str("  \"bench\": \"incremental_session\",\n");
        s.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"records\": {},\n", self.records));
        s.push_str(&format!("  \"buckets\": {},\n", self.buckets));
        s.push_str(&format!("  \"arity\": {},\n", self.arity));
        s.push_str(&format!("  \"rules\": {},\n", self.rules));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!(
            "  \"available_parallelism\": {},\n",
            self.available_parallelism
        ));
        s.push_str(&format!("  \"components\": {},\n", self.components));
        s.push_str(&format!(
            "  \"session_open_seconds\": {:.6},\n",
            self.session_open.as_secs_f64()
        ));
        s.push_str(&format!("  \"median_speedup\": {:.3},\n", self.median_speedup()));
        s.push_str(&format!("  \"all_identical\": {},\n", self.all_identical()));
        s.push_str("  \"deltas\": [\n");
        for (i, r) in self.runs.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"incremental_seconds\": {:.6}, \"from_scratch_seconds\": {:.6}, \
                 \"speedup\": {:.3}, \"resolved\": {}, \"closed_form\": {}, \
                 \"reused\": {}, \"identical_to_scratch\": {}, \
                 \"warm_incremental_seconds\": {:.6}, \"warm_max_abs_delta\": {:.3e}}}{}\n",
                r.incremental.as_secs_f64(),
                r.from_scratch.as_secs_f64(),
                r.speedup,
                r.resolved,
                r.closed_form,
                r.reused,
                r.identical_to_scratch,
                r.warm_incremental.as_secs_f64(),
                r.warm_max_abs_delta,
                if i + 1 < self.runs.len() { "," } else { "" },
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Human-readable table (stdout companion of the JSON artifact).
    pub fn print_table(&self) {
        println!(
            "incremental session — {} scale, seed {}: {} records, {} buckets, \
             {} arity-{} rules, {} thread(s)",
            self.scale, self.seed, self.records, self.buckets, self.rules, self.arity,
            self.threads
        );
        println!(
            "{} components; session open (base knowledge, full solve): {:.1} ms",
            self.components,
            self.session_open.as_secs_f64() * 1e3
        );
        println!(
            "{:>6}  {:>11}  {:>12}  {:>8}  {:>17}  {:>9}  {:>11}  {:>10}",
            "delta", "incr (ms)", "scratch (ms)", "speedup", "resolved/reused",
            "identical", "warm (ms)", "warm |Δ|"
        );
        for (i, r) in self.runs.iter().enumerate() {
            println!(
                "{:>6}  {:>11.3}  {:>12.3}  {:>7.1}x  {:>8}/{:<8}  {:>9}  {:>11.3}  {:>10.1e}",
                i + 1,
                r.incremental.as_secs_f64() * 1e3,
                r.from_scratch.as_secs_f64() * 1e3,
                r.speedup,
                r.resolved + r.closed_form,
                r.reused,
                r.identical_to_scratch,
                r.warm_incremental.as_secs_f64() * 1e3,
                r.warm_max_abs_delta,
            );
        }
        println!("median speedup: {:.1}x", self.median_speedup());
    }
}

fn max_abs_delta(a: &Estimate, b: &Estimate) -> f64 {
    a.term_values()
        .iter()
        .zip(b.term_values())
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Runs the sweep: open a session with the base knowledge, then measure
/// each single-rule delta against a from-scratch estimate of the same
/// final set (plus the warm-started variant).
pub fn run(cfg: &IncrementalBenchConfig) -> IncrementalBenchReport {
    let w = build_workload(cfg);
    let engine = Engine::new(engine_config(cfg.threads, false));

    // Base knowledge bases, session-insertion order.
    let mut kb = KnowledgeBase::new();
    for item in &w.base {
        kb.push(item.clone()).expect("valid knowledge");
    }

    // Warmup: page the workload in so neither path is charged first-touch
    // costs, then open the measured sessions.
    let _ = engine.estimate(&w.table, &kb).expect("base knowledge is feasible");
    let open_start = Instant::now();
    let mut exact = Analyst::new(w.table.clone(), engine_config(cfg.threads, false))
        .expect("baseline solves");
    exact.add_knowledge_batch(&w.base).expect("base knowledge compiles");
    exact.refresh().expect("base knowledge is feasible");
    let session_open = open_start.elapsed();

    let mut warm = Analyst::new(w.table.clone(), engine_config(cfg.threads, true))
        .expect("baseline solves");
    warm.add_knowledge_batch(&w.base).expect("base knowledge compiles");
    warm.refresh().expect("base knowledge is feasible");

    let mut report = IncrementalBenchReport {
        scale: match cfg.scale {
            Scale::Full => "full".to_string(),
            Scale::Quick => "quick".to_string(),
        },
        seed: cfg.seed,
        records: w.records,
        buckets: w.table.num_buckets(),
        arity: cfg.arity,
        rules: w.rules,
        threads: cfg.threads,
        available_parallelism: pm_parallel::available_parallelism(),
        components: exact.num_components(),
        session_open,
        runs: Vec::new(),
    };

    for delta in &w.deltas {
        // Incremental: one rule in, one refresh.
        let t = Instant::now();
        let _ = exact.add_knowledge(delta.clone()).expect("delta compiles");
        let stats = exact.refresh().expect("delta is feasible");
        let incremental = t.elapsed();

        // Warm-started session, same delta.
        let t = Instant::now();
        let _ = warm.add_knowledge(delta.clone()).expect("delta compiles");
        warm.refresh().expect("delta is feasible");
        let warm_incremental = t.elapsed();

        // From scratch with the same final knowledge set, same order.
        kb.push(delta.clone()).expect("valid knowledge");
        let t = Instant::now();
        let scratch = engine.estimate(&w.table, &kb).expect("feasible");
        let from_scratch = t.elapsed();

        report.runs.push(DeltaRun {
            incremental,
            from_scratch,
            speedup: from_scratch.as_secs_f64() / incremental.as_secs_f64(),
            resolved: stats.resolved,
            closed_form: stats.closed_form,
            reused: stats.reused,
            identical_to_scratch: exact.estimate().term_values() == scratch.term_values(),
            warm_incremental,
            warm_max_abs_delta: max_abs_delta(warm.estimate(), &scratch),
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> IncrementalBenchReport {
        IncrementalBenchReport {
            scale: "quick".into(),
            seed: 7,
            records: 100,
            buckets: 20,
            arity: 4,
            rules: 10,
            threads: 1,
            available_parallelism: 8,
            components: 15,
            session_open: Duration::from_millis(40),
            runs: vec![
                DeltaRun {
                    incremental: Duration::from_micros(500),
                    from_scratch: Duration::from_millis(10),
                    speedup: 20.0,
                    resolved: 1,
                    closed_form: 0,
                    reused: 14,
                    identical_to_scratch: true,
                    warm_incremental: Duration::from_micros(400),
                    warm_max_abs_delta: 3e-9,
                },
                DeltaRun {
                    incremental: Duration::from_millis(1),
                    from_scratch: Duration::from_millis(9),
                    speedup: 9.0,
                    resolved: 2,
                    closed_form: 1,
                    reused: 12,
                    identical_to_scratch: true,
                    warm_incremental: Duration::from_micros(800),
                    warm_max_abs_delta: 1e-8,
                },
            ],
        }
    }

    #[test]
    fn json_shape_is_stable() {
        let j = tiny_report().to_json();
        assert!(j.starts_with("{\n"));
        assert!(j.ends_with("}\n"));
        assert!(j.contains("\"bench\": \"incremental_session\""));
        assert!(j.contains("\"session_open_seconds\": 0.040000"));
        assert!(j.contains("\"median_speedup\": 20.000"));
        assert!(j.contains("\"all_identical\": true"));
        assert!(j.contains("\"resolved\": 1"));
        assert!(j.contains("\"warm_max_abs_delta\": 3.000e-9"));
        // Exactly one trailing comma between the two delta rows.
        assert_eq!(j.matches("},\n").count(), 1);
    }

    #[test]
    fn median_and_identity_helpers() {
        let mut r = tiny_report();
        assert_eq!(r.median_speedup(), 20.0, "upper median of two");
        assert!(r.all_identical());
        r.runs[1].identical_to_scratch = false;
        assert!(!r.all_identical());
        r.runs.clear();
        assert_eq!(r.median_speedup(), 0.0);
    }

    #[test]
    fn table_print_does_not_panic() {
        tiny_report().print_table();
    }

    /// A miniature end-to-end sweep: deltas re-solve fewer components than
    /// exist, every delta reproduces the from-scratch bits, and the JSON
    /// serialises.
    #[test]
    fn quick_sweep_is_exact() {
        let cfg = IncrementalBenchConfig {
            scale: Scale::Quick,
            k_positive: 20,
            k_negative: 20,
            deltas: 2,
            ..Default::default()
        };
        let report = run(&cfg);
        assert_eq!(report.runs.len(), 2);
        assert!(report.all_identical(), "incremental must reproduce from-scratch bits");
        for r in &report.runs {
            assert!(
                r.resolved + r.closed_form < report.components,
                "a single-rule delta must not re-solve everything: {} of {}",
                r.resolved + r.closed_form,
                report.components
            );
            assert!(r.warm_max_abs_delta < 1e-6, "warm path diverged: {}", r.warm_max_abs_delta);
        }
        assert!(!report.to_json().is_empty());
    }
}
