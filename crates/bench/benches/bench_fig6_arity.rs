//! Criterion timing of the Figure 6 pipeline: estimate under knowledge of
//! one antecedent arity T (mining excluded; it has its own bench).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_bench::pipeline::{prepare, Scale};
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;

fn bench(c: &mut Criterion) {
    let exp = prepare(Scale::Quick, 1);
    let mut group = c.benchmark_group("fig6_arity");
    group.sample_size(10);
    for t in [1usize, 2, 3] {
        let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![t] })
            .mine(&exp.data);
        let picked = rules.top_k(100, 100);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), exp.data.schema()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(t), &kb, |b, kb| {
            b.iter(|| {
                let cfg =
                    EngineConfig::builder().residual_limit(f64::INFINITY).build();
                Engine::new(cfg).estimate(&exp.table, kb).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
