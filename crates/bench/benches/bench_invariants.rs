//! Constraint-generation throughput: term indexing and QI/SA-invariant
//! assembly over the paper-scale published table.

use criterion::{criterion_group, criterion_main, Criterion};
use pm_bench::pipeline::{prepare, Scale};
use privacy_maxent::invariants::data_invariants;
use privacy_maxent::terms::TermIndex;

fn bench(c: &mut Criterion) {
    let exp = prepare(Scale::Quick, 1);
    let mut group = c.benchmark_group("invariant_generation");
    group.sample_size(20);
    group.bench_function("term_index", |b| {
        b.iter(|| TermIndex::build(&exp.table))
    });
    let index = TermIndex::build(&exp.table);
    group.bench_function("invariants_full", |b| {
        b.iter(|| data_invariants(&exp.table, &index, false))
    });
    group.bench_function("invariants_concise", |b| {
        b.iter(|| data_invariants(&exp.table, &index, true))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
