//! Criterion timing of the Figure 5 pipeline point (estimate under a
//! Top-(K+, K−) knowledge base) at fixed K.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::pipeline::{prepare, Scale};
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;
use privacy_maxent::metrics::estimation_accuracy;

fn bench(c: &mut Criterion) {
    let exp = prepare(Scale::Quick, 1);
    let mut group = c.benchmark_group("fig5_accuracy");
    group.sample_size(10);
    for k in [0usize, 100, 500] {
        let picked = exp.rules.top_k(k / 2, k - k / 2);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), exp.data.schema()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &kb, |b, kb| {
            b.iter(|| {
                let cfg =
                    EngineConfig::builder().residual_limit(f64::INFINITY).build();
                let est = Engine::new(cfg).estimate(&exp.table, kb).unwrap();
                estimation_accuracy(&exp.truth, &est)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
