//! Ablation of the Section 5.5 optimisation: joint solve vs irrelevant-
//! bucket closed form + connected-component decomposition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::pipeline::{prepare, Scale};
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;

fn bench(c: &mut Criterion) {
    let exp = prepare(Scale::Quick, 1);
    let picked = exp.rules.top_k(50, 50);
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), exp.data.schema()).unwrap();
    let mut group = c.benchmark_group("section55_decomposition");
    group.sample_size(10);
    for decompose in [false, true] {
        let label = if decompose { "decomposed" } else { "joint" };
        group.bench_with_input(BenchmarkId::from_parameter(label), &decompose, |b, &d| {
            b.iter(|| {
                let cfg = EngineConfig::builder()
                    .decompose(d)
                    .residual_limit(f64::INFINITY)
                    .build();
                Engine::new(cfg).estimate(&exp.table, &kb).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
