//! The Malouf-style solver comparison the paper cites [18]: LBFGS vs GIS
//! vs IIS vs steepest descent on identical maxent instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_bench::pipeline::{prepare, Scale};
use privacy_maxent::engine::{Engine, EngineConfig, SolverKind};
use privacy_maxent::knowledge::KnowledgeBase;

fn bench(c: &mut Criterion) {
    let exp = prepare(Scale::Quick, 1);
    // Moderate-confidence rules keep the optimum interior so every solver
    // can reach it (GIS/IIS cannot represent boundary zeros).
    let picked: Vec<_> = exp
        .rules
        .positive
        .iter()
        .filter(|r| r.confidence > 0.3 && r.confidence < 0.7 && r.arity() == 1)
        .take(20)
        .collect();
    let kb = KnowledgeBase::from_rules(picked.iter().copied(), exp.data.schema()).unwrap();
    let mut group = c.benchmark_group("solver_comparison");
    group.sample_size(10);
    for solver in [
        SolverKind::Lbfgs,
        SolverKind::Gis,
        SolverKind::Iis,
        SolverKind::GradientDescent,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{solver:?}")),
            &solver,
            |b, &solver| {
                b.iter(|| {
                    let cfg = EngineConfig::builder()
                        .solver(solver)
                        .tolerance(1e-6)
                        .max_iterations(100_000)
                        .residual_limit(f64::INFINITY)
                        .build();
                    Engine::new(cfg).estimate(&exp.table, &kb).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
