//! Association-rule mining throughput by antecedent arity.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};

fn bench(c: &mut Criterion) {
    let data = AdultGenerator::new(AdultGeneratorConfig { records: 2500, seed: 1 }).generate();
    let mut group = c.benchmark_group("rule_mining");
    group.sample_size(10);
    for t in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                RuleMiner::new(MinerConfig { min_support: 3, arities: vec![t] }).mine(&data)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
