//! Criterion version of the Figure 7 scaling experiments: joint (non-
//! decomposed) solve time vs. knowledge size and vs. data size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pm_anonymize::anatomy::{AnatomyBucketizer, AnatomyConfig};
use pm_assoc::miner::{MinerConfig, RuleMiner};
use pm_bench::pipeline::{prepare, Scale};
use pm_datagen::adult::{AdultGenerator, AdultGeneratorConfig};
use privacy_maxent::engine::{Engine, EngineConfig};
use privacy_maxent::knowledge::KnowledgeBase;

fn perf_config() -> EngineConfig {
    EngineConfig::builder()
        .decompose(false)
        .tolerance(1e-4)
        .residual_limit(f64::INFINITY)
        .build()
}

fn vs_knowledge(c: &mut Criterion) {
    let exp = prepare(Scale::Quick, 1);
    let mut group = c.benchmark_group("fig7a_vs_knowledge");
    group.sample_size(10);
    for k in [30usize, 300] {
        let picked = exp.rules.top_k(k / 2, k - k / 2);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), exp.data.schema()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(k), &kb, |b, kb| {
            b.iter(|| Engine::new(perf_config()).estimate(&exp.table, kb).unwrap())
        });
    }
    group.finish();
}

fn vs_buckets(c: &mut Criterion) {
    let full = AdultGenerator::new(AdultGeneratorConfig { records: 2500, seed: 1 }).generate();
    let mut group = c.benchmark_group("fig7b_vs_buckets");
    group.sample_size(10);
    for n in [500usize, 2500] {
        let data = full.head(n);
        let table = AnatomyBucketizer::new(AnatomyConfig { ell: 5, exempt_top: 1 })
            .publish(&data)
            .unwrap();
        let rules = RuleMiner::new(MinerConfig { min_support: 3, arities: vec![1, 2] })
            .mine(&data);
        let picked = rules.top_k(25, 25);
        let kb = KnowledgeBase::from_rules(picked.iter().copied(), data.schema()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n / 5), &(table, kb), |b, (t, kb)| {
            b.iter(|| Engine::new(perf_config()).estimate(t, kb).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, vs_knowledge, vs_buckets);
criterion_main!(benches);
