//! A closed-loop, deterministic load generator for `pmx serve` — shared by
//! the `pmx loadgen` subcommand and the `serve_bench` harness.
//!
//! One client thread per tenant drives a **tape**: phases of batched
//! queries, punctuated by knowledge add/remove steps, a refresh, and a few
//! sampled single queries. Everything a worker sends is a pure function of
//! `(seed, tenant index, knowledge pool)`, and every phase records the
//! epoch its refresh landed on, whether its add was rolled back, and its
//! bit-exact sampled responses — so
//! a verifier can replay any tenant **bit-identically** against a direct
//! [`Analyst`](privacy_maxent::analyst::Analyst) on the same artifact
//! chain, even though tenants and table deltas interleaved freely at run
//! time. Worker 0 doubles as the delta driver, applying one delta tape at
//! each phase boundary, so the server's epoch order equals the tape order.
//!
//! A second, open-loop mode ([`run_idle`]) assembles a large mostly-idle
//! connection cohort and measures accept/ping latency flatness instead of
//! throughput — the workload the reactor backend exists for.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Instant;

use pm_microdata::value::Value;

use crate::client::{Client, ClientError};
use crate::protocol::{WireDeltaOp, WireKnowledge};

/// One knowledge step on a tenant's tape.
#[derive(Debug, Clone, PartialEq)]
pub enum TapeOp {
    /// Add this item (handle recorded in add order).
    Add(WireKnowledge),
    /// Remove the live handle at `index % live.len()` (in add order);
    /// no-op while none are live.
    Remove(usize),
}

/// A deterministic xorshift64* stream — the only randomness source in the
/// generator, so every tape is replayable from its seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A stream seeded by `seed` (zero is remapped; xorshift fixpoints at 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The knowledge tape for one tenant: `steps` add/remove ops drawn from
/// `pool`, biased 3:1 toward adds so sessions accumulate real constraint
/// systems.
#[must_use]
pub fn tenant_tape(
    pool: &[WireKnowledge],
    tenant: usize,
    steps: usize,
    seed: u64,
) -> Vec<TapeOp> {
    let mut rng = Rng::new(seed ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut live = 0usize;
    (0..steps)
        .map(|_| {
            if pool.is_empty() || (live > 0 && rng.below(4) == 0) {
                live = live.saturating_sub(1);
                TapeOp::Remove(rng.below(64) as usize)
            } else {
                live += 1;
                TapeOp::Add(pool[rng.below(pool.len() as u64) as usize].clone())
            }
        })
        .collect()
}

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Tenants (one client thread + one connection each).
    pub tenants: usize,
    /// Phases per tenant; each phase ends with a tape step + refresh.
    pub phases: usize,
    /// Batched query frames per phase.
    pub batches_per_phase: usize,
    /// Queries per batch frame.
    pub batch: usize,
    /// Sampled single queries recorded after each refresh.
    pub samples_per_phase: usize,
    /// Seed for every tape and query stream.
    pub seed: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            tenants: 8,
            phases: 4,
            batches_per_phase: 50,
            batch: 256,
            samples_per_phase: 4,
            seed: 0x00C0_FFEE,
        }
    }
}

/// The replay-verifiable record of one tenant phase: which epoch the
/// phase's refresh landed on, whether the phase's add was rolled back
/// after an infeasible refresh, and the sampled single-query responses —
/// everything an offline verifier needs to rebuild the tenant's exact
/// session state and bit-compare.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Tenant index.
    pub tenant: u32,
    /// Zero-based phase on the tenant's tape.
    pub phase: u32,
    /// Epoch the serving estimate sat at when the samples were taken.
    pub epoch: u64,
    /// Whether this phase's add was rolled back (infeasible refresh →
    /// remove + re-refresh, per the tape's recovery semantics).
    pub rolled_back: bool,
    /// Sampled `(q, s, P*(s|q))` single queries, bit-exact.
    pub samples: Vec<(u32, Value, f64)>,
}

/// What one run did.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Total queries answered (each batch frame counts its length).
    pub queries: u64,
    /// Batch frames sent.
    pub batches: u64,
    /// Single-query frames sent (the sampled ones).
    pub singles: u64,
    /// Knowledge add/remove steps applied.
    pub knowledge_ops: u64,
    /// Refreshes completed.
    pub refreshes: u64,
    /// Table deltas applied (by the worker-0 driver).
    pub deltas: u64,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
    /// `queries / wall_seconds`.
    pub qps: f64,
    /// Per-tenant phase records for offline replay verification.
    pub phases: Vec<PhaseRecord>,
}

/// Runs the closed loop against a live server. `pool` is the knowledge the
/// tapes draw from; `delta_tapes` are applied in order by worker 0 at its
/// phase boundaries (pass an empty list for a query/knowledge-only run).
pub fn run(
    addr: SocketAddr,
    pool: &[WireKnowledge],
    delta_tapes: &[Vec<WireDeltaOp>],
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let report = Mutex::new(LoadgenReport::default());
    let first_error: Mutex<Option<ClientError>> = Mutex::new(None);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for tenant in 0..opts.tenants {
            let report = &report;
            let first_error = &first_error;
            scope.spawn(move || {
                match drive_tenant(addr, tenant, pool, delta_tapes, opts) {
                    Ok(local) => {
                        let mut r = report.lock().expect("report lock poisoned");
                        r.queries += local.queries;
                        r.batches += local.batches;
                        r.singles += local.singles;
                        r.knowledge_ops += local.knowledge_ops;
                        r.refreshes += local.refreshes;
                        r.deltas += local.deltas;
                        r.phases.extend(local.phases);
                    }
                    Err(e) => {
                        first_error
                            .lock()
                            .expect("error lock poisoned")
                            .get_or_insert(e);
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("error lock poisoned") {
        return Err(e);
    }
    let mut report = report.into_inner().expect("report lock poisoned");
    report.wall_seconds = start.elapsed().as_secs_f64();
    report.qps = if report.wall_seconds > 0.0 {
        report.queries as f64 / report.wall_seconds
    } else {
        0.0
    };
    report.phases.sort_by_key(|p| (p.tenant, p.phase));
    Ok(report)
}

/// Shape of one open-loop idle-cohort run ([`run_idle`]).
#[derive(Debug, Clone)]
pub struct IdleOptions {
    /// Connections to open and hold (each completes a hello handshake).
    pub connections: usize,
    /// Distinct tenant ids the connections hash into — many connections
    /// per tenant, like a fleet of dashboards over a few tables.
    pub tenants: usize,
    /// Ping sweeps over the whole cohort after it is assembled.
    pub rounds: usize,
}

impl Default for IdleOptions {
    fn default() -> Self {
        Self { connections: 5000, tenants: 64, rounds: 3 }
    }
}

/// Latency summary of one ping sweep over the cohort, microseconds.
#[derive(Debug, Clone, Copy)]
pub struct PingRound {
    /// Median ping round-trip.
    pub p50_us: f64,
    /// 99th-percentile ping round-trip.
    pub p99_us: f64,
    /// Worst ping round-trip.
    pub max_us: f64,
}

/// What one idle-cohort run observed. The flatness claims — late accepts
/// no slower than early ones, ping latency stable while thousands of
/// connections sit idle — are the caller's to assert; this just reports
/// the deciles.
#[derive(Debug, Clone)]
pub struct IdleReport {
    /// Connections actually held open.
    pub connections: usize,
    /// Median connect+hello latency over the *first* decile of accepts
    /// (the near-empty server), microseconds.
    pub accept_early_p50_us: f64,
    /// Median connect+hello latency over the *last* decile (the server
    /// already holding ~90% of the cohort), microseconds.
    pub accept_late_p50_us: f64,
    /// 99th-percentile connect+hello latency over every accept.
    pub accept_p99_us: f64,
    /// One latency summary per ping sweep.
    pub rounds: Vec<PingRound>,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
}

/// Nearest-rank percentile over an ascending-sorted slice (`p` in 0..=100).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted.get(rank.min(sorted.len() - 1)).copied().unwrap_or(0.0)
}

fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(f64::total_cmp);
    v
}

/// The open-loop cohort exerciser: opens `connections` handshaken
/// connections one by one (recording each connect+hello latency), holds
/// them all, then sweeps `rounds` of pings over the full cohort. Unlike
/// [`run`], nothing here measures throughput — the subject is the *server
/// holding a large, mostly-idle cohort*: accept latency must stay flat as
/// the cohort grows, and a ping must not degrade because thousands of
/// other sockets are registered with the event loop.
pub fn run_idle(addr: SocketAddr, opts: &IdleOptions) -> Result<IdleReport, ClientError> {
    let start = Instant::now();
    let tenants = opts.tenants.max(1);
    let mut clients = Vec::with_capacity(opts.connections);
    let mut accept_us = Vec::with_capacity(opts.connections);
    for i in 0..opts.connections {
        let t = Instant::now();
        let client = Client::connect(addr, &format!("cohort-{}", i % tenants))?;
        accept_us.push(t.elapsed().as_secs_f64() * 1e6);
        clients.push(client);
    }

    let decile = (opts.connections / 10).max(1);
    let early = sorted(accept_us.iter().take(decile).copied().collect());
    let late = sorted(accept_us.iter().rev().take(decile).copied().collect());
    let all = sorted(accept_us);

    let mut rounds = Vec::with_capacity(opts.rounds);
    for _ in 0..opts.rounds {
        let mut lat = Vec::with_capacity(clients.len());
        for client in &mut clients {
            let t = Instant::now();
            client.ping()?;
            lat.push(t.elapsed().as_secs_f64() * 1e6);
        }
        let lat = sorted(lat);
        rounds.push(PingRound {
            p50_us: percentile(&lat, 50.0),
            p99_us: percentile(&lat, 99.0),
            max_us: lat.last().copied().unwrap_or(0.0),
        });
    }

    Ok(IdleReport {
        connections: clients.len(),
        accept_early_p50_us: percentile(&early, 50.0),
        accept_late_p50_us: percentile(&late, 50.0),
        accept_p99_us: percentile(&all, 99.0),
        rounds,
        wall_seconds: start.elapsed().as_secs_f64(),
    })
}

/// Replays worker `tenant`'s deterministic tape against a live server.
fn drive_tenant(
    addr: SocketAddr,
    tenant: usize,
    pool: &[WireKnowledge],
    delta_tapes: &[Vec<WireDeltaOp>],
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let mut local = LoadgenReport::default();
    let name = format!("tenant-{tenant}");
    let mut client = Client::connect(addr, &name)?;
    let hello = client.hello();
    let tape = tenant_tape(pool, tenant, opts.phases, opts.seed);
    let mut qrng =
        Rng::new(opts.seed ^ 0xABCD_EF01 ^ (tenant as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
    let mut handles: Vec<u64> = Vec::new();

    for (phase, op) in tape.iter().enumerate() {
        // Worker 0 doubles as the delta driver: one tape per phase boundary,
        // so the server's epoch order equals the tape order.
        if tenant == 0 {
            if let Some(ops) = delta_tapes.get(phase) {
                client.table_delta(ops.clone())?;
                local.deltas += 1;
            }
        }

        // The query storm: batched frames against the lock-free snapshot.
        for _ in 0..opts.batches_per_phase {
            let queries: Vec<(u32, Value)> = (0..opts.batch)
                .map(|_| {
                    (
                        qrng.below(hello.distinct_qi) as u32,
                        qrng.below(hello.sa_cardinality) as Value,
                    )
                })
                .collect();
            let ps = client.batch(queries)?;
            local.queries += ps.len() as u64;
            local.batches += 1;
        }

        // One knowledge step + refresh; infeasible combinations roll the
        // offending item back so the tape keeps moving. Which way it went
        // is *recorded* (not re-derivable: a table delta landing between
        // the failed refresh and the recovery refresh can flip the
        // feasibility an offline replay would see), so the verifier forces
        // the recorded decision rather than re-deciding it.
        let mut rolled_back = false;
        let epoch = match op {
            TapeOp::Add(item) => {
                let got = client.add_knowledge(vec![item.clone()])?;
                handles.extend(got);
                local.knowledge_ops += 1;
                local.refreshes += 1;
                match client.refresh() {
                    Ok(summary) => summary.epoch,
                    Err(ClientError::Server { .. }) => {
                        rolled_back = true;
                        let handle = handles.pop().expect("the add just pushed one");
                        client.remove(handle)?;
                        client.refresh()?.epoch
                    }
                    Err(other) => return Err(other),
                }
            }
            TapeOp::Remove(index) => {
                if !handles.is_empty() {
                    let handle = handles.remove(index % handles.len());
                    client.remove(handle)?;
                    local.knowledge_ops += 1;
                }
                local.refreshes += 1;
                client.refresh()?.epoch
            }
        };

        // Sampled singles, recorded bit-exact for offline replay.
        let mut samples = Vec::with_capacity(opts.samples_per_phase);
        for _ in 0..opts.samples_per_phase {
            let q = qrng.below(hello.distinct_qi) as u32;
            let s = qrng.below(hello.sa_cardinality) as Value;
            let p = client.query(q, s)?;
            local.queries += 1;
            local.singles += 1;
            samples.push((q, s, p));
        }
        local.phases.push(PhaseRecord {
            tenant: tenant as u32,
            phase: phase as u32,
            epoch,
            rolled_back,
            samples,
        });
    }
    Ok(local)
}
