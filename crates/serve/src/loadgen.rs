//! A closed-loop, deterministic load generator for `pmx serve` — shared by
//! the `pmx loadgen` subcommand and the `serve_bench` harness.
//!
//! One client thread per tenant drives a **tape**: phases of batched
//! queries, punctuated by knowledge add/remove steps, a refresh, and a few
//! sampled single queries. Everything a worker sends is a pure function of
//! `(seed, tenant index, knowledge pool)`, and every phase records the
//! epoch its refresh landed on, whether its add was rolled back, and its
//! bit-exact sampled responses — so
//! a verifier can replay any tenant **bit-identically** against a direct
//! [`Analyst`](privacy_maxent::analyst::Analyst) on the same artifact
//! chain, even though tenants and table deltas interleaved freely at run
//! time. Worker 0 doubles as the delta driver, applying one delta tape at
//! each phase boundary, so the server's epoch order equals the tape order.

use std::net::SocketAddr;
use std::sync::Mutex;
use std::time::Instant;

use pm_microdata::value::Value;

use crate::client::{Client, ClientError};
use crate::protocol::{WireDeltaOp, WireKnowledge};

/// One knowledge step on a tenant's tape.
#[derive(Debug, Clone, PartialEq)]
pub enum TapeOp {
    /// Add this item (handle recorded in add order).
    Add(WireKnowledge),
    /// Remove the live handle at `index % live.len()` (in add order);
    /// no-op while none are live.
    Remove(usize),
}

/// A deterministic xorshift64* stream — the only randomness source in the
/// generator, so every tape is replayable from its seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// A stream seeded by `seed` (zero is remapped; xorshift fixpoints at 0).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self(seed | 1)
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw in `0..bound` (`bound` of 0 yields 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }
}

/// The knowledge tape for one tenant: `steps` add/remove ops drawn from
/// `pool`, biased 3:1 toward adds so sessions accumulate real constraint
/// systems.
#[must_use]
pub fn tenant_tape(
    pool: &[WireKnowledge],
    tenant: usize,
    steps: usize,
    seed: u64,
) -> Vec<TapeOp> {
    let mut rng = Rng::new(seed ^ (tenant as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let mut live = 0usize;
    (0..steps)
        .map(|_| {
            if pool.is_empty() || (live > 0 && rng.below(4) == 0) {
                live = live.saturating_sub(1);
                TapeOp::Remove(rng.below(64) as usize)
            } else {
                live += 1;
                TapeOp::Add(pool[rng.below(pool.len() as u64) as usize].clone())
            }
        })
        .collect()
}

/// Shape of one load-generation run.
#[derive(Debug, Clone)]
pub struct LoadgenOptions {
    /// Tenants (one client thread + one connection each).
    pub tenants: usize,
    /// Phases per tenant; each phase ends with a tape step + refresh.
    pub phases: usize,
    /// Batched query frames per phase.
    pub batches_per_phase: usize,
    /// Queries per batch frame.
    pub batch: usize,
    /// Sampled single queries recorded after each refresh.
    pub samples_per_phase: usize,
    /// Seed for every tape and query stream.
    pub seed: u64,
}

impl Default for LoadgenOptions {
    fn default() -> Self {
        Self {
            tenants: 8,
            phases: 4,
            batches_per_phase: 50,
            batch: 256,
            samples_per_phase: 4,
            seed: 0x00C0_FFEE,
        }
    }
}

/// The replay-verifiable record of one tenant phase: which epoch the
/// phase's refresh landed on, whether the phase's add was rolled back
/// after an infeasible refresh, and the sampled single-query responses —
/// everything an offline verifier needs to rebuild the tenant's exact
/// session state and bit-compare.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Tenant index.
    pub tenant: u32,
    /// Zero-based phase on the tenant's tape.
    pub phase: u32,
    /// Epoch the serving estimate sat at when the samples were taken.
    pub epoch: u64,
    /// Whether this phase's add was rolled back (infeasible refresh →
    /// remove + re-refresh, per the tape's recovery semantics).
    pub rolled_back: bool,
    /// Sampled `(q, s, P*(s|q))` single queries, bit-exact.
    pub samples: Vec<(u32, Value, f64)>,
}

/// What one run did.
#[derive(Debug, Clone, Default)]
pub struct LoadgenReport {
    /// Total queries answered (each batch frame counts its length).
    pub queries: u64,
    /// Batch frames sent.
    pub batches: u64,
    /// Single-query frames sent (the sampled ones).
    pub singles: u64,
    /// Knowledge add/remove steps applied.
    pub knowledge_ops: u64,
    /// Refreshes completed.
    pub refreshes: u64,
    /// Table deltas applied (by the worker-0 driver).
    pub deltas: u64,
    /// Wall time of the whole run, seconds.
    pub wall_seconds: f64,
    /// `queries / wall_seconds`.
    pub qps: f64,
    /// Per-tenant phase records for offline replay verification.
    pub phases: Vec<PhaseRecord>,
}

/// Runs the closed loop against a live server. `pool` is the knowledge the
/// tapes draw from; `delta_tapes` are applied in order by worker 0 at its
/// phase boundaries (pass an empty list for a query/knowledge-only run).
pub fn run(
    addr: SocketAddr,
    pool: &[WireKnowledge],
    delta_tapes: &[Vec<WireDeltaOp>],
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let report = Mutex::new(LoadgenReport::default());
    let first_error: Mutex<Option<ClientError>> = Mutex::new(None);
    let start = Instant::now();

    std::thread::scope(|scope| {
        for tenant in 0..opts.tenants {
            let report = &report;
            let first_error = &first_error;
            scope.spawn(move || {
                match drive_tenant(addr, tenant, pool, delta_tapes, opts) {
                    Ok(local) => {
                        let mut r = report.lock().expect("report lock poisoned");
                        r.queries += local.queries;
                        r.batches += local.batches;
                        r.singles += local.singles;
                        r.knowledge_ops += local.knowledge_ops;
                        r.refreshes += local.refreshes;
                        r.deltas += local.deltas;
                        r.phases.extend(local.phases);
                    }
                    Err(e) => {
                        first_error
                            .lock()
                            .expect("error lock poisoned")
                            .get_or_insert(e);
                    }
                }
            });
        }
    });

    if let Some(e) = first_error.into_inner().expect("error lock poisoned") {
        return Err(e);
    }
    let mut report = report.into_inner().expect("report lock poisoned");
    report.wall_seconds = start.elapsed().as_secs_f64();
    report.qps = if report.wall_seconds > 0.0 {
        report.queries as f64 / report.wall_seconds
    } else {
        0.0
    };
    report.phases.sort_by_key(|p| (p.tenant, p.phase));
    Ok(report)
}

/// Replays worker `tenant`'s deterministic tape against a live server.
fn drive_tenant(
    addr: SocketAddr,
    tenant: usize,
    pool: &[WireKnowledge],
    delta_tapes: &[Vec<WireDeltaOp>],
    opts: &LoadgenOptions,
) -> Result<LoadgenReport, ClientError> {
    let mut local = LoadgenReport::default();
    let name = format!("tenant-{tenant}");
    let mut client = Client::connect(addr, &name)?;
    let hello = client.hello();
    let tape = tenant_tape(pool, tenant, opts.phases, opts.seed);
    let mut qrng =
        Rng::new(opts.seed ^ 0xABCD_EF01 ^ (tenant as u64).wrapping_mul(0x517C_C1B7_2722_0A95));
    let mut handles: Vec<u64> = Vec::new();

    for (phase, op) in tape.iter().enumerate() {
        // Worker 0 doubles as the delta driver: one tape per phase boundary,
        // so the server's epoch order equals the tape order.
        if tenant == 0 {
            if let Some(ops) = delta_tapes.get(phase) {
                client.table_delta(ops.clone())?;
                local.deltas += 1;
            }
        }

        // The query storm: batched frames against the lock-free snapshot.
        for _ in 0..opts.batches_per_phase {
            let queries: Vec<(u32, Value)> = (0..opts.batch)
                .map(|_| {
                    (
                        qrng.below(hello.distinct_qi) as u32,
                        qrng.below(hello.sa_cardinality) as Value,
                    )
                })
                .collect();
            let ps = client.batch(queries)?;
            local.queries += ps.len() as u64;
            local.batches += 1;
        }

        // One knowledge step + refresh; infeasible combinations roll the
        // offending item back so the tape keeps moving. Which way it went
        // is *recorded* (not re-derivable: a table delta landing between
        // the failed refresh and the recovery refresh can flip the
        // feasibility an offline replay would see), so the verifier forces
        // the recorded decision rather than re-deciding it.
        let mut rolled_back = false;
        let epoch = match op {
            TapeOp::Add(item) => {
                let got = client.add_knowledge(vec![item.clone()])?;
                handles.extend(got);
                local.knowledge_ops += 1;
                local.refreshes += 1;
                match client.refresh() {
                    Ok(summary) => summary.epoch,
                    Err(ClientError::Server { .. }) => {
                        rolled_back = true;
                        let handle = handles.pop().expect("the add just pushed one");
                        client.remove(handle)?;
                        client.refresh()?.epoch
                    }
                    Err(other) => return Err(other),
                }
            }
            TapeOp::Remove(index) => {
                if !handles.is_empty() {
                    let handle = handles.remove(index % handles.len());
                    client.remove(handle)?;
                    local.knowledge_ops += 1;
                }
                local.refreshes += 1;
                client.refresh()?.epoch
            }
        };

        // Sampled singles, recorded bit-exact for offline replay.
        let mut samples = Vec::with_capacity(opts.samples_per_phase);
        for _ in 0..opts.samples_per_phase {
            let q = qrng.below(hello.distinct_qi) as u32;
            let s = qrng.below(hello.sa_cardinality) as Value;
            let p = client.query(q, s)?;
            local.queries += 1;
            local.singles += 1;
            samples.push((q, s, p));
        }
        local.phases.push(PhaseRecord {
            tenant: tenant as u32,
            phase: phase as u32,
            epoch,
            rolled_back,
            samples,
        });
    }
    Ok(local)
}
