//! The multi-tenant session registry: one shared epoch chain, thousands of
//! resident [`Analyst`] sessions keyed by tenant id, and the dispatcher
//! that turns decoded [`Request`]s into [`Response`]s.
//!
//! # Concurrency contract
//!
//! * **Queries never block.** Each tenant's served [`Estimate`] lives in an
//!   `RwLock<Arc<Estimate>>` beside the session; a query clones the `Arc`
//!   under the read lock (nanoseconds) and computes from the immutable
//!   snapshot with no lock held. Refreshes, rebases and knowledge edits
//!   serialize on the tenant's session `Mutex` *behind* the snapshot and
//!   swap the pointer only after they succeed — so a query observes either
//!   the whole previous estimate or the whole next one, never a mix.
//! * **Epochs are a chain.** [`Registry::apply_delta`] locks the chain,
//!   applies the [`TableDelta`](privacy_maxent::delta::TableDelta) to the
//!   newest [`CompiledTable`], journals
//!   through the [`EpochWal`] **before** publishing (the same
//!   journal-then-publish order `persist` recovery assumes), then pushes
//!   the new epoch. Sessions catch up lazily: the next session-mutating
//!   command (add/remove/refresh/fork) rebases through each intermediate
//!   epoch in order. Queries keep serving the pre-delta snapshot until
//!   then — exactly the [`Analyst`] staleness semantics.
//! * **Per-tenant serialization, cross-tenant parallelism.** Two
//!   connections to the *same* tenant serialize their mutations on that
//!   tenant's `Mutex`; connections to different tenants share nothing but
//!   the epoch chain's brief lock.
//!
//! Old epochs are pruned once every resident session has rebased past
//! them, so a long-running server with active deltas holds O(sessions
//! behind) artifacts, not O(history).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

use privacy_maxent::analyst::{Analyst, KnowledgeHandle};
use privacy_maxent::compiled::CompiledTable;
use privacy_maxent::engine::Estimate;
use privacy_maxent::error::PmError;
use privacy_maxent::persist::EpochWal;

use crate::protocol::{
    ErrorCode, HelloInfo, RefreshSummary, ReportSummary, Request, Response, WireDeltaOp,
};
use crate::sync;

/// Admission-control and framing limits. Everything here sheds load with a
/// typed protocol error instead of a stall.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Resident tenant sessions the registry will hold; a hello for a new
    /// tenant beyond this is rejected with [`ErrorCode::TooManyTenants`].
    pub max_tenants: usize,
    /// Concurrent connections the server accepts; beyond this the accept
    /// loop answers [`ErrorCode::TooManyConnections`] and closes.
    pub max_connections: usize,
    /// Largest frame body accepted or sent, in bytes; larger length
    /// prefixes are [`ErrorCode::FrameTooLarge`].
    pub max_frame_bytes: usize,
    /// Most queries in one batch / items in one knowledge or delta batch;
    /// beyond this is [`ErrorCode::OversizedBatch`].
    pub max_batch: usize,
    /// Response frames buffered per connection before a slow-reading
    /// client is shed with [`ErrorCode::SlowConsumer`].
    pub write_queue_frames: usize,
    /// Outbound *bytes* buffered per connection before the same shed
    /// (the reactor backend's bound: its write queue is a byte buffer,
    /// so a few huge frames can overflow it long before the frame
    /// count does; the threaded backend bounds frames only).
    pub write_buffer_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_tenants: 4096,
            max_connections: 1024,
            max_frame_bytes: 4 << 20,
            max_batch: 65_536,
            write_queue_frames: 256,
            write_buffer_bytes: 8 << 20,
        }
    }
}

/// A typed application/admission failure: the wire code plus detail.
#[derive(Debug, Clone)]
pub struct ServeError {
    /// The typed code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
}

impl ServeError {
    fn new(code: ErrorCode, detail: impl Into<String>) -> Self {
        Self { code, detail: detail.into() }
    }

    /// The error as a wire [`Response`].
    #[must_use]
    pub fn response(&self) -> Response {
        Response::Error { code: self.code.code(), detail: self.detail.clone() }
    }
}

fn app_error(e: &PmError) -> ServeError {
    let code = match e {
        PmError::StaleHandle { .. } => ErrorCode::StaleHandle,
        PmError::InvalidDelta { .. } => ErrorCode::InvalidDelta,
        PmError::Infeasible { .. } | PmError::Component { .. } => ErrorCode::Infeasible,
        _ => ErrorCode::App,
    };
    ServeError::new(code, e.to_string())
}

/// What a tenant currently serves: the estimate plus the bucket count of
/// the artifact it was assembled against, captured at publication so the
/// hello payload never mixes epochs.
struct Served {
    estimate: Arc<Estimate>,
    buckets: u64,
}

/// One resident tenant: the session behind a mutex, its served snapshot
/// in front of it, and the epoch the snapshot was produced at.
pub struct Tenant {
    session: Mutex<Analyst>,
    served: RwLock<Served>,
    /// Epoch of the session's artifact (advanced by catch-up rebases);
    /// read by the pruner without taking the session lock.
    epoch: AtomicU64,
}

impl Tenant {
    fn new(session: Analyst) -> Self {
        let served = Served {
            estimate: session.snapshot(),
            buckets: session.artifact().table().num_buckets() as u64,
        };
        let epoch = session.epoch();
        Self {
            session: Mutex::new(session),
            served: RwLock::new(served),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The tenant's served estimate — an `Arc` clone under a read lock, so
    /// queries never wait on a refresh.
    #[must_use]
    pub fn snapshot(&self) -> Arc<Estimate> {
        Arc::clone(&sync::read(&self.served).estimate)
    }
}

/// The shared epoch chain: every [`CompiledTable`] epoch still referenced
/// by some resident session, oldest first, plus the WAL the deltas journal
/// through.
struct Chain {
    /// Epoch number of `epochs[0]`.
    base: u64,
    /// Contiguous epochs, `epochs[i]` at epoch `base + i`.
    epochs: Vec<Arc<CompiledTable>>,
    wal: Option<EpochWal>,
}

impl Chain {
    fn latest(&self) -> Arc<CompiledTable> {
        // pm-audit: allow(panic-policy, reason = "Registry::new seeds one epoch and prune_below retains at least one, so the vec is never empty")
        Arc::clone(self.epochs.last().expect("chain is never empty"))
    }

    fn at(&self, epoch: u64) -> Option<Arc<CompiledTable>> {
        epoch
            .checked_sub(self.base)
            .and_then(|i| self.epochs.get(i as usize))
            .map(Arc::clone)
    }

    fn prune_below(&mut self, min_epoch: u64) {
        while self.base < min_epoch && self.epochs.len() > 1 {
            self.epochs.remove(0);
            self.base += 1;
        }
    }
}

/// The multi-tenant registry. One per server; shared by every connection
/// thread through an `Arc`.
///
/// Lock order: acquiring `chain` while holding a `tenants` guard is
/// **forbidden** — [`Registry::apply_delta`] holds `chain` and then reads
/// `tenants`, so the only safe order is chain first (or neither). The
/// `lock-order` rule in `pm-audit` (run via `pmx audit` and the tier-1
/// `test_audit_workspace` suite) enforces this mechanically: any chain
/// acquisition lexically inside a live `tenants` guard scope is flagged.
pub struct Registry {
    chain: Mutex<Chain>,
    tenants: RwLock<HashMap<String, Arc<Tenant>>>,
    limits: Limits,
}

impl Registry {
    /// A registry serving `artifact`, journaling deltas through `wal` when
    /// one is attached (the `--persist` serving mode).
    #[must_use]
    pub fn new(artifact: Arc<CompiledTable>, wal: Option<EpochWal>, limits: Limits) -> Self {
        let base = artifact.epoch();
        Self {
            chain: Mutex::new(Chain { base, epochs: vec![artifact], wal }),
            tenants: RwLock::new(HashMap::new()),
            limits,
        }
    }

    /// The admission limits the server enforces.
    #[must_use]
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// The newest epoch's artifact.
    #[must_use]
    pub fn latest(&self) -> Arc<CompiledTable> {
        sync::lock(&self.chain).latest()
    }

    /// Resident tenant sessions.
    #[must_use]
    pub fn tenant_count(&self) -> usize {
        sync::read(&self.tenants).len()
    }

    /// Looks up or creates the resident session for `tenant`, enforcing
    /// the [`Limits::max_tenants`] cap.
    pub fn open_tenant(&self, tenant: &str) -> Result<Arc<Tenant>, ServeError> {
        if let Some(t) = sync::read(&self.tenants).get(tenant) {
            return Ok(Arc::clone(t));
        }
        // Lock order: chain before tenants, never the reverse —
        // `apply_delta` holds the chain mutex while reading the tenants
        // map for its prune floor, so taking the chain under the tenants
        // write lock would be an AB-BA deadlock. Fetch the artifact first;
        // a delta landing between here and the insert is fine, the session
        // just starts one epoch behind and catches up lazily like any
        // other.
        let latest = self.latest();
        let mut tenants = sync::write(&self.tenants);
        if let Some(t) = tenants.get(tenant) {
            return Ok(Arc::clone(t)); // lost the race to another connection
        }
        if tenants.len() >= self.limits.max_tenants {
            return Err(ServeError::new(
                ErrorCode::TooManyTenants,
                format!("registry is at its {}-tenant cap", self.limits.max_tenants),
            ));
        }
        let session = Analyst::open(latest);
        let t = Arc::new(Tenant::new(session));
        tenants.insert(tenant.to_string(), Arc::clone(&t));
        Ok(t)
    }

    /// Applies a table delta to the newest epoch: journal first (when a
    /// WAL is attached), publish after — the recovery ordering `persist`
    /// assumes. Returns the new epoch number.
    pub fn apply_delta(&self, ops: Vec<WireDeltaOp>) -> Result<u64, ServeError> {
        let delta = WireDeltaOp::into_delta(ops);
        let mut chain = sync::lock(&self.chain);
        let latest = chain.latest();
        let next = latest.apply(&delta).map_err(|e| app_error(&e))?;
        let epoch = next.epoch();
        if let Some(wal) = chain.wal.as_mut() {
            let applied = next.applied_delta().ok_or_else(|| {
                ServeError::new(
                    ErrorCode::App,
                    "freshly applied epoch carries no delta payload to journal",
                )
            })?;
            wal.append(epoch, &delta, applied).map_err(|e| app_error(&e))?;
        }
        chain.epochs.push(Arc::new(next));

        // Prune epochs every resident session has already rebased past.
        let min_epoch = {
            let tenants = sync::read(&self.tenants);
            tenants
                .values()
                .map(|t| t.epoch.load(Ordering::Acquire))
                .min()
                .unwrap_or(epoch)
        };
        chain.prune_below(min_epoch);
        Ok(epoch)
    }

    /// Rebases `session` through each intermediate epoch up to the newest,
    /// in order (the [`Analyst::rebase`] direct-successor contract).
    fn catch_up(&self, session: &mut Analyst) -> Result<(), ServeError> {
        loop {
            let target = {
                let chain = sync::lock(&self.chain);
                let current = session.epoch();
                if current >= chain.base + chain.epochs.len() as u64 - 1 {
                    return Ok(());
                }
                chain.at(current + 1).ok_or_else(|| {
                    ServeError::new(
                        ErrorCode::App,
                        format!(
                            "epoch {} was pruned while this session still needed it",
                            current + 1
                        ),
                    )
                })?
            };
            // The chain lock is dropped during the (potentially long)
            // rebase: deltas keep flowing while this session catches up.
            session.rebase(&target).map_err(|e| app_error(&e))?;
        }
    }

    /// Dispatches one decoded request against `tenant`. This is the whole
    /// server semantics in one place — the connection layer above only
    /// frames bytes, the test suites drive this directly where convenient.
    pub fn dispatch(&self, tenant: &Tenant, req: &Request) -> Result<Response, ServeError> {
        match req {
            Request::Hello { .. } => Err(ServeError::new(
                ErrorCode::DuplicateHello,
                "this connection already completed its handshake",
            )),
            Request::Ping => Ok(Response::Pong),
            Request::Query { q, s } => {
                let snap = tenant.snapshot();
                let p = checked_query(&snap, *q, *s)?;
                Ok(Response::Query { p })
            }
            Request::Batch { queries } => {
                if queries.len() > self.limits.max_batch {
                    return Err(oversized("batch", queries.len(), self.limits.max_batch));
                }
                let snap = tenant.snapshot();
                let mut ps = Vec::with_capacity(queries.len());
                for &(q, s) in queries {
                    ps.push(checked_query(&snap, q, s)?);
                }
                Ok(Response::Batch { ps })
            }
            Request::Report => {
                let session = sync::lock(&tenant.session);
                let report = session.report();
                Ok(Response::Report(ReportSummary {
                    knowledge_items: report.knowledge_items as u64,
                    components: report.components as u64,
                    epoch: session.snapshot().epoch(),
                    max_disclosure: report.max_disclosure,
                    effective_l_diversity: report.effective_l_diversity,
                    min_conditional_entropy: report.min_conditional_entropy,
                }))
            }
            Request::AddKnowledge { items } => {
                if items.len() > self.limits.max_batch {
                    return Err(oversized("knowledge batch", items.len(), self.limits.max_batch));
                }
                let knowledge: Vec<_> =
                    items.iter().map(|k| k.clone().into_knowledge()).collect();
                let mut session = sync::lock(&tenant.session);
                self.catch_up(&mut session)?;
                tenant.epoch.store(session.epoch(), Ordering::Release);
                let handles =
                    session.add_knowledge_batch(&knowledge).map_err(|e| app_error(&e))?;
                Ok(Response::AddKnowledge {
                    handles: handles.iter().map(|h| h.id()).collect(),
                })
            }
            Request::Remove { handle } => {
                let mut session = sync::lock(&tenant.session);
                self.catch_up(&mut session)?;
                tenant.epoch.store(session.epoch(), Ordering::Release);
                session
                    .remove_knowledge(KnowledgeHandle::from_id(*handle))
                    .map_err(|e| app_error(&e))?;
                Ok(Response::Removed)
            }
            Request::Refresh => {
                let mut session = sync::lock(&tenant.session);
                self.catch_up(&mut session)?;
                tenant.epoch.store(session.epoch(), Ordering::Release);
                let stats = session.refresh().map_err(|e| app_error(&e))?;
                // Publish the refreshed estimate only after success; queries
                // in flight keep their old snapshot untouched.
                *sync::write(&tenant.served) = Served {
                    estimate: session.snapshot(),
                    buckets: session.artifact().table().num_buckets() as u64,
                };
                Ok(Response::Refresh(RefreshSummary {
                    epoch: session.epoch(),
                    components: stats.components as u64,
                    resolved: stats.resolved as u64,
                    closed_form: stats.closed_form as u64,
                    reused: stats.reused as u64,
                }))
            }
            Request::Fork { tenant: target } => {
                let fork = {
                    let mut session = sync::lock(&tenant.session);
                    self.catch_up(&mut session)?;
                    tenant.epoch.store(session.epoch(), Ordering::Release);
                    session.fork()
                };
                let mut tenants = sync::write(&self.tenants);
                if tenants.contains_key(target) {
                    return Err(ServeError::new(
                        ErrorCode::TenantExists,
                        format!("tenant {target:?} already exists"),
                    ));
                }
                if tenants.len() >= self.limits.max_tenants {
                    return Err(ServeError::new(
                        ErrorCode::TooManyTenants,
                        format!("registry is at its {}-tenant cap", self.limits.max_tenants),
                    ));
                }
                tenants.insert(target.clone(), Arc::new(Tenant::new(fork)));
                Ok(Response::Forked)
            }
            Request::TableDelta { ops } => {
                if ops.len() > self.limits.max_batch {
                    return Err(oversized("delta batch", ops.len(), self.limits.max_batch));
                }
                let epoch = self.apply_delta(ops.clone())?;
                Ok(Response::TableDelta { epoch })
            }
        }
    }

    /// The hello payload for a freshly bound tenant. Every field is read
    /// from one published `Served` state, so the advertised shape always
    /// corresponds to the epoch it names even while deltas land.
    #[must_use]
    pub fn hello_info(&self, tenant: &Tenant) -> HelloInfo {
        let served = sync::read(&tenant.served);
        HelloInfo {
            epoch: served.estimate.epoch(),
            buckets: served.buckets,
            distinct_qi: served.estimate.distinct_qi() as u64,
            sa_cardinality: served.estimate.sa_cardinality() as u64,
        }
    }
}

// Compile-time guarantee that everything connection threads share across
// the registry is `Send + Sync` (same pattern as pm-linalg's matrix types):
// a field change that silently loses the bound becomes a build error here,
// not a distant trait-bound error at a spawn site.
const _: () = {
    const fn send_sync<T: Send + Sync>() {}
    send_sync::<Registry>();
    send_sync::<Tenant>();
    send_sync::<Served>();
    send_sync::<Limits>();
    send_sync::<ServeError>();
};

fn oversized(what: &str, got: usize, cap: usize) -> ServeError {
    ServeError::new(
        ErrorCode::OversizedBatch,
        format!("{what} of {got} exceeds the server's {cap}-item cap"),
    )
}

/// [`Estimate::conditional`] panics on out-of-domain coordinates by
/// contract, so the server validates first and answers a typed
/// [`ErrorCode::InvalidQuery`] instead.
fn checked_query(snap: &Estimate, q: u32, s: u16) -> Result<f64, ServeError> {
    let q = q as usize;
    if q >= snap.distinct_qi() || (s as usize) >= snap.sa_cardinality() {
        return Err(ServeError::new(
            ErrorCode::InvalidQuery,
            format!(
                "query ({q}, {s}) outside the domain ({} QI symbols, {} SA values)",
                snap.distinct_qi(),
                snap.sa_cardinality()
            ),
        ));
    }
    Ok(snap.conditional(q, s))
}
