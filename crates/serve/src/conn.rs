//! One accepted connection: a reader thread that frames, decodes and
//! dispatches requests, and a writer thread that drains a **bounded**
//! response queue to the socket.
//!
//! The bounded queue is the backpressure mechanism. A client that stops
//! reading fills its own queue; the next response that does not fit sheds
//! the connection — the reader stops serving it, the writer drains what
//! was already queued, a final [`ErrorCode::SlowConsumer`] frame goes out
//! directly on the socket (bounded by a write timeout if the client is
//! still wedged), and the socket closes. No other tenant, and no other
//! connection of the *same* tenant, ever waits on a stalled peer: queries
//! run on the reader thread against a lock-free snapshot, and the only
//! thing a full queue blocks is this connection's own reader.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::protocol::{
    decode_request, encode_response, ErrorCode, Request, Response, FRAME_HEADER_LEN,
};
use crate::registry::{Limits, Registry, ServeError, Tenant};

/// How long the writer waits on a blocked socket before giving the
/// connection up (applies to the shed path; a healthy client drains far
/// faster).
const WRITE_STALL_TIMEOUT: Duration = Duration::from_secs(5);

/// How long the shed path keeps swallowing a dead client's leftover bytes
/// so the close does not degrade into an RST that eats the final frame.
const SHED_DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Outcome of enqueueing one response frame.
enum Enqueue {
    Ok,
    /// The bounded queue is full (slow consumer) or the writer died.
    Shed,
}

struct WriteQueue {
    tx: SyncSender<Vec<u8>>,
    /// Set when the connection is being shed; the reader stops serving.
    dead: Arc<AtomicBool>,
}

impl WriteQueue {
    fn push(&self, frame: Vec<u8>) -> Enqueue {
        match self.tx.try_send(frame) {
            Ok(()) => Enqueue::Ok,
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.dead.store(true, Ordering::Release);
                Enqueue::Shed
            }
        }
    }
}

/// Serves one accepted connection to completion. Called on the
/// connection's reader thread; spawns the paired writer thread and joins
/// it before returning.
pub(crate) fn serve_connection(stream: TcpStream, registry: &Arc<Registry>) {
    let limits = registry.limits().clone();
    let write_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = sync_channel::<Vec<u8>>(limits.write_queue_frames.max(1));
    let dead = Arc::new(AtomicBool::new(false));
    let queue = WriteQueue { tx, dead: Arc::clone(&dead) };
    // Thread exhaustion is a resource failure, not a bug: give this
    // connection up cleanly rather than panicking the accept worker.
    let writer = match thread::Builder::new()
        .name("pmx-serve-writer".into())
        .spawn(move || writer_loop(write_stream, &rx))
    {
        Ok(handle) => handle,
        Err(_) => {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
    };

    reader_loop(&stream, registry, &limits.clone(), &queue);

    // Dropping the sender ends the writer's drain loop.
    drop(queue);
    let _ = writer.join();
    // If the connection was shed, the typed disconnect goes out *after*
    // the writer has drained (or abandoned) the queued frames, directly on
    // the socket — the queue that overflowed cannot carry it. By now the
    // client is either reading again (frame delivered, then EOF) or still
    // wedged (the write timeout bounds the attempt).
    if dead.load(Ordering::Acquire) {
        let mut s = &stream;
        let _ = s.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
        let _ = s.write_all(&encode_response(
            0,
            &Response::Error {
                code: ErrorCode::SlowConsumer.code(),
                detail: format!(
                    "client stopped reading: {} response frames already queued",
                    limits.write_queue_frames
                ),
            },
        ));
        let _ = s.flush();
        // FIN first, then swallow what the client already sent: closing
        // with unread bytes in the receive buffer turns the close into an
        // RST, which could discard the final frame before the client reads
        // it. The drain is bounded by a short read timeout.
        let _ = stream.shutdown(Shutdown::Write);
        let _ = stream.set_read_timeout(Some(SHED_DRAIN_TIMEOUT));
        let mut sink = [0u8; 4096];
        while let Ok(n) = s.read(&mut sink) {
            if n == 0 {
                break;
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

fn writer_loop(stream: TcpStream, rx: &Receiver<Vec<u8>>) {
    let _ = stream.set_write_timeout(Some(WRITE_STALL_TIMEOUT));
    let mut stream = stream;
    while let Ok(frame) = rx.recv() {
        if stream.write_all(&frame).is_err() {
            // Stalled or gone; drain the channel so the reader's sends
            // never block, but write nothing further.
            while rx.recv().is_ok() {}
            break;
        }
    }
    let _ = stream.flush();
}

/// Reads one length-prefixed frame body. `Ok(None)` is a clean EOF at a
/// frame boundary.
fn read_frame(
    stream: &mut &TcpStream,
    max_frame_bytes: usize,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    match stream.read_exact(&mut header) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(_) => return Err(FrameError::Io),
    }
    let len = u32::from_le_bytes(header) as usize;
    if len > max_frame_bytes {
        return Err(FrameError::TooLarge { len });
    }
    let mut body = vec![0u8; len];
    if stream.read_exact(&mut body).is_err() {
        // Mid-frame EOF or error: the stream is no longer frame-aligned.
        return Err(FrameError::Io);
    }
    Ok(Some(body))
}

enum FrameError {
    /// Read failed or EOF landed mid-frame; nothing useful to answer.
    Io,
    /// The length prefix exceeds the cap; answered with a typed error.
    TooLarge { len: usize },
}

/// The whole-server request semantics, shared verbatim by both backends
/// (the threaded reader loop below and the reactor workers): handshake
/// state machine first, then [`Registry::dispatch`]. `tenant` is this
/// connection's handshake state and is bound by a successful hello.
pub(crate) fn handle_request(
    registry: &Arc<Registry>,
    tenant: &mut Option<Arc<Tenant>>,
    request: &Request,
) -> Result<Response, ServeError> {
    match (request, &*tenant) {
        (Request::Hello { tenant: name }, None) => match registry.open_tenant(name) {
            Ok(t) => {
                let info = registry.hello_info(&t);
                *tenant = Some(t);
                Ok(Response::Hello(info))
            }
            Err(e) => Err(e),
        },
        (Request::Hello { .. }, Some(_)) => Err(ServeError {
            code: ErrorCode::DuplicateHello,
            detail: "this connection already completed its handshake".into(),
        }),
        (Request::Ping, _) => Ok(Response::Pong),
        (_, None) => Err(ServeError {
            code: ErrorCode::HandshakeRequired,
            detail: "the first request on a connection must be hello".into(),
        }),
        (req, Some(t)) => registry.dispatch(t, req),
    }
}

fn reader_loop(
    stream: &TcpStream,
    registry: &Arc<Registry>,
    limits: &Limits,
    queue: &WriteQueue,
) {
    let mut reader = stream;
    let mut tenant: Option<Arc<Tenant>> = None;

    loop {
        if queue.dead.load(Ordering::Acquire) {
            return; // shed: stop serving, let the final frame go out
        }
        let body = match read_frame(&mut reader, limits.max_frame_bytes) {
            Ok(Some(body)) => body,
            Ok(None) => return, // clean close
            Err(FrameError::Io) => return,
            Err(FrameError::TooLarge { len }) => {
                let _ = queue.push(encode_response(
                    0,
                    &Response::Error {
                        code: ErrorCode::FrameTooLarge.code(),
                        detail: format!(
                            "frame length {len} exceeds the server's {}-byte cap",
                            limits.max_frame_bytes
                        ),
                    },
                ));
                return; // fatal: the stream cannot be resynchronized
            }
        };

        let (id, request) = match decode_request(&body) {
            Ok(ok) => ok,
            Err((id, e)) => {
                let _ = queue.push(encode_response(
                    id,
                    &Response::Error { code: e.code.code(), detail: e.detail },
                ));
                return; // every decode failure is a fatal protocol error
            }
        };

        let response = handle_request(registry, &mut tenant, &request);

        let (frame, fatal) = match response {
            Ok(resp) => (encode_response(id, &resp), false),
            Err(e) => (encode_response(id, &e.response()), e.code.is_fatal()),
        };
        match queue.push(frame) {
            Enqueue::Ok => {}
            Enqueue::Shed => return,
        }
        if fatal {
            return;
        }
    }
}
