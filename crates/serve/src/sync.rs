//! Poison-recovering lock acquisition for the serve hot paths.
//!
//! `Mutex::lock().expect(…)` turns one panicked worker into a cascade:
//! every later acquisition of the poisoned lock panics too, and a
//! multi-tenant server loses *all* tenants to one bug. These helpers
//! recover the guard with [`PoisonError::into_inner`] instead. That is
//! sound here because everything the serve layer guards is updated with a
//! publish-after-success discipline — the served snapshot is a single
//! assignment after a refresh succeeds, the epoch chain pushes its new
//! epoch as the final step, the worker list is append/drain — so the state
//! a panicking thread leaves behind is the consistent pre-update state,
//! and continuing to serve it is strictly better than poisoning every
//! other tenant. (The `panic-policy` audit rule forbids new panic sites in
//! this layer, so poisoning can only originate below the serve crate.)

use std::sync::{Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Locks `m`, recovering the guard if a previous holder panicked.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Read-locks `l`, recovering the guard if a previous writer panicked.
pub(crate) fn read<T>(l: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    l.read().unwrap_or_else(PoisonError::into_inner)
}

/// Write-locks `l`, recovering the guard if a previous holder panicked.
pub(crate) fn write<T>(l: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    l.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn guards_recover_from_poisoning() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock().unwrap();
            panic!("poison it");
        })
        .join();
        assert!(m.lock().is_err(), "the mutex really is poisoned");
        assert_eq!(*lock(&m), 7, "the helper still hands out the guard");

        let l = Arc::new(RwLock::new(1));
        let l2 = Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write().unwrap();
            panic!("poison it");
        })
        .join();
        assert_eq!(*read(&l), 1);
        *write(&l) = 2;
        assert_eq!(*read(&l), 2);
    }
}
