//! `pm-serve` — the std-only multi-tenant Privacy-MaxEnt session server
//! behind `pmx serve`.
//!
//! One immutable [`CompiledTable`](privacy_maxent::compiled::CompiledTable)
//! artifact (loaded directly or crash-recovered via
//! [`privacy_maxent::persist::recover`]), thousands of resident
//! [`Analyst`](privacy_maxent::analyst::Analyst) sessions keyed by tenant
//! id, and a length-prefixed binary protocol over plain TCP — no async
//! runtime. The default backend is a [`pm_reactor`] readiness loop: one
//! `poll(2)` event-loop thread plus a fixed worker pool, so total threads
//! stay constant no matter how many connections are live; the original
//! threads-per-connection backend remains selectable via
//! [`server::Backend`]. Queries are served lock-free from
//! `Arc<Estimate>` snapshots while refreshes and epoch rebases run behind
//! them. Table deltas journal through the existing
//! [`EpochWal`](privacy_maxent::persist::EpochWal) *before* publishing, so
//! a served table crash-recovers exactly like a library-embedded one.
//!
//! Load is shed, never queued unboundedly: frame-size caps, per-server
//! connection and tenant caps, per-batch caps, and a bounded per-connection
//! write queue all answer with **typed protocol errors**
//! ([`protocol::ErrorCode`]) instead of stalling other tenants.
//!
//! # Quickstart
//!
//! ```no_run
//! use std::sync::Arc;
//! use pm_serve::client::Client;
//! use pm_serve::registry::{Limits, Registry};
//! use pm_serve::server::Server;
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let artifact: Arc<privacy_maxent::compiled::CompiledTable> = unimplemented!();
//! // Server side: one artifact, many tenants.
//! let registry = Arc::new(Registry::new(artifact, None, Limits::default()));
//! let server = Server::bind("127.0.0.1:0", registry)?;
//!
//! // Client side: handshake as a tenant, then query/add/refresh.
//! let mut client = Client::connect(server.addr(), "acme")?;
//! let p = client.query(0, 1)?;
//! println!("P*(s=1 | q=0) = {p}");
//! # Ok(()) }
//! ```
//!
//! The module split mirrors the data path: [`protocol`] (codec),
//! `conn` + `reactor` + [`server`] (framing, dispatch and the two
//! backends), [`registry`] (sessions and epochs), [`client`] and
//! [`loadgen`] (the other end).

#![warn(missing_docs)]

pub mod client;
mod conn;
pub mod loadgen;
pub mod protocol;
mod reactor;
pub mod registry;
pub mod server;
mod sync;
