//! The reactor backend: [`pm_reactor`]'s event loop driving the same
//! protocol, registry and typed error-code semantics as the threaded
//! backend — one reactor thread plus a fixed worker pool instead of two
//! threads per connection.
//!
//! The split of responsibilities is exact: `pm-reactor` owns sockets,
//! u32-LE frame assembly (partial frames span readiness events), the
//! bounded outbound byte buffer and the shed/drain close protocol; this
//! module owns every protocol byte — it decodes requests, runs the
//! handshake state machine ([`handle_request`], shared verbatim with the
//! threaded reader loop) and encodes responses, including the typed
//! frames the reactor sends at the edges of a connection's life:
//!
//! * over the connection cap → [`ErrorCode::TooManyConnections`],
//! * length prefix over the cap → [`ErrorCode::FrameTooLarge`],
//! * outbound buffer overflow  → [`ErrorCode::SlowConsumer`],
//! * graceful drain            → [`ErrorCode::ShuttingDown`].
//!
//! Per-connection handshake state rides inside each job
//! ([`pm_reactor::Service::Conn`]), so the workers mutate it without a
//! lock: the reactor guarantees a connection never has two frames in
//! flight, which is also what keeps responses in request order.

use std::sync::Arc;

use pm_reactor::{Config, Outcome, Service};

use crate::conn::handle_request;
use crate::protocol::{decode_request, encode_response, ErrorCode, Response};
use crate::registry::{Limits, Registry, Tenant};

/// The Privacy-MaxEnt protocol behind a [`pm_reactor::Reactor`].
pub(crate) struct PmxService {
    registry: Arc<Registry>,
    limits: Limits,
}

impl PmxService {
    pub(crate) fn new(registry: Arc<Registry>) -> Self {
        let limits = registry.limits().clone();
        Self { registry, limits }
    }

    /// The reactor tuning derived from the registry's [`Limits`]: the
    /// threaded backend's frame-count bound carries over, plus the byte
    /// bound that a buffer (unlike a queue of frames) makes meaningful.
    pub(crate) fn config(&self, workers: usize) -> Config {
        Config {
            workers,
            max_connections: self.limits.max_connections,
            max_frame_bytes: self.limits.max_frame_bytes,
            outbuf_frames: self.limits.write_queue_frames.max(1),
            outbuf_bytes: self.limits.write_buffer_bytes.max(self.limits.max_frame_bytes),
        }
    }

    fn error_frame(&self, code: ErrorCode, detail: String) -> Vec<u8> {
        encode_response(0, &Response::Error { code: code.code(), detail })
    }
}

impl Service for PmxService {
    type Conn = Option<Arc<Tenant>>;

    fn connect(&self) -> Self::Conn {
        None
    }

    fn frame(&self, tenant: &mut Self::Conn, body: Vec<u8>) -> Outcome {
        let (id, request) = match decode_request(&body) {
            Ok(ok) => ok,
            Err((id, e)) => {
                // Every decode failure is a fatal protocol error: the
                // stream can no longer be trusted to be frame-aligned.
                let frame =
                    encode_response(id, &Response::Error { code: e.code.code(), detail: e.detail });
                return Outcome { frames: vec![frame], close: true };
            }
        };
        let (frame, close) = match handle_request(&self.registry, tenant, &request) {
            Ok(resp) => (encode_response(id, &resp), false),
            Err(e) => (encode_response(id, &e.response()), e.code.is_fatal()),
        };
        Outcome { frames: vec![frame], close }
    }

    fn oversized(&self, len: usize) -> Outcome {
        let frame = self.error_frame(
            ErrorCode::FrameTooLarge,
            format!(
                "frame length {len} exceeds the server's {}-byte cap",
                self.limits.max_frame_bytes
            ),
        );
        Outcome { frames: vec![frame], close: true }
    }

    fn reject(&self) -> Option<Vec<u8>> {
        Some(self.error_frame(
            ErrorCode::TooManyConnections,
            format!("server is at its {}-connection cap", self.limits.max_connections),
        ))
    }

    fn drain_frame(&self) -> Option<Vec<u8>> {
        Some(self.error_frame(
            ErrorCode::ShuttingDown,
            "server is draining: reconnect elsewhere".to_string(),
        ))
    }

    fn shed_frame(&self, pending: usize) -> Option<Vec<u8>> {
        Some(self.error_frame(
            ErrorCode::SlowConsumer,
            format!("client stopped reading: {pending} response frames already buffered"),
        ))
    }
}
